//! The assembled corpus: fact-bearing documents plus distractors, with
//! a BM25 index and URL lookup.

use crate::distractors;
use crate::doc::{DocId, Document, SourceKind, Topic};
use crate::index::bm25::{SearchEngine, SearchHit};
use crate::index::opstats;
use crate::scenario_docs;
use crate::templates;
use ira_worldmodel::scenario::{self, ScenarioSpec, SOLAR_SUPERSTORM};
use ira_worldmodel::World;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Corpus generation knobs. The scenario name is interned against the
/// standard registry (a `&'static str`), which keeps this type `Copy`
/// and usable as a cache key; build one from a serializable
/// [`ScenarioSpec`] with [`CorpusConfig::for_spec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CorpusConfig {
    /// RNG seed for prose variation and distractor sampling.
    pub seed: u64,
    /// Number of distractor documents to interleave.
    pub distractor_count: usize,
    /// Registry name of the scenario whose event pages to emit after
    /// the base world corpus. The canonical `solar-superstorm` emits
    /// none (the base corpus is its web).
    pub scenario: &'static str,
}

impl CorpusConfig {
    /// Resolve a [`ScenarioSpec`] into corpus knobs, interning the
    /// scenario name. `None` if the spec names no registered scenario.
    pub fn for_spec(spec: &ScenarioSpec) -> Option<Self> {
        Some(CorpusConfig {
            seed: spec.seed,
            distractor_count: spec.distractors,
            scenario: scenario::static_name(&spec.scenario)?,
        })
    }

    /// The pre-scenario constructor shape. The scenario is implicit
    /// (always the solar superstorm), which is exactly why it is
    /// deprecated — construct through a [`ScenarioSpec`] instead.
    #[deprecated(
        since = "0.3.0",
        note = "scenario-implicit; build via `CorpusConfig::for_spec(&ScenarioSpec)`"
    )]
    pub fn legacy(seed: u64, distractor_count: usize) -> Self {
        CorpusConfig {
            seed,
            distractor_count,
            scenario: SOLAR_SUPERSTORM,
        }
    }
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xC0FFEE,
            distractor_count: 150,
            scenario: SOLAR_SUPERSTORM,
        }
    }
}

/// The synthetic web corpus.
pub struct Corpus {
    docs: Vec<Document>,
    engine: SearchEngine,
    by_url: HashMap<String, DocId>,
    /// `(host, path) -> id` index behind [`Corpus::doc_by_host_path`].
    /// First occurrence wins, matching what the legacy linear scan
    /// returned for (hypothetical) duplicate addresses.
    by_host_path: HashMap<(String, String), DocId>,
    /// Serve host+path lookups with the legacy O(N) scan instead of
    /// the index. Answers are identical; only the op cost differs.
    /// Exists so the perf baseline can measure "before".
    scan_lookups: AtomicBool,
}

impl Corpus {
    /// Generate the corpus for a scenario spec: the base world corpus,
    /// the scenario's event pages, then the distractors. Errors if the
    /// spec names no registered scenario.
    pub fn for_scenario(world: &World, spec: &ScenarioSpec) -> Result<Self, String> {
        let config = CorpusConfig::for_spec(spec)
            .ok_or_else(|| format!("unknown scenario `{}`", spec.scenario))?;
        Ok(Self::generate(world, config))
    }

    /// Generate the corpus for `world`: base fact documents, then the
    /// configured scenario's event pages, then distractors. Event pages
    /// consume no RNG state, so the canonical (event-free) scenario is
    /// byte-identical to the pre-scenario generator.
    pub fn generate(world: &World, config: CorpusConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut docs = templates::generate(world, &mut rng, 0);
        let sc = scenario::lookup(config.scenario)
            .unwrap_or_else(|| panic!("unknown scenario `{}`", config.scenario));
        docs.extend(scenario_docs::render(&sc.docs(world), docs.len() as DocId));
        let first_distractor = docs.len() as DocId;
        docs.extend(distractors::generate(
            config.distractor_count,
            &mut rng,
            first_distractor,
        ));
        link_related(&mut docs);

        let engine = SearchEngine::build(docs.iter());
        let by_url = docs.iter().map(|d| (d.url().to_string(), d.id)).collect();
        let mut by_host_path = HashMap::with_capacity(docs.len());
        for d in &docs {
            by_host_path
                .entry((d.source.host().to_string(), d.path.clone()))
                .or_insert(d.id);
        }
        Corpus {
            docs,
            engine,
            by_url,
            by_host_path,
            scan_lookups: AtomicBool::new(false),
        }
    }

    /// Switch host+path lookups to the legacy linear scan (`true`) or
    /// the index (`false`, the default). Benchmark plumbing only.
    pub fn set_scan_lookups(&self, scan: bool) {
        self.scan_lookups.store(scan, Ordering::Relaxed);
    }

    pub fn len(&self) -> usize {
        self.docs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    pub fn doc(&self, id: DocId) -> Option<&Document> {
        self.docs.get(id as usize)
    }

    pub fn doc_by_url(&self, url: &str) -> Option<&Document> {
        self.by_url.get(url).and_then(|&id| self.doc(id))
    }

    /// Fetch a document by host + path (what a virtual host sees).
    /// Served from the `(host, path)` index built at construction —
    /// every simnet fetch used to pay an O(N) scan here.
    pub fn doc_by_host_path(&self, host: &str, path: &str) -> Option<&Document> {
        opstats::lookup_call();
        if self.scan_lookups.load(Ordering::Relaxed) {
            let mut scanned = 0;
            let hit = self.docs.iter().find(|d| {
                scanned += 1;
                d.source.host() == host && d.path == path
            });
            // A miss scans everything; a hit pays for the prefix.
            opstats::docs_scanned(scanned);
            return hit;
        }
        opstats::docs_scanned(1);
        // The owned-tuple key costs two small allocations per lookup;
        // avoiding them needs unstable raw-entry APIs, and they are
        // noise next to the hundreds-of-documents scan they replace.
        self.by_host_path
            .get(&(host.to_string(), path.to_string()))
            .and_then(|&id| self.doc(id))
    }

    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.docs.iter()
    }

    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        self.engine.search(query, k)
    }

    pub fn engine(&self) -> &SearchEngine {
        &self.engine
    }

    /// Number of documents per topic, for corpus statistics.
    pub fn topic_counts(&self) -> Vec<(Topic, usize)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<Topic, usize> = BTreeMap::new();
        for d in &self.docs {
            *counts.entry(d.topic).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Number of documents per source kind.
    pub fn source_counts(&self) -> Vec<(SourceKind, usize)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<SourceKind, usize> = BTreeMap::new();
        for d in &self.docs {
            *counts.entry(d.source).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

/// Give every fact-bearing document "Related" links to the next
/// documents of the same topic (cyclically), the hypertext the crawler
/// extension follows.
///
/// Link-count contract, explicit and tested: each document gets
/// `min(2, n - 1)` distinct links for a topic of `n` documents — the
/// 1- and 2-step cyclic successors, which are distinct from each other
/// and from the document itself whenever they exist. So a 2-document
/// topic yields exactly 1 mutual link per document (the only other
/// document — never a self-link), 3 or more yield 2, singletons none.
/// (The old implementation got the same counts, but only by a silent
/// `j != i` skip plus an adjacent-only `dedup()` that never fired.)
fn link_related(docs: &mut [Document]) {
    use std::collections::BTreeMap;
    let mut by_topic: BTreeMap<Topic, Vec<usize>> = BTreeMap::new();
    for (i, d) in docs.iter().enumerate() {
        if d.topic != Topic::Distractor {
            by_topic.entry(d.topic).or_default().push(i);
        }
    }
    for indices in by_topic.values() {
        let n = indices.len();
        if n < 2 {
            continue;
        }
        let fanout = 2.min(n - 1);
        for (pos, &i) in indices.iter().enumerate() {
            docs[i].links = (1..=fanout)
                .map(|step| docs[indices[(pos + step) % n]].url().to_string())
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::generate(&World::standard(), CorpusConfig::default())
    }

    #[test]
    fn corpus_contains_facts_and_distractors() {
        let c = corpus();
        assert!(c.len() > 200, "corpus size {}", c.len());
        let topics = c.topic_counts();
        let distractors = topics
            .iter()
            .find(|(t, _)| *t == Topic::Distractor)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert_eq!(distractors, 150);
    }

    #[test]
    fn url_lookup_round_trips() {
        let c = corpus();
        let doc = c.iter().next().unwrap();
        let found = c.doc_by_url(&doc.url().to_string()).unwrap();
        assert_eq!(found.id, doc.id);
    }

    #[test]
    fn host_path_lookup_works() {
        let c = corpus();
        let doc = c
            .iter()
            .find(|d| d.source == SourceKind::Encyclopedia)
            .unwrap();
        let found = c.doc_by_host_path(doc.source.host(), &doc.path).unwrap();
        assert_eq!(found.id, doc.id);
    }

    #[test]
    fn search_surfaces_cable_article_over_distractors() {
        let c = corpus();
        let hits = c.search("fiber optic cable route Brazil Europe geomagnetic", 5);
        assert!(!hits.is_empty());
        let top = c.doc(hits[0].doc).unwrap();
        assert_ne!(top.topic, Topic::Distractor, "top hit was {}", top.title);
    }

    #[test]
    fn search_for_distractor_topic_finds_distractor() {
        let c = corpus();
        let hits = c.search("sourdough starter dough", 3);
        assert!(!hits.is_empty());
        assert_eq!(c.doc(hits[0].doc).unwrap().topic, Topic::Distractor);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(&World::standard(), CorpusConfig::default());
        let b = Corpus::generate(&World::standard(), CorpusConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.body, y.body);
        }
    }

    #[test]
    fn host_path_index_agrees_with_legacy_scan_on_full_corpus() {
        // The indexed lookup must be observationally identical to the
        // O(N) scan it replaced, for every document and for misses.
        let c = corpus();
        for doc in c.iter() {
            let host = doc.source.host();
            let indexed = c.doc_by_host_path(host, &doc.path).map(|d| d.id);
            c.set_scan_lookups(true);
            let scanned = c.doc_by_host_path(host, &doc.path).map(|d| d.id);
            c.set_scan_lookups(false);
            assert_eq!(indexed, scanned, "disagree on {host}{}", doc.path);
            // And both resolve to this document's address.
            assert_eq!(indexed, Some(doc.id));
        }
        assert!(c.doc_by_host_path("encyclopedia.test", "/nope").is_none());
        c.set_scan_lookups(true);
        assert!(c.doc_by_host_path("encyclopedia.test", "/nope").is_none());
        c.set_scan_lookups(false);
    }

    #[test]
    fn lookup_ops_reflect_index_vs_scan_cost() {
        use crate::index::opstats;
        let c = corpus();
        let before = opstats::snapshot();
        let doc = c.iter().last().unwrap();
        c.doc_by_host_path(doc.source.host(), &doc.path).unwrap();
        let after_index = opstats::snapshot().since(&before);
        c.set_scan_lookups(true);
        c.doc_by_host_path(doc.source.host(), &doc.path).unwrap();
        c.set_scan_lookups(false);
        let after_both = opstats::snapshot().since(&before);
        // Parallel tests may also count; deltas are lower bounds.
        assert!(after_index.lookup_calls >= 1);
        assert!(after_index.docs_scanned >= 1);
        // The scan of the last document examines the whole corpus,
        // dwarfing the index probe's single unit.
        assert!(after_both.docs_scanned >= after_index.docs_scanned + c.len() as u64);
    }

    fn topic_docs(n: usize) -> Vec<Document> {
        (0..n)
            .map(|i| Document {
                id: i as DocId,
                source: SourceKind::Encyclopedia,
                path: format!("/wiki/cable-{i}"),
                title: format!("Cable {i}"),
                body: "A submarine cable.".into(),
                topic: Topic::SubmarineCables,
                links: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn two_doc_topic_gets_one_mutual_link_each() {
        let mut docs = topic_docs(2);
        link_related(&mut docs);
        assert_eq!(docs[0].links, vec![docs[1].url().to_string()]);
        assert_eq!(docs[1].links, vec![docs[0].url().to_string()]);
    }

    #[test]
    fn three_doc_topic_gets_two_distinct_links_each() {
        let mut docs = topic_docs(3);
        link_related(&mut docs);
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(d.links.len(), 2, "doc {i}: {:?}", d.links);
            assert!(!d.links.contains(&d.url().to_string()), "self-link on {i}");
            let mut unique = d.links.clone();
            unique.sort();
            unique.dedup();
            assert_eq!(unique.len(), 2, "duplicate links on {i}");
        }
        // Cyclic successors: doc 0 links to 1 then 2.
        assert_eq!(
            docs[0].links,
            vec![docs[1].url().to_string(), docs[2].url().to_string()]
        );
    }

    #[test]
    fn singleton_and_distractor_docs_get_no_links() {
        let mut docs = topic_docs(1);
        docs.push(Document {
            id: 1,
            source: SourceKind::Blog,
            path: "/post/sourdough".into(),
            title: "Sourdough".into(),
            body: "Starter dough tips.".into(),
            topic: Topic::Distractor,
            links: Vec::new(),
        });
        docs.push(Document {
            id: 2,
            source: SourceKind::Blog,
            path: "/post/crumb".into(),
            title: "Crumb".into(),
            body: "Crumb structure.".into(),
            topic: Topic::Distractor,
            links: Vec::new(),
        });
        link_related(&mut docs);
        for d in &docs {
            assert!(d.links.is_empty(), "{} should be linkless", d.title);
        }
    }

    #[test]
    fn distractor_scaling_works() {
        let c = Corpus::generate(
            &World::standard(),
            CorpusConfig {
                seed: 1,
                distractor_count: 10,
                ..CorpusConfig::default()
            },
        );
        let d = Corpus::generate(
            &World::standard(),
            CorpusConfig {
                seed: 1,
                distractor_count: 400,
                ..CorpusConfig::default()
            },
        );
        assert_eq!(d.len() - c.len(), 390);
    }

    #[test]
    fn for_spec_interns_known_scenarios_and_rejects_unknown() {
        let spec = ScenarioSpec::named("cable-cut")
            .with_seed(9)
            .with_distractors(3);
        let config = CorpusConfig::for_spec(&spec).unwrap();
        assert_eq!(config.seed, 9);
        assert_eq!(config.distractor_count, 3);
        assert_eq!(config.scenario, "cable-cut");
        assert!(CorpusConfig::for_spec(&ScenarioSpec::named("nope")).is_none());
        assert!(Corpus::for_scenario(&World::standard(), &ScenarioSpec::named("nope")).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_config_shim_pins_the_solar_scenario() {
        assert_eq!(CorpusConfig::legacy(0xC0FFEE, 150), CorpusConfig::default());
    }

    /// The golden byte-identity bar: the canonical scenario through the
    /// spec path reproduces the legacy generator exactly — same ids,
    /// paths, titles, bodies, topics, and links for every document.
    #[test]
    fn solar_scenario_corpus_is_byte_identical_to_legacy() {
        let world = World::standard();
        let legacy = Corpus::generate(&world, CorpusConfig::default());
        let spec = Corpus::for_scenario(&world, &ScenarioSpec::default()).unwrap();
        assert_eq!(legacy.len(), spec.len());
        for (a, b) in legacy.iter().zip(spec.iter()) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
    }

    #[test]
    fn scenario_corpora_append_events_between_facts_and_distractors() {
        let world = World::standard();
        let base = Corpus::for_scenario(&world, &ScenarioSpec::default()).unwrap();
        for name in ["cable-cut", "regional-grid-failure", "route-leak"] {
            let c = Corpus::for_scenario(&world, &ScenarioSpec::named(name)).unwrap();
            let events: Vec<_> = c
                .iter()
                .filter(|d| d.topic == Topic::ScenarioEvent)
                .collect();
            assert!(!events.is_empty(), "{name} emits no events");
            assert_eq!(c.len(), base.len() + events.len(), "{name} count");
            // Events sit exactly between the fact block and the
            // distractor block, ids dense.
            let first_event = events[0].id;
            let base_facts = base.iter().filter(|d| d.topic != Topic::Distractor).count();
            assert_eq!(first_event as usize, base_facts, "{name} placement");
            // And the base fact block is untouched.
            for (a, b) in base.iter().zip(c.iter()).take(base_facts) {
                assert_eq!(a.body, b.body, "{name} perturbed doc {}", a.id);
            }
        }
    }

    /// Every rationale term an event-emitting scenario's quiz relies on
    /// appears somewhere in that scenario's corpus — the corpus-level
    /// half of the ground-truth self-consistency contract. (The solar
    /// scenario's terms are phrased against agent *answers* and are
    /// covered by the end-to-end consistency suite instead.)
    #[test]
    fn scenario_rationale_terms_are_grounded_in_the_corpus() {
        let world = World::standard();
        for name in ["cable-cut", "regional-grid-failure", "route-leak"] {
            let c = Corpus::for_scenario(&world, &ScenarioSpec::named(name)).unwrap();
            let mut pool = String::new();
            for d in c.iter() {
                pool.push_str(&d.full_text().to_lowercase());
                pool.push('\n');
            }
            let sc = ira_worldmodel::scenario::lookup(name).unwrap();
            for conclusion in sc.conclusions(&world) {
                for term in &conclusion.rationale_terms {
                    assert!(
                        pool.contains(&term.to_lowercase()),
                        "{name}/{}: term `{term}` not in corpus",
                        conclusion.id
                    );
                }
            }
        }
    }

    #[test]
    fn scenario_event_pages_are_searchable_and_linked() {
        let world = World::standard();
        let c = Corpus::for_scenario(&world, &ScenarioSpec::named("cable-cut")).unwrap();
        let target = ira_worldmodel::scenario::CableCut::target(&world);
        let hits = c.search(&format!("{} severed landslide", target.name), 5);
        assert!(!hits.is_empty());
        let top = c.doc(hits[0].doc).unwrap();
        assert_eq!(top.topic, Topic::ScenarioEvent, "top hit was {}", top.title);
        // Scenario pages cross-link like any other topic group.
        assert!(!top.links.is_empty());
    }
}
