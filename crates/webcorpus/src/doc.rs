//! Document model for the synthetic web.

use ira_simnet::Url;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable document identifier within a corpus.
pub type DocId = u32;

/// Where a document "lives" — which kind of site publishes it. Each
/// kind maps to one simnet virtual host (see [`crate::sites`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SourceKind {
    /// Encyclopedia-style reference articles.
    Encyclopedia,
    /// News coverage with datelines.
    News,
    /// Industry and engineering blogs.
    Blog,
    /// Forum threads (the Reddit stand-in).
    Forum,
    /// Short social posts (the Twitter stand-in).
    MicroPost,
    /// Academic paper abstracts.
    PaperAbstract,
}

impl SourceKind {
    pub const ALL: [SourceKind; 6] = [
        SourceKind::Encyclopedia,
        SourceKind::News,
        SourceKind::Blog,
        SourceKind::Forum,
        SourceKind::MicroPost,
        SourceKind::PaperAbstract,
    ];

    /// The simnet hostname serving this kind of document.
    pub fn host(&self) -> &'static str {
        match self {
            SourceKind::Encyclopedia => "encyclopedia.test",
            SourceKind::News => "news.test",
            SourceKind::Blog => "blog.test",
            SourceKind::Forum => "forum.test",
            SourceKind::MicroPost => "micro.test",
            SourceKind::PaperAbstract => "papers.test",
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            SourceKind::Encyclopedia => "encyclopedia",
            SourceKind::News => "news",
            SourceKind::Blog => "blog",
            SourceKind::Forum => "forum",
            SourceKind::MicroPost => "micropost",
            SourceKind::PaperAbstract => "paper",
        }
    }
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Coarse topic tags, used for corpus statistics and the provenance
/// audit (experiment "source verification" in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Topic {
    SolarPhysics,
    StormHistory,
    SubmarineCables,
    DataCenters,
    PowerGrids,
    InternetInfrastructure,
    ResponsePlanning,
    Incidents,
    /// Incident-specific pages emitted by a scenario (see
    /// `ira_worldmodel::scenario`); empty for the canonical
    /// solar-superstorm corpus.
    ScenarioEvent,
    Distractor,
}

impl Topic {
    pub fn label(&self) -> &'static str {
        match self {
            Topic::SolarPhysics => "solar-physics",
            Topic::StormHistory => "storm-history",
            Topic::SubmarineCables => "submarine-cables",
            Topic::DataCenters => "data-centers",
            Topic::PowerGrids => "power-grids",
            Topic::InternetInfrastructure => "internet-infrastructure",
            Topic::ResponsePlanning => "response-planning",
            Topic::Incidents => "incidents",
            Topic::ScenarioEvent => "scenario-event",
            Topic::Distractor => "distractor",
        }
    }
}

/// One document of the synthetic web.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    pub id: DocId,
    pub source: SourceKind,
    /// URL path under the source host, e.g. `/wiki/ellalink`.
    pub path: String,
    pub title: String,
    pub body: String,
    pub topic: Topic,
    /// Related-page URLs rendered as a "Related:" trailer, which the
    /// crawler extension can follow.
    #[serde(default)]
    pub links: Vec<String>,
}

impl Document {
    /// The document's full URL on the simulated web.
    pub fn url(&self) -> Url {
        Url::build(self.source.host(), &self.path, &[])
    }

    /// Title + body, the searchable text.
    pub fn full_text(&self) -> String {
        format!("{}\n{}", self.title, self.body)
    }

    /// A short snippet for search result pages.
    pub fn snippet(&self, max_chars: usize) -> String {
        let mut out = String::with_capacity(max_chars.min(self.body.len()));
        for ch in self.body.chars() {
            if out.len() + ch.len_utf8() > max_chars {
                break;
            }
            let ch = if ch == '\n' { ' ' } else { ch };
            out.push(ch);
        }
        out
    }
}

/// Turn a free-form title into a URL slug.
pub fn slugify(title: &str) -> String {
    let mut slug = String::with_capacity(title.len());
    let mut last_dash = true; // suppress leading dash
    for ch in title.chars() {
        if ch.is_ascii_alphanumeric() {
            slug.push(ch.to_ascii_lowercase());
            last_dash = false;
        } else if !last_dash {
            slug.push('-');
            last_dash = true;
        }
    }
    while slug.ends_with('-') {
        slug.pop();
    }
    slug
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document {
            id: 7,
            source: SourceKind::Encyclopedia,
            path: "/wiki/ellalink".into(),
            title: "EllaLink".into(),
            body: "The EllaLink submarine cable connects Fortaleza, Brazil to Sines, Portugal.\nIt entered service in 2021.".into(),
            topic: Topic::SubmarineCables,
            links: Vec::new(),
        }
    }

    #[test]
    fn url_combines_host_and_path() {
        assert_eq!(
            doc().url().to_string(),
            "sim://encyclopedia.test/wiki/ellalink"
        );
    }

    #[test]
    fn snippet_truncates_and_flattens_newlines() {
        let s = doc().snippet(30);
        assert!(s.len() <= 30);
        assert!(!s.contains('\n'));
        assert!(s.starts_with("The EllaLink"));
    }

    #[test]
    fn snippet_shorter_than_limit_is_whole_body() {
        let d = doc();
        let s = d.snippet(10_000);
        assert_eq!(s.len(), d.body.len());
    }

    #[test]
    fn slugify_basic() {
        assert_eq!(slugify("EllaLink"), "ellalink");
        assert_eq!(slugify("Grace Hopper (cable)"), "grace-hopper-cable");
        assert_eq!(slugify("  -- weird -- title --  "), "weird-title");
        assert_eq!(slugify("Havfrue (AEC-2)"), "havfrue-aec-2");
    }

    #[test]
    fn source_hosts_are_distinct() {
        let mut hosts: Vec<_> = SourceKind::ALL.iter().map(|s| s.host()).collect();
        hosts.sort();
        hosts.dedup();
        assert_eq!(hosts.len(), SourceKind::ALL.len());
    }

    #[test]
    fn full_text_includes_title() {
        assert!(doc().full_text().contains("EllaLink"));
        assert!(doc().full_text().contains("2021"));
    }
}
