//! Claim-graph determinism contract (ISSUE 7): the graph a session
//! builds — node ids, edge weights, provenance, the whole serialized
//! snapshot — is a pure function of the session's seeds. Thread count
//! is an implementation detail and must never change a single byte of
//! any graph, and the legacy-parity flag must keep flag-off behaviour
//! indistinguishable from the flat store.

use ira_core::{AgentConfig, Environment, ResearchAgent, RoleDefinition};
use ira_engine::{Engine, SessionConfig};
use ira_evalkit::runner::sweep;
use ira_webcorpus::CorpusConfig;

const CABLE_Q: &str = "Which is more vulnerable to solar activity? The fiber optic cable that \
                       connects Brazil to Europe or the one that connects the US to Europe?";

/// Train + self-learn one session per seed and return the serialized
/// claim graph alongside the answer, fanned out over `threads`.
fn graph_sweep(threads: usize) -> Vec<(Vec<u8>, String)> {
    let seeds: Vec<u64> = (0..6).map(|i| 0x5EED + i * 0x101).collect();
    let engine = Engine::new();
    sweep(seeds, threads, |_, seed| {
        let mut session = engine.spawn_session(SessionConfig {
            agent: AgentConfig {
                graph_retrieval: true,
                ..AgentConfig::default()
            },
            corpus: CorpusConfig {
                seed,
                distractor_count: 150,
                ..CorpusConfig::default()
            },
            net_seed: seed ^ 0xBEEF,
            llm_seed: seed,
            ..SessionConfig::bob()
        });
        session.agent.train();
        let _ = session.agent.self_learn(CABLE_Q);
        let answer = session.agent.ask(CABLE_Q);
        (
            session.agent.memory().graph_to_bytes(),
            format!("{:?}@{}", answer.verdict, answer.confidence),
        )
    })
}

/// The tentpole determinism bar: serialized graphs (and the answers
/// retrieved through them) are byte-identical at 1, 4, and 8 threads.
#[test]
fn graph_bytes_are_identical_across_thread_counts() {
    let serial = graph_sweep(1);
    for threads in [4usize, 8] {
        let parallel = graph_sweep(threads);
        assert_eq!(
            serial, parallel,
            "thread count {threads} changed a graph byte or an answer"
        );
    }
    for (bytes, _) in &serial {
        assert!(
            bytes.len() > 16,
            "training must have built a non-trivial graph"
        );
    }
}

/// Legacy parity: with the flag off, a graph-capable agent answers the
/// flagship question exactly like one that predates the graph — and
/// its knowledge file serializes identically, because the graph lives
/// outside every serialized struct.
#[test]
fn flag_off_agent_is_indistinguishable_from_flat() {
    let run = |graph_retrieval: bool| {
        let env = Environment::standard();
        let config = AgentConfig {
            graph_retrieval,
            ..AgentConfig::default()
        };
        let mut agent = ResearchAgent::new(RoleDefinition::bob(), &env, config, 0xB0B);
        agent.train();
        let trajectory = agent.self_learn(CABLE_Q);
        let answer = agent.ask(CABLE_Q);
        (
            serde_json::to_string(&trajectory).unwrap(),
            answer.text,
            agent.memory().to_json(),
        )
    };
    let (flat_trajectory, flat_answer, flat_json) = run(false);

    // The flag-off run IS the default run: compare against an agent
    // built with the plain default config (the pre-graph behaviour).
    let env = Environment::standard();
    let mut legacy = ResearchAgent::new(RoleDefinition::bob(), &env, AgentConfig::default(), 0xB0B);
    legacy.train();
    let legacy_trajectory = legacy.self_learn(CABLE_Q);
    let legacy_answer = legacy.ask(CABLE_Q);

    assert_eq!(
        flat_trajectory,
        serde_json::to_string(&legacy_trajectory).unwrap()
    );
    assert_eq!(flat_answer, legacy_answer.text);
    assert_eq!(flat_json, legacy.memory().to_json());

    // Graph-on still persists the identical knowledge.json bytes: the
    // claim graph is runtime + sidecar state, never the JSON.
    let (_, _, graph_json) = run(true);
    assert_eq!(
        flat_json, graph_json,
        "graph mode must not change knowledge.json by a byte"
    );
}
