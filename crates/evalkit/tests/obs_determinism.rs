//! Observability determinism: the trace a sweep produces is a pure
//! function of its seeds — byte-identical across repeat runs *and*
//! across thread counts — and the disabled (NullCollector-style) path
//! never builds an event at all.

use ira_engine::{Engine, SessionConfig};
use ira_evalkit::runner::{metrics_rollup, sweep};
use ira_obs::{
    Collector, Fanout, JsonlCollector, MetricsSnapshot, SharedCollector, SummaryCollector,
    TraceEvent,
};
use std::sync::Arc;

const QUESTION: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
                        that connects Brazil to Europe or the one that connects the US to \
                        Europe?";

/// Train + self-learn `sessions` sessions on `threads` workers, all
/// emitting into one shared trace + summary pair.
fn run_observed_sweep(sessions: u32, threads: usize) -> (String, MetricsSnapshot) {
    let engine = Engine::new();
    let trace = Arc::new(JsonlCollector::new());
    let summary = Arc::new(SummaryCollector::new());
    let sink: SharedCollector = Arc::new(Fanout::new(vec![
        Arc::clone(&trace) as SharedCollector,
        Arc::clone(&summary) as SharedCollector,
    ]));
    let items: Vec<u32> = (0..sessions).collect();
    sweep(items, threads, |i, _| {
        let mut config = SessionConfig::bob();
        config.net_seed = 0xBEEF + i as u64 * 0x101;
        config.llm_seed = 0xB0B + i as u64;
        let mut session = engine.spawn_session_observed(config, Arc::clone(&sink), i as u32);
        session.agent.train();
        let _ = session.agent.self_learn(QUESTION);
    });
    (trace.render(), summary.snapshot())
}

#[test]
fn traces_are_byte_identical_across_thread_counts() {
    let (serial, serial_metrics) = run_observed_sweep(3, 1);
    let (parallel, parallel_metrics) = run_observed_sweep(3, 4);
    assert!(!serial.is_empty(), "the sweep must emit trace events");
    assert_eq!(
        serial, parallel,
        "per-session traces must be invariant under the sweep thread count"
    );
    assert_eq!(serial_metrics, parallel_metrics);
}

#[test]
fn traces_are_byte_identical_across_repeat_runs() {
    let (first, first_metrics) = run_observed_sweep(2, 2);
    let (second, second_metrics) = run_observed_sweep(2, 2);
    assert_eq!(first, second, "same seeds must reproduce the same trace");
    assert_eq!(first_metrics, second_metrics);
    // And the trace parses back into the same summary every time.
    let events = ira_obs::parse_jsonl(&first).expect("trace must parse");
    let a = ira_obs::summarize_events(&events).render();
    let b = ira_obs::summarize_events(&events).render();
    assert_eq!(a, b);
}

#[test]
fn rollup_of_per_session_snapshots_is_order_invariant() {
    let engine = Engine::new();
    let snapshots: Vec<MetricsSnapshot> = sweep((0..3u32).collect(), 2, |i, _| {
        let summary = Arc::new(SummaryCollector::new());
        let mut config = SessionConfig::bob();
        config.net_seed = 0xBEEF + i as u64;
        let mut session = engine.spawn_session_observed(
            config,
            Arc::clone(&summary) as SharedCollector,
            i as u32,
        );
        session.agent.train();
        summary.snapshot()
    });
    let forward = metrics_rollup(snapshots.clone());
    let reverse = metrics_rollup(snapshots.into_iter().rev());
    assert_eq!(forward, reverse, "rollup must be commutative");
    assert!(forward.counters.contains_key("cycle.start"));
    assert!(forward.histograms.contains_key("fetch.ok"));
    assert!(forward.gauges.contains_key("memory.entries"));
}

#[test]
fn profiles_are_byte_identical_across_thread_counts() {
    // The profiler is a pure fold of the trace, and the trace is
    // thread-count invariant — so both the text rendering and the JSON
    // serialization (what the CI gate pins at zero tolerance) must be
    // byte-identical however the sweep was scheduled.
    let (serial, _) = run_observed_sweep(3, 1);
    let (parallel, _) = run_observed_sweep(3, 4);
    let (wide, _) = run_observed_sweep(3, 8);

    let fold =
        |doc: &str| ira_obs::fold_trace(&ira_obs::parse_jsonl(doc).expect("trace must parse"));
    let (a, b, c) = (fold(&serial), fold(&parallel), fold(&wide));

    assert_eq!(a.render(10), b.render(10));
    assert_eq!(a.render(10), c.render(10));
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "profile JSON must be invariant under the sweep thread count"
    );
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&c).unwrap(),
    );
}

#[test]
fn profiled_sweep_produces_causal_trees_not_flat_lists() {
    let (doc, _) = run_observed_sweep(1, 1);
    let events = ira_obs::parse_jsonl(&doc).expect("trace must parse");
    let profile = ira_obs::fold_trace(&events);

    assert_eq!(profile.sessions.len(), 1);
    let session = &profile.sessions[0];
    // Training cycles and the self-learn scope are roots; llm calls and
    // fetches must hang *under* them, not float beside them.
    assert!(
        session.roots.iter().any(|r| r.key == "cycle.goal"),
        "training cycles must be root spans"
    );
    assert!(
        session.roots.iter().any(|r| r.key == "cycle.self_learn"),
        "self-learn must be a root span"
    );
    assert!(
        !session.roots.iter().any(|r| r.key == "llm.call"),
        "llm calls must be nested under a cycle, never a root"
    );
    let goal = session
        .roots
        .iter()
        .find(|r| r.key == "cycle.goal")
        .unwrap();
    assert!(
        goal.children.iter().any(|c| c.key == "llm.call"),
        "a goal cycle must contain its llm calls"
    );
    assert!(
        goal.children.iter().any(|c| c.key.starts_with("fetch.")),
        "a goal cycle must contain its fetches"
    );
    // Token counts parsed from llm.call details surface as span ops.
    assert!(goal
        .children
        .iter()
        .filter(|c| c.key == "llm.call")
        .all(|c| c.ops.contains_key("llm.prompt_tokens")));
    // The critical path descends from a root through real time.
    assert!(!session.critical_path.is_empty());
    assert!(session
        .critical_path
        .windows(2)
        .all(|w| w[0].inclusive_us >= w[1].inclusive_us));
}

/// Attach a flight recorder (triggered on each session's `self_learn`
/// span close) to the observed sweep and return its concatenated dump
/// artifact.
fn run_flight_sweep(sessions: u32, threads: usize) -> Arc<ira_obs::FlightRecorder> {
    let engine = Engine::new();
    let recorder = Arc::new(ira_obs::FlightRecorder::new(ira_obs::FlightConfig {
        capacity: 16,
        triggers: vec![ira_obs::FlightTrigger::new("cycle", "self_learn")],
    }));
    let sink: SharedCollector = Arc::clone(&recorder) as SharedCollector;
    sweep((0..sessions).collect::<Vec<u32>>(), threads, |i, _| {
        let mut config = SessionConfig::bob();
        config.net_seed = 0xBEEF + i as u64 * 0x101;
        config.llm_seed = 0xB0B + i as u64;
        let mut session = engine.spawn_session_observed(config, Arc::clone(&sink), i as u32);
        session.agent.train();
        let _ = session.agent.self_learn(QUESTION);
    });
    recorder
}

#[test]
fn flight_dumps_are_byte_identical_across_thread_counts() {
    let serial = run_flight_sweep(3, 1);
    let parallel = run_flight_sweep(3, 4);

    // One self_learn per session: exactly one dump each, rendered in
    // session order however the sweep was scheduled.
    assert_eq!(serial.dump_count(), 3);
    assert_eq!(
        serial.render(),
        parallel.render(),
        "flight dumps must be invariant under the sweep thread count"
    );
    assert_eq!(serial.events_seen(), parallel.events_seen());

    // Each dump is a valid trace: a flight.dump header followed by a
    // bounded window that ends with the trigger event.
    for dump in serial.dumps() {
        assert_eq!(dump.trigger, "cycle.self_learn");
        assert!(dump.events.len() <= 16, "window must respect capacity");
        assert!(dump.evicted > 0, "training overflows a 16-event ring");
        let last = dump.events.last().expect("window is never empty");
        assert_eq!(
            (last.stage.as_str(), last.name.as_str()),
            ("cycle", "self_learn")
        );
        let events = ira_obs::parse_jsonl(&dump.render()).expect("dump parses as a trace");
        assert_eq!(events.len(), dump.events.len() + 1);
    }

    // The default (serve-triggered) config never fires on an engine
    // sweep: the ring absorbs everything and leaves zero artifacts.
    let engine = Engine::new();
    let quiet = Arc::new(ira_obs::FlightRecorder::default());
    let mut session = engine.spawn_session_observed(
        SessionConfig::bob(),
        Arc::clone(&quiet) as SharedCollector,
        0,
    );
    session.agent.train();
    assert_eq!(quiet.dump_count(), 0);
    assert_eq!(quiet.render(), "");
    assert!(quiet.events_seen() > 0, "the ring still saw the stream");
}

/// Disabled collector that panics if anything ever reaches it: proves
/// the hot loop builds no events (and allocates no trace strings) when
/// tracing is off.
struct TripwireCollector;
impl Collector for TripwireCollector {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, event: TraceEvent) {
        panic!("disabled collector received {event:?}");
    }
}

#[test]
fn disabled_collector_costs_nothing_on_the_training_hot_loop() {
    let engine = Engine::new();

    // A full train + self-learn cycle with a disabled observer: the
    // tripwire proves no event is ever built on the disabled path.
    let mut observed =
        engine.spawn_session_observed(SessionConfig::bob(), Arc::new(TripwireCollector), 0);
    let mut observed_report = observed.agent.train();
    let observed_learning = observed.agent.self_learn(QUESTION);

    // And the run is byte-identical to a plain unobserved session.
    let mut plain = engine.spawn_session(SessionConfig::bob());
    let mut plain_report = plain.agent.train();
    let plain_learning = plain.agent.self_learn(QUESTION);

    observed_report.host_elapsed_us = 0;
    plain_report.host_elapsed_us = 0;
    assert_eq!(
        serde_json::to_string(&observed_report).unwrap(),
        serde_json::to_string(&plain_report).unwrap(),
        "a disabled observer must not perturb the run"
    );
    assert_eq!(
        observed_learning.final_confidence(),
        plain_learning.final_confidence()
    );
    assert_eq!(observed.now_us(), plain.now_us());
}
