//! Property-based tests for the evaluation harness.

use ira_evalkit::plancov::PlanCoverage;
use ira_evalkit::quiz::{QuizBank, QuizItem};
use ira_evalkit::report::{csv, table};
use ira_evalkit::verdict::match_verdict;
use ira_simllm::reason::Answer;
use ira_worldmodel::World;
use proptest::prelude::*;

fn answer(text: String, verdict: Option<String>, confidence: u8) -> Answer {
    Answer {
        text,
        verdict,
        confidence,
        coverage: confidence as f64 / 10.0,
        missing: Vec::new(),
        principles_used: Vec::new(),
        facts_used: 0,
        reasoning: Vec::new(),
    }
}

fn any_item() -> impl Strategy<Value = QuizItem> {
    let quiz = QuizBank::from_world(&World::standard());
    let items: Vec<QuizItem> = quiz.iter().cloned().collect();
    prop::sample::select(items)
}

proptest! {
    #[test]
    fn verdict_scores_are_bounded(
        item in any_item(),
        text in "\\PC{0,300}",
        verdict in prop::option::of("\\PC{0,80}"),
        confidence in 0u8..=10,
    ) {
        let m = match_verdict(&answer(text, verdict.clone(), confidence), &item);
        prop_assert!((0.0..=1.0).contains(&m.signature_score));
        prop_assert!((0.0..=1.0).contains(&m.rationale_score));
        prop_assert_eq!(m.committed, verdict.is_some());
        if !m.committed {
            prop_assert!(!m.consistent, "hedges never count as consistent");
        }
    }

    #[test]
    fn expected_answers_always_match_themselves(item in any_item()) {
        let text = format!(
            "{} This is because {}.",
            item.expected_answer,
            item.rationale_terms.join(" and ")
        );
        let m = match_verdict(
            &answer(text, Some(item.expected_answer.clone()), 9),
            &item,
        );
        prop_assert!(m.consistent, "{:?} rejected its own expected answer", item.id);
    }

    #[test]
    fn plan_coverage_is_monotone_in_components(present_mask in 0u8..32) {
        use ira_evalkit::plancov::REFERENCE_COMPONENTS;
        let mut text = String::from("Plan: ");
        let mut expected = 0;
        for (i, c) in REFERENCE_COMPONENTS.iter().enumerate() {
            if present_mask & (1 << i) != 0 {
                text.push_str(c);
                text.push_str(". ");
                expected += 1;
            }
        }
        let cov = PlanCoverage::of(&text);
        prop_assert_eq!(cov.present.len(), expected);
        prop_assert_eq!(cov.present.len() + cov.missing.len(), REFERENCE_COMPONENTS.len());
        prop_assert!((0.0..=1.0).contains(&cov.coverage()));
    }

    #[test]
    fn table_renders_any_rows_without_panicking(
        rows in prop::collection::vec(
            prop::collection::vec("[ -~&&[^,]]{0,20}", 3..=3),
            0..6,
        ),
    ) {
        let rendered = table(&["a", "b", "c"], &rows);
        prop_assert!(rendered.lines().count() >= 2);
        let rendered_csv = csv(&["a", "b", "c"], &rows);
        prop_assert_eq!(rendered_csv.lines().count(), rows.len() + 1);
    }
}
