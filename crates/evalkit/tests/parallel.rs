//! Determinism regression tests for the engine/session layer and the
//! parallel sweep runner: parallelism is an implementation detail and
//! must never change a single byte of any report.

use ira_core::{AgentConfig, Environment, ResearchAgent, RoleDefinition};
use ira_engine::{Engine, SessionConfig};
use ira_evalkit::quiz::QuizBank;
use ira_evalkit::robustness::chaos_sweep_threads;
use ira_evalkit::runner::{evaluate_agent, evaluate_scenario, sweep};
use ira_webcorpus::CorpusConfig;
use ira_worldmodel::scenario::{lookup, ScenarioRegistry, ScenarioSpec};

const CABLE_Q: &str = "Which is more vulnerable to solar activity? The fiber optic cable that \
                       connects Brazil to Europe or the one that connects the US to Europe?";

/// Engine sessions must reproduce the legacy quiz evaluation exactly:
/// same trajectories, same verdicts, same provenance — the whole
/// `EvalRun` JSON.
#[test]
fn engine_quiz_run_matches_legacy_byte_for_byte() {
    let env = Environment::standard();
    let quiz = QuizBank::from_world(&env.world);
    let conclusions = env.world.conclusions();
    let mut legacy = ResearchAgent::bob(&env);
    legacy.train();
    let legacy_run = evaluate_agent(&mut legacy, &quiz, &conclusions);

    let engine = Engine::new();
    let mut session = engine.spawn_session(SessionConfig::bob());
    let quiz2 = QuizBank::from_world(session.world());
    let conclusions2 = session.world().conclusions();
    session.agent.train();
    let engine_run = evaluate_agent(&mut session.agent, &quiz2, &conclusions2);

    assert_eq!(
        serde_json::to_string(&legacy_run).unwrap(),
        serde_json::to_string(&engine_run).unwrap(),
        "engine session must be indistinguishable from the legacy environment"
    );
}

/// The flagship sweep determinism contract: a self-learning run per
/// seed, fanned out over 4 threads, must serialize identically to the
/// serial sweep.
#[test]
fn parallel_seed_sweep_is_byte_identical_to_serial() {
    let seeds: Vec<u64> = (0..6).map(|i| 0x5EED + i * 0x101).collect();

    let run = |threads: usize| -> Vec<String> {
        let engine = Engine::new();
        sweep(seeds.clone(), threads, |_, seed| {
            let mut session = engine.spawn_session(SessionConfig {
                corpus: CorpusConfig {
                    seed,
                    distractor_count: 150,
                    ..CorpusConfig::default()
                },
                net_seed: seed ^ 0xBEEF,
                llm_seed: seed,
                ..SessionConfig::bob()
            });
            session.agent.train();
            let trajectory = session.agent.self_learn(CABLE_Q);
            let answer = session.agent.ask(CABLE_Q);
            format!(
                "{}|{:?}|{}",
                serde_json::to_string(&trajectory).unwrap(),
                answer.verdict,
                session.now_us(),
            )
        })
    };

    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "thread count must not change any sweep byte"
    );
    assert_eq!(serial.len(), seeds.len());
}

/// The scenario matrix (ISSUE 8): every registered scenario, trained
/// and quizzed through the scenario-aware EvalRun path, must serialize
/// identically at 1, 4, and 8 threads — the determinism bar the
/// `m1_scenario_matrix` bench builds on.
#[test]
fn scenario_matrix_is_byte_identical_across_thread_counts() {
    let scenarios = ScenarioRegistry::standard().names();

    let run = |threads: usize| -> Vec<String> {
        let engine = Engine::new();
        sweep(scenarios.clone(), threads, |_, name| {
            let spec = ScenarioSpec::named(name);
            let mut session = engine
                .spawn_session(SessionConfig::for_scenario(&spec).expect("registered scenario"));
            session.agent.train();
            let scenario = lookup(name).expect("registered scenario");
            let world = session.env.world.clone();
            let eval = evaluate_scenario(&mut session.agent, scenario.as_ref(), &world);
            format!(
                "{name}|{}|{}",
                serde_json::to_string(&eval).unwrap(),
                session.now_us()
            )
        })
    };

    let serial = run(1);
    for threads in [4usize, 8] {
        assert_eq!(
            serial,
            run(threads),
            "thread count {threads} changed a scenario-matrix byte"
        );
    }
    assert_eq!(serial.len(), scenarios.len());
}

/// The chaos sweep exposed through the threaded API must match the
/// serial path level for level.
#[test]
fn parallel_chaos_sweep_matches_serial() {
    let intensities = [0.0, 0.25];
    let serial = chaos_sweep_threads(&intensities, 0xC4A0, 1);
    let parallel = chaos_sweep_threads(&intensities, 0xC4A0, 4);
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
    );
}

/// Distinct configs must not cross-contaminate through the shared
/// engine: a low-threshold and a high-threshold session spawned from
/// one engine behave exactly like two legacy environments.
#[test]
fn engine_threshold_sessions_match_legacy_environments() {
    let engine = Engine::new();
    for threshold in [3u8, 9] {
        let config = AgentConfig {
            confidence_threshold: threshold,
            ..AgentConfig::default()
        };

        let env = Environment::standard();
        let mut legacy = ResearchAgent::new(RoleDefinition::bob(), &env, config, 0xB0B);
        legacy.train();
        let legacy_t = legacy.self_learn(CABLE_Q);

        let mut session = engine.spawn_session(SessionConfig {
            agent: config,
            ..SessionConfig::bob()
        });
        session.agent.train();
        let engine_t = session.agent.self_learn(CABLE_Q);

        assert_eq!(
            serde_json::to_string(&legacy_t).unwrap(),
            serde_json::to_string(&engine_t).unwrap(),
            "threshold {threshold} session diverged from legacy"
        );
    }
    assert_eq!(
        engine.corpus_builds(),
        1,
        "both sessions must share the corpus"
    );
}
