//! ISSUE 9 integration contract: the sim-LLM's reasoning rules cover
//! every registered scenario class, not just the solar lexicon.
//!
//! Four bars, each pinned cross-crate so neither side can drift alone:
//!
//! 1. **Classification** — every registered scenario's quiz questions
//!    classify to the expected [`Intent`] variant (table keyed by
//!    conclusion id), and the solar questions classify exactly as they
//!    did before the scenario-class rules existed (isolation).
//! 2. **Learning** — every registered scenario's quiz drives at least
//!    one self-learning round and one search, and lands at least one
//!    consistent answer (the pre-fix defect was 0/0/0 for three of
//!    four scenarios).
//! 3. **Places** — every landing country and power grid named by the
//!    scenarios' corpora round-trips through
//!    `intent::normalize_place`/`place_region` to a real region name.
//! 4. **Class tables** — every [`ScenarioClass`] label has a search
//!    vocabulary table in `ira_simllm::classterms`, and each
//!    event-emitting scenario's documents actually contain words from
//!    its class's table (so proposed searches can rank the event docs).

use ira_engine::{Engine, SessionConfig};
use ira_evalkit::runner::evaluate_scenario;
use ira_simllm::classterms::ClassLexicon;
use ira_simllm::intent::{self, CableQuestion, GridQuestion, Intent, RoutingQuestion};
use ira_worldmodel::scenario::{lookup, ScenarioClass, ScenarioRegistry, ScenarioSpec};
use ira_worldmodel::{Region, World};

/// Expected intent shape per conclusion id, across all four registered
/// scenarios. Solar ids map to the pre-existing solar intents — pinning
/// them here is the cross-scenario isolation guarantee.
fn expected_intent(id: &str, intent: &Intent) -> bool {
    match id {
        // Solar (ids are the Debug form of ConclusionId).
        "BrazilEuropeCableSafer" => {
            matches!(intent, Intent::CompareCableVulnerability { .. })
        }
        "GoogleBetterSpread" => matches!(intent, Intent::CompareOperatorVulnerability { .. }),
        "HigherLatitudeHigherRisk" => matches!(intent, Intent::LatitudeDependence),
        "RepeatersAreWeakPoint" => matches!(intent, Intent::WeakComponent),
        "SubmarineOverTerrestrial" => matches!(intent, Intent::SubmarineVsTerrestrial),
        "UsMoreSusceptibleThanAsia" => {
            matches!(intent, Intent::CompareRegionSusceptibility { .. })
        }
        "LongerCablesHigherRisk" => matches!(intent, Intent::LengthEffect),
        "InterContinentalPartition" => matches!(intent, Intent::PartitionImpact),
        // Cable cut (physical-damage).
        "CableCutCause" => matches!(
            intent,
            Intent::CableIncident {
                kind: CableQuestion::Cause,
                ..
            }
        ),
        "CableCutCorridorRedundancy" => matches!(
            intent,
            Intent::CableIncident {
                kind: CableQuestion::CorridorRedundancy,
                ..
            }
        ),
        "CableCutRepeatersLost" => matches!(
            intent,
            Intent::CableIncident {
                kind: CableQuestion::RepeatersLost,
                ..
            }
        ),
        "CableCutRepairMethod" => matches!(
            intent,
            Intent::CableIncident {
                kind: CableQuestion::RepairMethod,
                ..
            }
        ),
        "CableCutLength" => matches!(
            intent,
            Intent::CableIncident {
                kind: CableQuestion::Length,
                ..
            }
        ),
        // Regional grid failure (power-failure).
        "GridFailureCause" => matches!(
            intent,
            Intent::GridIncident {
                kind: GridQuestion::Cause,
                ..
            }
        ),
        "GridFailureMostExposed" => matches!(
            intent,
            Intent::GridIncident {
                kind: GridQuestion::MostExposed,
                ..
            }
        ),
        "GridFailureLowLatitudeImmune" => matches!(
            intent,
            Intent::GridIncident {
                kind: GridQuestion::LowLatitudeRisk,
                ..
            }
        ),
        "GridFailureTransformers" => matches!(
            intent,
            Intent::GridIncident {
                kind: GridQuestion::FailingComponent,
                ..
            }
        ),
        // Route leak (routing).
        "RouteLeakCause" => matches!(
            intent,
            Intent::RoutingIncident {
                kind: RoutingQuestion::Cause,
                ..
            }
        ),
        "RouteLeakAvailability" => matches!(
            intent,
            Intent::RoutingIncident {
                kind: RoutingQuestion::AvailabilityDuring,
                ..
            }
        ),
        "RouteLeakContentStillAnnounced" => matches!(
            intent,
            Intent::RoutingIncident {
                kind: RoutingQuestion::ContentPrefixes,
                ..
            }
        ),
        "RouteLeakRecovery" => matches!(
            intent,
            Intent::RoutingIncident {
                kind: RoutingQuestion::Recovery,
                ..
            }
        ),
        other => panic!("no expected intent registered for conclusion id {other}"),
    }
}

/// Bar 1: table-driven classification over every registered scenario's
/// quiz, with the solar rows doubling as the isolation test — if a new
/// scenario-class rule ever captured a solar question, its row here
/// would stop matching its pre-existing solar intent.
#[test]
fn every_scenario_quiz_question_classifies_to_its_intent() {
    let world = World::standard();
    let mut checked = 0;
    for name in ScenarioRegistry::standard().names() {
        let scenario = lookup(name).expect("registered scenario");
        for c in scenario.conclusions(&world) {
            let intent = intent::classify(&c.question);
            assert!(
                expected_intent(&c.id, &intent),
                "{name}/{}: question {:?} classified as {intent:?}",
                c.id,
                c.question
            );
            assert!(
                !matches!(intent, Intent::Unknown),
                "{name}/{}: fell through to Unknown (the pre-fix no-learning path)",
                c.id
            );
            checked += 1;
        }
    }
    assert!(checked >= 21, "expected all four quizzes, saw {checked}");
}

/// Bar 2: the pre-fix defect pinned as a regression test — every
/// registered scenario's quiz must drive at least one learning round
/// and one search, and score at least one consistent answer.
#[test]
fn every_scenario_quiz_learns_searches_and_scores() {
    let engine = Engine::new();
    for name in ScenarioRegistry::standard().names() {
        let spec = ScenarioSpec::named(name);
        let mut session =
            engine.spawn_session(SessionConfig::for_scenario(&spec).expect("registered scenario"));
        session.agent.train();
        let scenario = lookup(name).expect("registered scenario");
        let world = session.env.world.clone();
        let run = evaluate_scenario(&mut session.agent, scenario.as_ref(), &world);
        assert!(
            run.total_learning_rounds() >= 1,
            "{name}: no learning rounds (pre-fix defect)"
        );
        assert!(
            run.total_searches() >= 1,
            "{name}: no searches (pre-fix defect)"
        );
        assert!(
            run.consistency.consistent_count() >= 1,
            "{name}: nothing consistent ({}/{})",
            run.consistency.consistent_count(),
            run.consistency.total()
        );
    }
}

/// Bar 3: every place a registered scenario's corpus can name — cable
/// landing countries and power grids, plus the region names themselves
/// — resolves through the place tables to a real region.
#[test]
fn scenario_places_round_trip_through_the_region_tables() {
    let world = World::standard();
    let region_names: Vec<&str> = Region::ALL.iter().map(|r| r.name()).collect();

    for cable in world.cables.iter() {
        for country in [&cable.from.country, &cable.to.country] {
            let place = intent::normalize_place(country);
            let region = intent::place_region(&place).unwrap_or_else(|| {
                panic!(
                    "landing country {country:?} (from {}) has no region",
                    cable.name
                )
            });
            assert!(
                region_names.contains(&region),
                "{country} mapped to unknown region {region}"
            );
        }
    }
    for grid in world.grids.iter() {
        let place = intent::normalize_place(&grid.name);
        let region = intent::place_region(&place)
            .unwrap_or_else(|| panic!("grid {:?} has no region", grid.name));
        assert_eq!(
            region,
            grid.region.name(),
            "grid {} mapped to the wrong region",
            grid.name
        );
    }
    for region in Region::ALL {
        let place = intent::normalize_place(region.name());
        assert_eq!(intent::place_region(&place), Some(region.name()));
    }
}

/// Bar 4: classterms tables exist for every scenario class, and each
/// event-emitting scenario's documents carry words from its class's
/// vocabulary, so the queries `propose_searches` builds from those
/// tables can actually rank the scenario's event pages.
#[test]
fn class_term_tables_cover_every_scenario_class_and_ground_its_docs() {
    let lex = ClassLexicon::shared();
    for class in ScenarioClass::ALL {
        assert!(
            lex.vocabulary(class.label()).is_some(),
            "no classterms table for {:?} ({})",
            class,
            class.label()
        );
    }

    let world = World::standard();
    for name in ScenarioRegistry::standard().names() {
        let scenario = lookup(name).expect("registered scenario");
        let docs = scenario.docs(&world);
        if docs.events.is_empty() {
            continue; // solar: the base corpus is its web
        }
        let label = scenario.class().label();
        let text = docs
            .events
            .iter()
            .flat_map(|d| d.sentences.iter())
            .cloned()
            .collect::<Vec<_>>()
            .join(" ")
            .to_lowercase();
        let covered = lex
            .vocabulary(label)
            .expect("table exists")
            .iter()
            .filter(|w| text.contains(*w))
            .count();
        assert!(
            covered >= 4,
            "{name}: only {covered} {label} vocabulary words appear in its event docs"
        );
    }
}
