//! Confidence-trajectory reporting (experiments E2/E3).

use ira_core::selflearn::LearningTrajectory;

/// Render a trajectory as the fixed-width table the experiment
/// binaries print.
pub fn render_table(t: &LearningTrajectory) -> String {
    let mut out = String::new();
    out.push_str(&format!("question: {}\n", t.question));
    out.push_str(&format!("threshold: {}\n", t.threshold));
    out.push_str("round  conf  coverage  searches  memorized  verdict\n");
    for r in &t.rounds {
        out.push_str(&format!(
            "{:>5}  {:>4}  {:>8.2}  {:>8}  {:>9}  {}\n",
            r.round,
            r.confidence,
            r.coverage,
            r.searches.len(),
            r.memorized,
            r.verdict.as_deref().unwrap_or("(hedge)")
        ));
    }
    out.push_str(&format!(
        "reached threshold: {} (confidence {} -> {})\n",
        t.reached_threshold,
        t.initial_confidence().unwrap_or(0),
        t.final_confidence().unwrap_or(0)
    ));
    out
}

/// CSV form: `round,confidence,coverage,searches,memorized`.
pub fn render_csv(t: &LearningTrajectory) -> String {
    let mut out = String::from("round,confidence,coverage,searches,memorized\n");
    for r in &t.rounds {
        out.push_str(&format!(
            "{},{},{:.3},{},{}\n",
            r.round,
            r.confidence,
            r.coverage,
            r.searches.len(),
            r.memorized
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ira_simllm::reason::Answer;

    fn trajectory() -> LearningTrajectory {
        let mut t = LearningTrajectory::new("test question", 7);
        let mk = |c: u8, verdict: Option<&str>| Answer {
            text: "answer".into(),
            verdict: verdict.map(str::to_owned),
            confidence: c,
            coverage: c as f64 / 10.0,
            missing: Vec::new(),
            principles_used: Vec::new(),
            facts_used: 0,
            reasoning: Vec::new(),
        };
        t.record(0, &mk(3, None), Vec::new(), 0);
        t.record(
            1,
            &mk(9, Some("the US cable")),
            vec!["q1".into(), "q2".into()],
            4,
        );
        t
    }

    #[test]
    fn table_shows_both_rounds() {
        let text = render_table(&trajectory());
        assert!(text.contains("test question"));
        assert!(text.contains("(hedge)"));
        assert!(text.contains("the US cable"));
        assert!(text.contains("confidence 3 -> 9"));
    }

    #[test]
    fn csv_has_header_plus_rows() {
        let csv = render_csv(&trajectory());
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "round,confidence,coverage,searches,memorized");
        assert!(lines[1].starts_with("0,3,"));
        assert!(lines[2].starts_with("1,9,"));
    }
}
