//! Confidence calibration.
//!
//! The paper's whole control loop hangs on the agent's self-reported
//! 0–10 confidence ("if the confidence score falls below a predefined
//! threshold … the agent is deemed insufficiently qualified"). That
//! only works if the score is *calibrated*: answers given at
//! confidence 9 should be right far more often than answers given at
//! 3. This module measures it: collect (confidence, was-correct)
//! samples across questions and seeds, bucket them, and compute the
//! standard summary numbers.

use serde::{Deserialize, Serialize};

/// One observation: the agent answered at `confidence` and the answer
/// was (or was not) consistent with ground truth.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CalibrationSample {
    pub confidence: u8,
    pub correct: bool,
}

/// Accumulated calibration statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Calibration {
    samples: Vec<CalibrationSample>,
}

/// One row of the calibration table.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CalibrationBucket {
    /// Inclusive confidence range covered by this bucket.
    pub lo: u8,
    pub hi: u8,
    pub samples: usize,
    /// Observed accuracy within the bucket.
    pub accuracy: f64,
    /// Mean stated confidence (as a probability, /10).
    pub stated: f64,
}

impl Calibration {
    pub fn new() -> Self {
        Calibration::default()
    }

    pub fn record(&mut self, confidence: u8, correct: bool) {
        assert!(confidence <= 10, "confidence is a 0-10 scale");
        self.samples.push(CalibrationSample {
            confidence,
            correct,
        });
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Bucket the samples into the given inclusive ranges.
    pub fn buckets(&self, ranges: &[(u8, u8)]) -> Vec<CalibrationBucket> {
        ranges
            .iter()
            .map(|&(lo, hi)| {
                let in_bucket: Vec<&CalibrationSample> = self
                    .samples
                    .iter()
                    .filter(|s| s.confidence >= lo && s.confidence <= hi)
                    .collect();
                let n = in_bucket.len();
                let correct = in_bucket.iter().filter(|s| s.correct).count();
                let stated = if n == 0 {
                    0.0
                } else {
                    in_bucket
                        .iter()
                        .map(|s| s.confidence as f64 / 10.0)
                        .sum::<f64>()
                        / n as f64
                };
                CalibrationBucket {
                    lo,
                    hi,
                    samples: n,
                    accuracy: if n == 0 {
                        0.0
                    } else {
                        correct as f64 / n as f64
                    },
                    stated,
                }
            })
            .collect()
    }

    /// Brier score: mean squared error between stated probability
    /// (confidence/10) and the 0/1 outcome. 0 is perfect; 0.25 is the
    /// score of always saying 0.5.
    pub fn brier_score(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| {
                let p = s.confidence as f64 / 10.0;
                let y = if s.correct { 1.0 } else { 0.0 };
                (p - y) * (p - y)
            })
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Expected calibration error over the standard buckets: the
    /// sample-weighted mean |accuracy − stated confidence|.
    pub fn expected_calibration_error(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let buckets = self.buckets(&[(0, 2), (3, 4), (5, 6), (7, 8), (9, 10)]);
        let total: usize = buckets.iter().map(|b| b.samples).sum();
        buckets
            .iter()
            .filter(|b| b.samples > 0)
            .map(|b| (b.samples as f64 / total as f64) * (b.accuracy - b.stated).abs())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfectly_calibrated() -> Calibration {
        // At confidence c, exactly c of 10 samples are correct.
        let mut cal = Calibration::new();
        for c in 0..=10u8 {
            for i in 0..10 {
                cal.record(c, i < c);
            }
        }
        cal
    }

    #[test]
    fn perfect_calibration_has_low_ece() {
        let cal = perfectly_calibrated();
        assert!(
            cal.expected_calibration_error() < 0.06,
            "ece {}",
            cal.expected_calibration_error()
        );
    }

    #[test]
    fn overconfidence_is_detected() {
        let mut cal = Calibration::new();
        // Claims 9/10 but is right only half the time.
        for i in 0..100 {
            cal.record(9, i % 2 == 0);
        }
        let ece = cal.expected_calibration_error();
        assert!((ece - 0.4).abs() < 0.02, "ece {ece}");
        assert!(cal.brier_score() > 0.2);
    }

    #[test]
    fn buckets_partition_and_count() {
        let cal = perfectly_calibrated();
        let buckets = cal.buckets(&[(0, 4), (5, 10)]);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].samples + buckets[1].samples, cal.len());
        assert!(
            buckets[1].accuracy > buckets[0].accuracy,
            "higher confidence, higher accuracy"
        );
    }

    #[test]
    fn empty_calibration_is_safe() {
        let cal = Calibration::new();
        assert_eq!(cal.brier_score(), 0.0);
        assert_eq!(cal.expected_calibration_error(), 0.0);
        assert!(cal.buckets(&[(0, 10)])[0].samples == 0);
    }

    #[test]
    #[should_panic(expected = "0-10")]
    fn out_of_range_confidence_is_rejected() {
        Calibration::new().record(11, true);
    }
}
