//! Plain-text table rendering shared by the experiment binaries.

/// Render rows as a fixed-width table with a header rule.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render rows as CSV (no quoting — callers keep cells comma-free).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        debug_assert!(
            row.iter().all(|c| !c.contains(',')),
            "cells must be comma-free"
        );
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Render a markdown table.
pub fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Render a full evaluation run as a standalone markdown report — the
/// artifact a deployment would archive per investigation.
pub fn markdown_report(
    title: &str,
    run: &crate::runner::EvalRun,
    baseline: &crate::consistency::ConsistencyReport,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n\n"));
    out.push_str(&format!(
        "**Result:** {} · baseline: {} of {}\n\n",
        run.consistency.summary(),
        baseline.consistent_count(),
        baseline.total()
    ));

    out.push_str("## Per-question results\n\n");
    let rows: Vec<Vec<String>> = run
        .consistency
        .per_item
        .iter()
        .map(|r| {
            vec![
                r.id.clone(),
                r.verdict.clone().unwrap_or_else(|| "*(hedge)*".into()),
                r.confidence.to_string(),
                if r.matched.consistent {
                    "yes"
                } else {
                    "**no**"
                }
                .to_string(),
            ]
        })
        .collect();
    out.push_str(&md_table(
        &["question", "verdict", "confidence", "consistent"],
        &rows,
    ));

    out.push_str("\n## Self-learning trajectories\n\n");
    let rows: Vec<Vec<String>> = run
        .trajectories
        .iter()
        .map(|t| {
            let series: Vec<String> = t.confidence_series().iter().map(u8::to_string).collect();
            vec![
                t.question.chars().take(60).collect::<String>(),
                series.join(" → "),
                t.total_searches().to_string(),
            ]
        })
        .collect();
    out.push_str(&md_table(&["question", "confidence", "searches"], &rows));

    out.push_str("\n## Provenance\n\n");
    let p = &run.provenance;
    out.push_str(&format!(
        "{} knowledge entries from {} distinct sources; answer-key leaks: {}; audit: {}\n\n",
        p.entries,
        p.distinct_sources,
        p.answer_key_leaks,
        if p.clean() { "clean" } else { "**dirty**" }
    ));
    let rows: Vec<Vec<String>> = p
        .source_histogram
        .iter()
        .map(|(kind, count)| vec![kind.clone(), count.to_string()])
        .collect();
    out.push_str(&md_table(&["source kind", "entries"], &rows));
    out
}

/// A standard experiment banner.
pub fn banner(id: &str, title: &str, paper_claim: &str) -> String {
    format!("=== {id}: {title} ===\npaper: {paper_claim}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["short".into(), "1".into()],
                vec!["much longer name".into(), "22".into()],
            ],
        );
        let lines: Vec<_> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Both value cells start at the same column.
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find("22").unwrap(), col);
    }

    #[test]
    fn csv_joins_cells() {
        let c = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn md_table_renders() {
        let t = md_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t, "| a | b |\n|---|---|\n| 1 | 2 |\n");
    }

    #[test]
    fn banner_shape() {
        let b = banner("E1", "Conclusion consistency", "7 of 8 conclusions");
        assert!(b.starts_with("=== E1: Conclusion consistency ==="));
        assert!(b.contains("paper: 7 of 8"));
    }
}
