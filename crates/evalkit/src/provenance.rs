//! Knowledge-provenance audit.
//!
//! §4.1/§4.2 of the paper stress that Bob "does not receive this
//! research paper … as a knowledge base" and that the authors "verify
//! the sources of the knowledge". This module replays that audit over
//! the agent's memory: a per-source histogram, and a check that no
//! memorised entry contains the expert conclusions verbatim (which
//! would mean the agent read the answer key rather than deriving it).

use ira_agentmem::KnowledgeStore;
use ira_worldmodel::conclusions::ConclusionSet;
use serde::{Deserialize, Serialize};

/// The audit result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProvenanceReport {
    /// Entries per source kind.
    pub source_histogram: Vec<(String, usize)>,
    /// Total entries audited.
    pub entries: usize,
    /// Entries whose content contains an expert conclusion statement
    /// verbatim (should be zero — the conclusions are never published
    /// in the corpus).
    pub answer_key_leaks: usize,
    /// Distinct source URLs.
    pub distinct_sources: usize,
}

impl ProvenanceReport {
    /// Audit a knowledge store against the conclusion set.
    pub fn audit(store: &KnowledgeStore, conclusions: &ConclusionSet) -> Self {
        let statements: Vec<String> = conclusions.iter().map(|c| c.statement.clone()).collect();
        Self::audit_statements(store, &statements)
    }

    /// Audit against an arbitrary answer key — the scenario-aware path,
    /// where the statements come from a scenario's derived conclusions
    /// rather than the solar [`ConclusionSet`].
    pub fn audit_statements(store: &KnowledgeStore, statements: &[String]) -> Self {
        let entries = store.entries();
        let mut leaks = 0;
        for e in &entries {
            for statement in statements {
                if e.content.contains(statement) {
                    leaks += 1;
                }
            }
        }
        let mut urls: Vec<&str> = entries.iter().map(|e| e.source_url.as_str()).collect();
        urls.sort();
        urls.dedup();
        ProvenanceReport {
            source_histogram: store.source_histogram(),
            entries: entries.len(),
            answer_key_leaks: leaks,
            distinct_sources: urls.len(),
        }
    }

    /// The audit passes when learning was multi-source and leak-free.
    pub fn clean(&self) -> bool {
        self.answer_key_leaks == 0 && self.distinct_sources >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ira_worldmodel::World;

    fn store_with(contents: &[(&str, &str)]) -> KnowledgeStore {
        let s = KnowledgeStore::with_defaults();
        for (i, (content, url)) in contents.iter().enumerate() {
            s.memorize("t", content, url, "news", i as u64, 0.5);
        }
        s
    }

    #[test]
    fn clean_store_passes() {
        let s = store_with(&[
            ("Geomagnetic storms threaten repeaters.", "sim://a.test/1"),
            (
                "The EllaLink cable connects Brazil to Portugal.",
                "sim://b.test/2",
            ),
        ]);
        let report = ProvenanceReport::audit(&s, &World::standard().conclusions());
        assert!(report.clean());
        assert_eq!(report.entries, 2);
        assert_eq!(report.distinct_sources, 2);
        assert_eq!(report.answer_key_leaks, 0);
    }

    #[test]
    fn answer_key_leak_is_detected() {
        let world = World::standard();
        let conclusions = world.conclusions();
        let statement = conclusions.iter().next().unwrap().statement.clone();
        let s = store_with(&[
            (&format!("Leaked: {statement}"), "sim://leak.test/1"),
            (
                "Innocent content about cables and storms.",
                "sim://b.test/2",
            ),
        ]);
        let report = ProvenanceReport::audit(&s, &conclusions);
        assert_eq!(report.answer_key_leaks, 1);
        assert!(!report.clean());
    }

    #[test]
    fn single_source_store_is_flagged() {
        let s = store_with(&[("One single source only.", "sim://solo.test/1")]);
        let report = ProvenanceReport::audit(&s, &World::standard().conclusions());
        assert!(!report.clean());
    }
}
