//! Verdict matching: does an agent answer assert the expert conclusion?
//!
//! A match requires three things:
//!
//! 1. the agent *committed* (hedged answers never match — the paper's
//!    ChatGPT baseline fails exactly this way),
//! 2. the verdict covers the expected answer's signature terms and
//!    contains none of the wrong-side terms,
//! 3. the rationale mentions enough of the expected reasoning
//!    vocabulary.

use crate::quiz::QuizItem;
use ira_simllm::reason::Answer;
use serde::{Deserialize, Serialize};

/// Share of signature terms that must appear in the verdict.
const SIGNATURE_THRESHOLD: f64 = 0.7;
/// Share of rationale terms that must appear in the answer text.
const RATIONALE_THRESHOLD: f64 = 0.34;

/// Outcome of matching one answer against one quiz item.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerdictMatch {
    /// The agent committed to some verdict at all.
    pub committed: bool,
    /// Fraction of expected signature terms found in the verdict.
    pub signature_score: f64,
    /// A wrong-side term appeared in the verdict.
    pub wrong_side: bool,
    /// Fraction of rationale terms found in the answer text.
    pub rationale_score: f64,
    /// The overall call: consistent with the expert conclusion.
    pub consistent: bool,
}

/// Normalise text for matching: lowercase and expand the common
/// country abbreviations the questions use.
fn normalize(text: &str) -> String {
    let lower = text.to_lowercase();
    // Cheap token-boundary-aware replacement of "us"/"u.s." → the full
    // name, so "the US to Europe" matches "United States".
    let mut out = String::with_capacity(lower.len() + 16);
    for word in lower.split_whitespace() {
        let cleaned = word.trim_matches(|c: char| !c.is_alphanumeric() && c != '\'');
        let mapped = match cleaned {
            "us" | "u.s" | "usa" => "united states",
            other => other,
        };
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(mapped);
    }
    out
}

/// Content words of the expected answer (the "signature").
fn signature_terms(expected: &str) -> Vec<String> {
    const SKIP: &[&str] = &[
        "the", "a", "an", "to", "of", "is", "are", "more", "most", "yes", "no", "and", "or",
        "that", "its", "it", "than", "while",
    ];
    normalize(expected)
        .split_whitespace()
        .filter(|w| w.len() > 1 && !SKIP.contains(w))
        .map(str::to_owned)
        .collect()
}

/// Match one answer against one quiz item.
pub fn match_verdict(answer: &Answer, item: &QuizItem) -> VerdictMatch {
    let text_norm = normalize(&answer.text);
    let rationale_terms = &item.rationale_terms;
    let rationale_hits = rationale_terms
        .iter()
        .filter(|t| text_norm.contains(t.as_str()))
        .count();
    let rationale_score = if rationale_terms.is_empty() {
        1.0
    } else {
        rationale_hits as f64 / rationale_terms.len() as f64
    };

    let Some(verdict) = &answer.verdict else {
        return VerdictMatch {
            committed: false,
            signature_score: 0.0,
            wrong_side: false,
            rationale_score,
            consistent: false,
        };
    };

    // Match the signature against the verdict plus the leading sentence
    // of the answer (models often state the choice there).
    let verdict_norm = format!(
        "{} {}",
        normalize(verdict),
        normalize(answer.text.split('.').next().unwrap_or(""))
    );
    let signature = signature_terms(&item.expected_answer);
    let hits = signature
        .iter()
        .filter(|t| verdict_norm.contains(t.as_str()))
        .count();
    let signature_score = if signature.is_empty() {
        1.0
    } else {
        hits as f64 / signature.len() as f64
    };
    let wrong_side = item
        .wrong_terms
        .iter()
        .any(|t| verdict_norm.contains(t.as_str()));

    VerdictMatch {
        committed: true,
        signature_score,
        wrong_side,
        rationale_score,
        consistent: signature_score >= SIGNATURE_THRESHOLD
            && !wrong_side
            && rationale_score >= RATIONALE_THRESHOLD,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ira_worldmodel::World;

    fn item(id: &str) -> QuizItem {
        crate::quiz::QuizBank::from_world(&World::standard())
            .get(id)
            .unwrap()
            .clone()
    }

    fn answer(text: &str, verdict: Option<&str>) -> Answer {
        Answer {
            text: text.into(),
            verdict: verdict.map(str::to_owned),
            confidence: 8,
            coverage: 0.9,
            missing: Vec::new(),
            principles_used: Vec::new(),
            facts_used: 3,
            reasoning: Vec::new(),
        }
    }

    #[test]
    fn correct_cable_verdict_matches() {
        let item = item("BrazilEuropeCableSafer");
        let ans = answer(
            "The cable connecting United States to Europe is more vulnerable. Solar activity \
             has a more significant impact at higher geomagnetic latitudes.",
            Some("the cable connecting United States to Europe"),
        );
        let m = match_verdict(&ans, &item);
        assert!(m.consistent, "{m:?}");
    }

    #[test]
    fn wrong_side_cable_verdict_is_rejected() {
        let item = item("BrazilEuropeCableSafer");
        let ans = answer(
            "The cable connecting Brazil to Europe is more vulnerable because of higher \
             geomagnetic latitude exposure.",
            Some("the cable connecting Brazil to Europe"),
        );
        let m = match_verdict(&ans, &item);
        assert!(!m.consistent);
        assert!(m.wrong_side);
    }

    #[test]
    fn hedged_answer_never_matches() {
        let item = item("BrazilEuropeCableSafer");
        let ans = answer(
            "Both cables can be vulnerable to solar activity; the exact impact can vary with \
             geomagnetic latitude and design.",
            None,
        );
        let m = match_verdict(&ans, &item);
        assert!(!m.committed);
        assert!(!m.consistent);
    }

    #[test]
    fn abbreviated_us_matches_united_states() {
        let item = item("BrazilEuropeCableSafer");
        let ans = answer(
            "The cable connecting the US to Europe is more exposed given the higher \
             geomagnetic latitudes along its route.",
            Some("the cable connecting the US to Europe"),
        );
        assert!(match_verdict(&ans, &item).consistent);
    }

    #[test]
    fn datacenter_wrong_operator_is_rejected() {
        let item = item("GoogleBetterSpread");
        let right = answer(
            "Facebook's data centers are more vulnerable given Google's broader spread across \
             Asia and South America, which makes its footprint more dispersed.",
            Some("Facebook's data centers are more vulnerable"),
        );
        assert!(match_verdict(&right, &item).consistent);
        let wrong = answer(
            "Google's data centers are more vulnerable because they are more spread out and \
             dispersed across Asia and South America.",
            Some("Google's data centers are more vulnerable"),
        );
        assert!(!match_verdict(&wrong, &item).consistent);
    }

    #[test]
    fn rationale_free_answer_fails_the_rationale_gate() {
        let item = item("BrazilEuropeCableSafer");
        let ans = answer(
            "The cable connecting United States to Europe. Just trust me on this one.",
            Some("the cable connecting United States to Europe"),
        );
        let m = match_verdict(&ans, &item);
        assert!(!m.consistent, "no reasoning vocabulary present: {m:?}");
    }

    #[test]
    fn all_quiz_items_accept_their_own_expected_answer() {
        let world = World::standard();
        let quiz = crate::quiz::QuizBank::from_world(&world);
        for item in quiz.iter() {
            let text = format!(
                "{} This follows because {}.",
                item.expected_answer,
                item.rationale_terms.join(" and ")
            );
            let ans = answer(&text, Some(&item.expected_answer));
            let m = match_verdict(&ans, &item.clone());
            assert!(
                m.consistent,
                "{:?} rejected its own expected answer: {m:?}",
                item.id
            );
        }
    }
}
