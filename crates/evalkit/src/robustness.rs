//! Chaos / degradation evaluation (experiment X13).
//!
//! Sweeps fault intensity (the fraction of hosts given fault windows —
//! blackouts, flaky periods, rate-limit storms, corrupted bodies) and
//! measures how gracefully the agent degrades: quiz consistency,
//! self-learning effort, wasted network work, and circuit-breaker
//! activity at each level. The paper's interactive-agent vision demands
//! an agent that finishes with partial knowledge and honest confidence
//! when parts of the web disappear, rather than aborting.

use crate::quiz::QuizBank;
use crate::runner::{evaluate_agent, sweep};
use ira_engine::{Engine, FaultSpec, SessionConfig};
use ira_simnet::Duration;
use serde::{Deserialize, Serialize};

/// Fault horizon used by the sweep. A full train + quiz run spans
/// roughly 220 virtual seconds (dominated by simulated inference
/// latency), so windows are scheduled across a 240-second horizon —
/// long enough to cover the whole run, short enough that windows
/// actually intersect it.
pub fn chaos_horizon() -> Duration {
    Duration::from_secs(240)
}

/// Everything measured at one fault-intensity level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosLevelReport {
    /// Fraction of hosts faulted, [0, 1].
    pub intensity: f64,
    /// Fault windows actually scheduled.
    pub fault_windows: usize,
    /// Quiz conclusions consistent with the expert set.
    pub consistent: usize,
    /// Quiz size.
    pub total: usize,
    pub mean_confidence: f64,
    /// Self-learning rounds spent across the quiz.
    pub learning_rounds: u32,
    /// Requests wasted on the network: transmissions lost or rejected
    /// (fault drops, flaky loss, rate-limit storms).
    pub wasted_network: u64,
    /// Requests the circuit breaker rejected without touching the
    /// network (fetch budget saved by failing fast).
    pub fast_failures: u64,
    /// Breaker state transitions (opened + half-opened + reclosed).
    pub breaker_transitions: u64,
    /// Ranked sources skipped during training because their host's
    /// breaker was open (the agent rerouted down the ranking).
    pub source_unavailable: u32,
    /// Fault events the network charged, by class total.
    pub fault_events: u64,
}

/// One full sweep over fault intensities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosSweep {
    pub levels: Vec<ChaosLevelReport>,
}

impl ChaosSweep {
    /// The fault-free reference level, if the sweep includes one.
    pub fn baseline(&self) -> Option<&ChaosLevelReport> {
        self.levels.iter().find(|l| l.intensity == 0.0)
    }

    /// Largest consistency drop (in conclusions) versus the fault-free
    /// level, across all faulted levels.
    pub fn worst_degradation(&self) -> usize {
        let Some(base) = self.baseline() else {
            return 0;
        };
        self.levels
            .iter()
            .filter(|l| l.intensity > 0.0)
            .map(|l| base.consistent.saturating_sub(l.consistent))
            .max()
            .unwrap_or(0)
    }
}

/// Train and evaluate one agent under a seeded fault plan covering
/// `intensity` of the hosts. Intensity 0 still uses the resilient
/// client profile (breaker enabled) so levels differ only in faults.
///
/// Builds a throwaway [`Engine`]; sweeps over several levels should
/// share one via [`run_chaos_level_on`] so the corpus is generated
/// once.
pub fn run_chaos_level(intensity: f64, net_seed: u64, fault_seed: u64) -> ChaosLevelReport {
    run_chaos_level_on(&Engine::new(), intensity, net_seed, fault_seed)
}

/// [`run_chaos_level`] against a shared engine: the chaotic session is
/// spawned with the engine's cached corpus (byte-identical to a
/// rebuild) and a fresh fault plan/network/agent per call.
pub fn run_chaos_level_on(
    engine: &Engine,
    intensity: f64,
    net_seed: u64,
    fault_seed: u64,
) -> ChaosLevelReport {
    let mut session = engine.spawn_session(SessionConfig {
        net_seed,
        faults: Some(FaultSpec {
            intensity,
            horizon: chaos_horizon(),
            seed: fault_seed,
        }),
        ..SessionConfig::bob()
    });
    let env = &session.env;
    let fault_windows = env.client.network().fault_plan_window_count();

    let bob = &mut session.agent;
    let training = bob.train();
    let quiz = QuizBank::from_world(&env.world);
    let conclusions = env.world.conclusions();
    let run = evaluate_agent(bob, &quiz, &conclusions);

    let net_stats = env.client.network().stats();
    let fault_stats = env.client.network().fault_stats();
    let breaker = env.client.breaker_totals();

    ChaosLevelReport {
        intensity,
        fault_windows,
        consistent: run.consistency.consistent_count(),
        total: run.consistency.total(),
        mean_confidence: run.consistency.mean_confidence(),
        learning_rounds: run.total_learning_rounds(),
        wasted_network: net_stats.lost + net_stats.rate_limited,
        fast_failures: breaker.fast_failures,
        breaker_transitions: breaker.transitions(),
        source_unavailable: training.per_goal.iter().map(|g| g.source_unavailable).sum(),
        fault_events: fault_stats.total(),
    }
}

/// Sweep a set of fault intensities with a shared seed base. Each
/// level gets a distinct fault seed derived from `seed` so plans are
/// independent but the whole sweep is reproducible.
pub fn chaos_sweep(intensities: &[f64], seed: u64) -> ChaosSweep {
    chaos_sweep_threads(intensities, seed, 1)
}

/// [`chaos_sweep`] on `threads` worker threads. Levels are fully
/// independent sessions over one shared engine, and results are
/// aggregated in intensity order, so the sweep is byte-identical to
/// the serial path at any thread count.
pub fn chaos_sweep_threads(intensities: &[f64], seed: u64, threads: usize) -> ChaosSweep {
    let engine = Engine::new();
    let levels = sweep(intensities.to_vec(), threads, |i, intensity| {
        run_chaos_level_on(&engine, intensity, 0xBEEF, seed.wrapping_add(i as u64))
    });
    ChaosSweep { levels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_level_matches_the_paper_shape() {
        let level = run_chaos_level(0.0, 0xBEEF, 1);
        assert_eq!(level.fault_windows, 0);
        assert_eq!(level.fault_events, 0);
        assert!(
            level.consistent >= 7,
            "breaker-enabled client must not change the fault-free result: {level:?}"
        );
    }

    #[test]
    fn quarter_intensity_degrades_gracefully() {
        // The X13 acceptance bar: at 25% fault intensity the agent's
        // quiz consistency stays within one conclusion of fault-free.
        let base = run_chaos_level(0.0, 0xBEEF, 42);
        let chaotic = run_chaos_level(0.25, 0xBEEF, 42);
        assert!(chaotic.fault_windows > 0);
        assert!(
            base.consistent.saturating_sub(chaotic.consistent) <= 1,
            "consistency must stay within 1 conclusion: base {} vs chaotic {}",
            base.consistent,
            chaotic.consistent
        );
    }

    #[test]
    fn chaos_levels_are_deterministic_per_seed() {
        let a = run_chaos_level(0.25, 0xBEEF, 9);
        let b = run_chaos_level(0.25, 0xBEEF, 9);
        assert_eq!(a.consistent, b.consistent);
        assert_eq!(a.wasted_network, b.wasted_network);
        assert_eq!(a.fast_failures, b.fast_failures);
        assert_eq!(a.breaker_transitions, b.breaker_transitions);
        assert_eq!(a.fault_events, b.fault_events);
    }

    #[test]
    fn sweep_reports_worst_degradation_against_baseline() {
        let sweep = ChaosSweep {
            levels: vec![
                ChaosLevelReport {
                    intensity: 0.0,
                    fault_windows: 0,
                    consistent: 7,
                    total: 8,
                    mean_confidence: 8.0,
                    learning_rounds: 10,
                    wasted_network: 0,
                    fast_failures: 0,
                    breaker_transitions: 0,
                    source_unavailable: 0,
                    fault_events: 0,
                },
                ChaosLevelReport {
                    intensity: 0.5,
                    fault_windows: 9,
                    consistent: 5,
                    total: 8,
                    mean_confidence: 6.0,
                    learning_rounds: 14,
                    wasted_network: 40,
                    fast_failures: 12,
                    breaker_transitions: 6,
                    source_unavailable: 3,
                    fault_events: 52,
                },
            ],
        };
        assert_eq!(sweep.baseline().unwrap().consistent, 7);
        assert_eq!(sweep.worst_degradation(), 2);
    }
}
