//! The quiz bank: one question per expert conclusion (§4.1 "we select
//! all the key conclusions in the SIGCOMM paper and generate quiz
//! questions").

use ira_worldmodel::conclusions::{Conclusion, ConclusionId, ConclusionSet};
use ira_worldmodel::incidents::{derive_incident_conclusions, IncidentCatalog};
use ira_worldmodel::scenario::{Scenario, ScenarioConclusion};
use ira_worldmodel::World;
use serde::{Deserialize, Serialize};

/// One quiz question with its expected answer and matching hints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuizItem {
    /// Stable label, e.g. "BrazilEuropeCableSafer" or
    /// "FacebookOutage2021".
    pub id: String,
    /// The expert statement being tested.
    pub statement: String,
    /// The question posed to the agent.
    pub question: String,
    /// Canonical expected answer.
    pub expected_answer: String,
    /// Terms indicating the agent reasoned from the right facts.
    pub rationale_terms: Vec<String>,
    /// Terms whose presence in a *verdict* marks the wrong side of a
    /// comparison (e.g. "brazil" when the answer should be the US
    /// cable). Empty for non-comparison questions.
    pub wrong_terms: Vec<String>,
}

/// The full quiz.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuizBank {
    items: Vec<QuizItem>,
}

impl QuizBank {
    /// Build the quiz from a derived conclusion set.
    pub fn from_conclusions(set: &ConclusionSet) -> Self {
        let items = set.iter().map(QuizItem::from_conclusion).collect();
        QuizBank { items }
    }

    /// Build the quiz for a world.
    pub fn from_world(world: &World) -> Self {
        Self::from_conclusions(&world.conclusions())
    }

    /// Build the quiz from scenario conclusions (which carry their own
    /// wrong-term hints).
    pub fn from_scenario_conclusions(conclusions: &[ScenarioConclusion]) -> Self {
        let items = conclusions
            .iter()
            .map(|c| QuizItem {
                id: c.id.clone(),
                statement: c.statement.clone(),
                question: c.question.clone(),
                expected_answer: c.expected_answer.clone(),
                rationale_terms: c.rationale_terms.clone(),
                wrong_terms: c.wrong_terms.clone(),
            })
            .collect();
        QuizBank { items }
    }

    /// Build the quiz a scenario defines over `world`. For the solar
    /// superstorm this is item-for-item identical to
    /// [`QuizBank::from_world`] (pinned by test), so callers can use the
    /// scenario path uniformly.
    pub fn for_scenario(world: &World, scenario: &dyn Scenario) -> Self {
        Self::from_scenario_conclusions(&scenario.conclusions(world))
    }

    /// Build the incident quiz (the second investigation domain) from
    /// an incident catalog.
    pub fn incidents(catalog: &IncidentCatalog) -> Self {
        let items = derive_incident_conclusions(catalog)
            .into_iter()
            .map(|c| QuizItem {
                id: format!("{:?}", c.id),
                statement: c.statement,
                question: c.question,
                expected_answer: c.expected_answer,
                rationale_terms: c.rationale_terms,
                wrong_terms: Vec::new(),
            })
            .collect();
        QuizBank { items }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &QuizItem> {
        self.items.iter()
    }

    pub fn get(&self, id: &str) -> Option<&QuizItem> {
        self.items.iter().find(|i| i.id == id)
    }
}

impl QuizItem {
    fn from_conclusion(c: &Conclusion) -> Self {
        QuizItem {
            id: format!("{:?}", c.id),
            statement: c.statement.clone(),
            question: c.question.clone(),
            expected_answer: c.expected_answer.clone(),
            rationale_terms: c.rationale_terms.clone(),
            wrong_terms: wrong_terms_for(c.id),
        }
    }
}

/// The opposite side of each comparison question, used to reject
/// answers that commit to the wrong entity.
fn wrong_terms_for(id: ConclusionId) -> Vec<String> {
    match id {
        ConclusionId::BrazilEuropeCableSafer => vec!["brazil".into()],
        ConclusionId::GoogleBetterSpread => vec!["google's data centers are more".into()],
        ConclusionId::UsMoreSusceptibleThanAsia => vec!["asia is more".into()],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiz_has_eight_items() {
        let quiz = QuizBank::from_world(&World::standard());
        assert_eq!(quiz.len(), 8);
        for id in ConclusionId::ALL {
            assert!(quiz.get(&format!("{id:?}")).is_some());
        }
    }

    #[test]
    fn comparison_items_carry_wrong_terms() {
        let quiz = QuizBank::from_world(&World::standard());
        assert!(!quiz
            .get("BrazilEuropeCableSafer")
            .unwrap()
            .wrong_terms
            .is_empty());
        assert!(quiz
            .get("RepeatersAreWeakPoint")
            .unwrap()
            .wrong_terms
            .is_empty());
    }

    #[test]
    fn incident_quiz_builds_from_the_catalog() {
        let quiz = QuizBank::incidents(&IncidentCatalog::standard());
        assert_eq!(quiz.len(), 4);
        let fb = quiz.get("FacebookOutage2021").unwrap();
        assert!(fb.question.contains("caused"));
        assert!(fb.expected_answer.contains("BGP"));
    }

    #[test]
    fn solar_scenario_quiz_is_identical_to_the_legacy_quiz() {
        use ira_worldmodel::scenario::SolarSuperstorm;
        let world = World::standard();
        let legacy = QuizBank::from_world(&world);
        let scenario = QuizBank::for_scenario(&world, &SolarSuperstorm);
        assert_eq!(legacy.len(), scenario.len());
        for (a, b) in legacy.iter().zip(scenario.iter()) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
    }

    #[test]
    fn scenario_quizzes_cover_every_registered_scenario() {
        use ira_worldmodel::scenario::{lookup, ScenarioRegistry};
        let world = World::standard();
        for name in ScenarioRegistry::standard().names() {
            let quiz = QuizBank::for_scenario(&world, lookup(name).unwrap().as_ref());
            assert!(quiz.len() >= 4, "{name} quiz too small");
            for item in quiz.iter() {
                assert!(!item.question.is_empty());
                assert!(!item.expected_answer.is_empty());
            }
        }
    }

    #[test]
    fn questions_are_distinct() {
        let quiz = QuizBank::from_world(&World::standard());
        let mut questions: Vec<_> = quiz.iter().map(|i| i.question.clone()).collect();
        questions.sort();
        questions.dedup();
        assert_eq!(questions.len(), 8);
    }
}
