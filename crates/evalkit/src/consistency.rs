//! Aggregate consistency scoring — the paper's headline "7 out of 8
//! conclusions" result (E1).

use crate::quiz::QuizItem;
use crate::verdict::{match_verdict, VerdictMatch};
use ira_simllm::reason::Answer;
use serde::{Deserialize, Serialize};

/// Result for one quiz item.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ItemResult {
    pub id: String,
    pub question: String,
    pub expected: String,
    pub verdict: Option<String>,
    pub confidence: u8,
    pub matched: VerdictMatch,
}

/// The full consistency report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsistencyReport {
    pub label: String,
    pub per_item: Vec<ItemResult>,
}

impl ConsistencyReport {
    pub fn new(label: &str) -> Self {
        ConsistencyReport {
            label: label.to_string(),
            per_item: Vec::new(),
        }
    }

    /// Score one answered item.
    pub fn add(&mut self, item: &QuizItem, answer: &Answer) {
        let matched = match_verdict(answer, item);
        self.per_item.push(ItemResult {
            id: item.id.clone(),
            question: item.question.clone(),
            expected: item.expected_answer.clone(),
            verdict: answer.verdict.clone(),
            confidence: answer.confidence,
            matched,
        });
    }

    pub fn consistent_count(&self) -> usize {
        self.per_item
            .iter()
            .filter(|r| r.matched.consistent)
            .count()
    }

    pub fn total(&self) -> usize {
        self.per_item.len()
    }

    /// "7 out of 8" style summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: consistent with {} of {} expert conclusions",
            self.label,
            self.consistent_count(),
            self.total()
        )
    }

    /// Mean self-reported confidence across items.
    pub fn mean_confidence(&self) -> f64 {
        if self.per_item.is_empty() {
            return 0.0;
        }
        self.per_item
            .iter()
            .map(|r| r.confidence as f64)
            .sum::<f64>()
            / self.per_item.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quiz::QuizBank;
    use ira_worldmodel::World;

    fn dummy_answer(verdict: Option<&str>, text: &str, confidence: u8) -> Answer {
        Answer {
            text: text.into(),
            verdict: verdict.map(str::to_owned),
            confidence,
            coverage: confidence as f64 / 10.0,
            missing: Vec::new(),
            principles_used: Vec::new(),
            facts_used: 0,
            reasoning: Vec::new(),
        }
    }

    #[test]
    fn report_counts_matches_and_misses() {
        let quiz = QuizBank::from_world(&World::standard());
        let mut report = ConsistencyReport::new("test");
        for (i, item) in quiz.iter().enumerate() {
            let answer = if i % 2 == 0 {
                dummy_answer(
                    Some(&item.expected_answer),
                    &format!(
                        "{} because {}",
                        item.expected_answer,
                        item.rationale_terms.join(" ")
                    ),
                    9,
                )
            } else {
                dummy_answer(None, "It depends on many factors.", 2)
            };
            report.add(item, &answer);
        }
        assert_eq!(report.total(), 8);
        assert_eq!(report.consistent_count(), 4);
        assert!(report.summary().contains("4 of 8"));
        assert!((report.mean_confidence() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = ConsistencyReport::new("empty");
        assert_eq!(r.total(), 0);
        assert_eq!(r.mean_confidence(), 0.0);
    }
}
