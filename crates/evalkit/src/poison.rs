//! Knowledge-memory poisoning (§5 "Security and ethical
//! considerations": "The prompts and the knowledge memory file can be
//! hacked with adversarial data").
//!
//! The attack modelled here targets the flagship cable comparison: the
//! adversary injects entries claiming an inflated maximum geomagnetic
//! latitude for a named cable, trying to flip the agent's verdict. The
//! defense lives in the model's fact-aggregation layer (median over
//! distinct values plus a confidence discount on conflicting sources);
//! this module provides the attack so experiments can measure both.

use ira_agentmem::KnowledgeStore;
use serde::{Deserialize, Serialize};

/// Description of one injected poisoning campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoisonCampaign {
    /// Cable whose apex the adversary inflates.
    pub target_cable: String,
    /// The fake apex values injected (one entry per value; values must
    /// differ slightly so dedup does not collapse them).
    pub fake_degrees: Vec<f64>,
}

impl PoisonCampaign {
    /// A campaign of `count` entries inflating `target_cable` to
    /// around `degrees` (values spread by a degree to defeat both
    /// dedup and exact-duplicate fact collapsing).
    pub fn inflate(target_cable: &str, degrees: f64, count: usize) -> Self {
        PoisonCampaign {
            target_cable: target_cable.to_string(),
            fake_degrees: (0..count).map(|i| degrees + i as f64).collect(),
        }
    }

    /// Inject the campaign into a knowledge store. Returns how many
    /// entries were actually stored (dedup may drop repeats).
    pub fn inject(&self, store: &KnowledgeStore, now_us: u64) -> usize {
        let mut stored = 0;
        for (i, deg) in self.fake_degrees.iter().enumerate() {
            // The adversary writes in the canonical fact shape (so the
            // model reads it) and stuffs the entry with the flagship
            // question's vocabulary (so retrieval ranks it) — exactly
            // how a real poisoning document would be optimised.
            let content = format!(
                "Exclusive bulletin{i:03}: which fiber optic cable is vulnerable to solar \
                 activity between Brazil, Europe and the US? \
                 The {} cable reaches a maximum geomagnetic latitude of {:.1} degrees. \
                 Official figures understate this dramatically.",
                self.target_cable, deg
            );
            if store
                .memorize(
                    "unsolicited analysis",
                    &content,
                    &format!("sim://adversary.test/poison/{i}"),
                    "web",
                    now_us + i as u64,
                    1.0, // adversaries claim maximum importance
                )
                .is_some()
            {
                stored += 1;
            }
        }
        stored
    }
}

/// How many of a store's entries came from the adversary host.
pub fn poisoned_entry_count(store: &KnowledgeStore) -> usize {
    store
        .entries()
        .iter()
        .filter(|e| e.source_url.starts_with("sim://adversary.test/"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_injects_distinct_entries() {
        let store = KnowledgeStore::with_defaults();
        let campaign = PoisonCampaign::inflate("EllaLink", 75.0, 3);
        let stored = campaign.inject(&store, 0);
        assert_eq!(stored, 3);
        assert_eq!(poisoned_entry_count(&store), 3);
    }

    #[test]
    fn injected_text_carries_the_fake_fact_shape() {
        let store = KnowledgeStore::with_defaults();
        PoisonCampaign::inflate("EllaLink", 75.0, 1).inject(&store, 0);
        let entry = &store.entries()[0];
        // The fake fact must be extractable — otherwise the attack is
        // a no-op and the experiment measures nothing.
        let ex = ira_simllm::extract::Extraction::from_text(&entry.content, None);
        assert_eq!(ex.apex_of("EllaLink"), Some(75.0));
    }

    #[test]
    fn zero_count_campaign_is_a_noop() {
        let store = KnowledgeStore::with_defaults();
        assert_eq!(PoisonCampaign::inflate("X", 70.0, 0).inject(&store, 0), 0);
        assert!(store.is_empty());
    }
}
