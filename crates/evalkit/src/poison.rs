//! Knowledge-memory poisoning (§5 "Security and ethical
//! considerations": "The prompts and the knowledge memory file can be
//! hacked with adversarial data").
//!
//! The attack modelled here targets the flagship cable comparison: the
//! adversary injects entries claiming an inflated maximum geomagnetic
//! latitude for a named cable, trying to flip the agent's verdict. The
//! defense lives in the model's fact-aggregation layer (median over
//! distinct values plus a confidence discount on conflicting sources);
//! this module provides the attack so experiments can measure both.

//! Detection (the quantitative X5 sweep) lives here too:
//! [`detect_poisoned_sources`] computes a per-host verdict for every
//! entity with numeric apex claims, either with the flat baseline
//! (every entry one vote in the consensus) or source-weighted through
//! the claim graph (one vote per host, weighted by corroboration
//! trust). At narrow doses both agree; once the campaign outnumbers
//! the honest entries the flat consensus *moves into the poison
//! cluster* — honest hosts get flagged and the adversary sails through
//! — while the host-weighted consensus holds.

use ira_agentmem::{split_url, KnowledgeStore};
use ira_simllm::extract::{Extraction, Fact};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Description of one injected poisoning campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoisonCampaign {
    /// Cable whose apex the adversary inflates.
    pub target_cable: String,
    /// The fake apex values injected (one entry per value; values must
    /// differ slightly so dedup does not collapse them).
    pub fake_degrees: Vec<f64>,
}

impl PoisonCampaign {
    /// A campaign of `count` entries inflating `target_cable` to
    /// around `degrees` (values spread by a degree to defeat both
    /// dedup and exact-duplicate fact collapsing).
    pub fn inflate(target_cable: &str, degrees: f64, count: usize) -> Self {
        PoisonCampaign {
            target_cable: target_cable.to_string(),
            fake_degrees: (0..count).map(|i| degrees + i as f64).collect(),
        }
    }

    /// Inject the campaign into a knowledge store. Returns how many
    /// entries were actually stored (dedup may drop repeats).
    pub fn inject(&self, store: &KnowledgeStore, now_us: u64) -> usize {
        let mut stored = 0;
        for (i, deg) in self.fake_degrees.iter().enumerate() {
            // The adversary writes in the canonical fact shape (so the
            // model reads it) and stuffs the entry with the flagship
            // question's vocabulary (so retrieval ranks it) — exactly
            // how a real poisoning document would be optimised.
            let content = format!(
                "Exclusive bulletin{i:03}: which fiber optic cable is vulnerable to solar \
                 activity between Brazil, Europe and the US? \
                 The {} cable reaches a maximum geomagnetic latitude of {:.1} degrees. \
                 Official figures understate this dramatically.",
                self.target_cable, deg
            );
            if store
                .memorize(
                    "unsolicited analysis",
                    &content,
                    &format!("sim://adversary.test/poison/{i}"),
                    "web",
                    now_us + i as u64,
                    1.0, // adversaries claim maximum importance
                )
                .is_some()
            {
                stored += 1;
            }
        }
        stored
    }
}

/// How many of a store's entries came from the adversary host.
pub fn poisoned_entry_count(store: &KnowledgeStore) -> usize {
    store
        .entries()
        .iter()
        .filter(|e| e.source_url.starts_with("sim://adversary.test/"))
        .count()
}

/// One host's verdict for one entity's numeric apex claims.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostVerdict {
    pub entity: String,
    pub host: String,
    /// Apex values this host asserted for the entity.
    pub claims: usize,
    /// The host's own median claim.
    pub median: f64,
    /// The consensus the host was judged against.
    pub consensus: f64,
    /// `|median − consensus|`.
    pub deviation: f64,
    /// Shrunk corroboration trust from the claim graph:
    /// `corroborated / (claims + TRUST_SHRINKAGE)`, so a host with only
    /// a handful of claims cannot look trustworthy on ratio alone.
    /// Fixed at 1.0 in flat mode.
    pub trust: f64,
    pub flagged: bool,
}

/// The full detection outcome over a store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DetectionReport {
    pub verdicts: Vec<HostVerdict>,
    pub flagged_hosts: BTreeSet<String>,
    /// Every host that asserted at least one apex claim.
    pub observed_hosts: BTreeSet<String>,
}

/// Precision/recall of a [`DetectionReport`] against known adversary
/// hosts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectionScores {
    pub true_positives: usize,
    pub false_positives: usize,
    pub false_negatives: usize,
    pub precision: f64,
    pub recall: f64,
}

impl DetectionReport {
    /// Score flagged hosts against the ground-truth adversary set.
    /// Adversary hosts with no stored claims are excluded (nothing to
    /// detect). Empty denominators score 1.0: flagging nothing when
    /// nothing is poisoned is perfect behaviour.
    pub fn score_against(&self, adversary_hosts: &BTreeSet<String>) -> DetectionScores {
        let present: BTreeSet<&String> = adversary_hosts
            .iter()
            .filter(|h| self.observed_hosts.contains(*h))
            .collect();
        let tp = self
            .flagged_hosts
            .iter()
            .filter(|h| present.contains(h))
            .count();
        let fp = self.flagged_hosts.len() - tp;
        let fn_ = present.len() - tp;
        let ratio = |num: usize, denom: usize| {
            if denom == 0 {
                1.0
            } else {
                num as f64 / denom as f64
            }
        };
        DetectionScores {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
            precision: ratio(tp, tp + fp),
            recall: ratio(tp, tp + fn_),
        }
    }
}

/// Median with the same convention as `Extraction::apex_of`: sort,
/// middle element (mean of the two middles for even counts).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

/// Weighted median over `(value, weight)` pairs: the smallest value at
/// which the cumulative weight reaches half the total. Falls back to
/// the unweighted median when every weight is zero.
fn weighted_median(pairs: &mut [(f64, f64)]) -> f64 {
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: f64 = pairs.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        let mut values: Vec<f64> = pairs.iter().map(|(v, _)| *v).collect();
        return median(&mut values);
    }
    let mut cumulative = 0.0;
    for (value, weight) in pairs.iter() {
        cumulative += weight;
        if cumulative >= total / 2.0 {
            return *value;
        }
    }
    pairs[pairs.len() - 1].0
}

/// Evidence shrinkage for corroboration trust: a host's vote weight is
/// `corroborated / (claims + TRUST_SHRINKAGE)`, not the raw ratio. A
/// host that has asserted only a handful of terms has not *earned*
/// trust yet, whatever its ratio — a single terse poison bulletin
/// reuses the flagship vocabulary and would otherwise score higher
/// than a verbose honest article full of filler terms. Shrinkage is
/// volume-resistant: pumping more bulletins from one host adds mostly
/// exclusive terms, so the only way to gain weight is for *other
/// hosts* to corroborate you.
const TRUST_SHRINKAGE: usize = 20;

/// Flag hosts whose apex claims deviate from consensus by more than
/// `tolerance` degrees.
///
/// * `source_weighted: false` — the flat baseline: the consensus per
///   entity is the median over **every stored value** (each entry one
///   vote), so a campaign that outnumbers the honest entries drags the
///   consensus into the poison cluster.
/// * `source_weighted: true` — the claim-graph detector: each host
///   gets **one vote** (its own median), weighted by its shrunk
///   corroboration trust from [`KnowledgeStore::graph_host_stats`]
///   (see `TRUST_SHRINKAGE`). Repetition from one host cannot move
///   this consensus, however loud.
pub fn detect_poisoned_sources(
    store: &KnowledgeStore,
    tolerance: f64,
    source_weighted: bool,
) -> DetectionReport {
    // entity -> host -> asserted apex values.
    let mut claims: BTreeMap<String, BTreeMap<String, Vec<f64>>> = BTreeMap::new();
    for entry in store.entries() {
        let (host, _path) = split_url(&entry.source_url);
        let ex = Extraction::from_text(&entry.content, None);
        for fact in &ex.facts {
            if let Fact::MaxGeomagLatitude { entity, degrees } = fact {
                claims
                    .entry(entity.clone())
                    .or_default()
                    .entry(host.clone())
                    .or_default()
                    .push(*degrees);
            }
        }
    }

    let trust_by_host: BTreeMap<String, f64> = store
        .graph_host_stats()
        .into_iter()
        .map(|(host, s)| {
            let trust = s.corroborated as f64 / (s.claims + TRUST_SHRINKAGE) as f64;
            (host, trust)
        })
        .collect();

    let mut report = DetectionReport::default();
    for (entity, by_host) in &claims {
        let host_medians: BTreeMap<&String, f64> = by_host
            .iter()
            .map(|(host, values)| (host, median(&mut values.clone())))
            .collect();
        let consensus = if source_weighted {
            let mut votes: Vec<(f64, f64)> = host_medians
                .iter()
                .map(|(host, m)| (*m, trust_by_host.get(*host).copied().unwrap_or(0.0)))
                .collect();
            weighted_median(&mut votes)
        } else {
            let mut all: Vec<f64> = by_host.values().flatten().copied().collect();
            median(&mut all)
        };
        for (host, m) in host_medians {
            let deviation = (m - consensus).abs();
            let flagged = deviation > tolerance;
            report.observed_hosts.insert(host.clone());
            if flagged {
                report.flagged_hosts.insert(host.clone());
            }
            report.verdicts.push(HostVerdict {
                entity: entity.clone(),
                host: host.clone(),
                claims: by_host[host].len(),
                median: m,
                consensus,
                deviation,
                trust: if source_weighted {
                    trust_by_host.get(host).copied().unwrap_or(0.0)
                } else {
                    1.0
                },
                flagged,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_injects_distinct_entries() {
        let store = KnowledgeStore::with_defaults();
        let campaign = PoisonCampaign::inflate("EllaLink", 75.0, 3);
        let stored = campaign.inject(&store, 0);
        assert_eq!(stored, 3);
        assert_eq!(poisoned_entry_count(&store), 3);
    }

    #[test]
    fn injected_text_carries_the_fake_fact_shape() {
        let store = KnowledgeStore::with_defaults();
        PoisonCampaign::inflate("EllaLink", 75.0, 1).inject(&store, 0);
        let entry = &store.entries()[0];
        // The fake fact must be extractable — otherwise the attack is
        // a no-op and the experiment measures nothing.
        let ex = ira_simllm::extract::Extraction::from_text(&entry.content, None);
        assert_eq!(ex.apex_of("EllaLink"), Some(75.0));
    }

    #[test]
    fn zero_count_campaign_is_a_noop() {
        let store = KnowledgeStore::with_defaults();
        assert_eq!(PoisonCampaign::inflate("X", 70.0, 0).inject(&store, 0), 0);
        assert!(store.is_empty());
    }

    /// Three honest hosts independently report EllaLink's apex near 48
    /// (shared canonical vocabulary, so their claims corroborate in the
    /// graph), then the adversary injects `poison_count` inflated
    /// entries from one host.
    fn poisoned_scenario(poison_count: usize) -> KnowledgeStore {
        let store = KnowledgeStore::with_defaults();
        let honest = [
            (
                "sim://survey.test/report",
                "Survey report: The EllaLink cable reaches a maximum geomagnetic latitude \
                 of 47.0 degrees.",
            ),
            (
                "sim://encyclopedia.test/wiki/ellalink",
                "Encyclopedia entry: The EllaLink cable reaches a maximum geomagnetic \
                 latitude of 48.0 degrees.",
            ),
            (
                "sim://news.test/cables",
                "Newsroom coverage: The EllaLink cable reaches a maximum geomagnetic \
                 latitude of 49.0 degrees.",
            ),
        ];
        for (i, (url, text)) in honest.iter().enumerate() {
            assert!(
                store
                    .memorize("cables", text, url, "web", i as u64, 0.5)
                    .is_some(),
                "honest entries must not dedup away"
            );
        }
        PoisonCampaign::inflate("EllaLink", 75.0, poison_count).inject(&store, 100);
        store
    }

    fn adversary() -> BTreeSet<String> {
        BTreeSet::from(["adversary.test".to_string()])
    }

    #[test]
    fn clean_store_flags_nothing_either_way() {
        let store = poisoned_scenario(0);
        for weighted in [false, true] {
            let report = detect_poisoned_sources(&store, 5.0, weighted);
            assert!(report.flagged_hosts.is_empty(), "weighted={weighted}");
            let scores = report.score_against(&adversary());
            assert_eq!(scores.precision, 1.0);
            assert_eq!(scores.recall, 1.0, "vacuous recall when nothing to find");
        }
    }

    #[test]
    fn narrow_dose_is_caught_by_both_detectors() {
        // One fake value cannot move either consensus; the adversary
        // host deviates and both detectors flag it.
        let store = poisoned_scenario(1);
        for weighted in [false, true] {
            let scores = detect_poisoned_sources(&store, 5.0, weighted).score_against(&adversary());
            assert_eq!(scores.true_positives, 1, "weighted={weighted}");
            assert_eq!(scores.false_positives, 0, "weighted={weighted}");
            assert_eq!(scores.recall, 1.0, "weighted={weighted}");
        }
    }

    #[test]
    fn heavy_campaign_defeats_flat_detection_but_not_source_weighted() {
        // Six fakes outnumber the three honest values: the flat
        // consensus (one vote per entry) moves into the poison cluster
        // — honest hosts get flagged, the adversary sails through. The
        // source-weighted consensus (one corroboration-weighted vote
        // per host) holds at the honest value.
        let store = poisoned_scenario(6);
        let flat = detect_poisoned_sources(&store, 5.0, false).score_against(&adversary());
        assert_eq!(
            flat.true_positives, 0,
            "the flat detector must miss the adversary at this dose"
        );
        assert!(
            flat.false_positives >= 1,
            "and wrongly flag honest hosts instead"
        );

        let graph = detect_poisoned_sources(&store, 5.0, true).score_against(&adversary());
        assert_eq!(graph.true_positives, 1, "graph detector must catch it");
        assert_eq!(graph.false_positives, 0);
        assert_eq!(graph.precision, 1.0);
        assert_eq!(graph.recall, 1.0);
    }

    #[test]
    fn adversary_trust_is_below_honest_trust() {
        let store = poisoned_scenario(6);
        let report = detect_poisoned_sources(&store, 5.0, true);
        let trust_of = |host: &str| {
            report
                .verdicts
                .iter()
                .find(|v| v.host == host)
                .map(|v| v.trust)
                .unwrap()
        };
        let adv = trust_of("adversary.test");
        for honest in ["survey.test", "encyclopedia.test", "news.test"] {
            assert!(
                trust_of(honest) > adv,
                "{honest} trust {} must exceed adversary trust {adv}",
                trust_of(honest)
            );
        }
    }

    #[test]
    fn detection_report_is_deterministic() {
        let a = detect_poisoned_sources(&poisoned_scenario(4), 5.0, true);
        let b = detect_poisoned_sources(&poisoned_scenario(4), 5.0, true);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
