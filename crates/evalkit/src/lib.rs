//! # ira-evalkit
//!
//! The evaluation harness for §4 of the paper: quiz generation from the
//! derived expert conclusions, verdict matching, consistency scoring
//! (the "7 out of 8" result), confidence trajectories, response-plan
//! coverage, and the knowledge-provenance audit.
//!
//! * [`quiz`] — the eight-question quiz bank built from
//!   [`ira_worldmodel::ConclusionSet`].
//! * [`verdict`] — does an agent answer match the expert conclusion?
//! * [`consistency`] — aggregate agent-vs-paper scoring (experiment E1).
//! * [`trajectory`] — confidence trajectory tables (E2/E3).
//! * [`plancov`] — response-plan component coverage (E4).
//! * [`provenance`] — source audit over the knowledge store.
//! * [`robustness`] — chaos sweep: quiz consistency, wasted work, and
//!   circuit-breaker activity under seeded fault injection (X13).
//! * [`runner`] — end-to-end: train, self-learn per question, score.
//! * [`report`] — plain-text table / CSV rendering shared by the
//!   experiment binaries.

pub mod calibration;
pub mod consistency;
pub mod plancov;
pub mod poison;
pub mod provenance;
pub mod quiz;
pub mod report;
pub mod robustness;
pub mod runner;
pub mod trajectory;
pub mod verdict;

pub use calibration::{Calibration, CalibrationBucket};
pub use consistency::{ConsistencyReport, ItemResult};
pub use plancov::PlanCoverage;
pub use poison::PoisonCampaign;
pub use provenance::ProvenanceReport;
pub use quiz::{QuizBank, QuizItem};
pub use robustness::{
    chaos_sweep, chaos_sweep_threads, run_chaos_level, run_chaos_level_on, ChaosLevelReport,
    ChaosSweep,
};
pub use runner::{
    evaluate_agent, evaluate_baseline, panic_message, sweep, try_sweep, EvalRun, SweepPanic,
};
pub use verdict::{match_verdict, VerdictMatch};
