//! End-to-end evaluation runs: train an agent, self-learn through the
//! quiz, and score consistency — plus the ungrounded baseline (the
//! paper's "ChatGPT directly" comparison).

use crate::consistency::ConsistencyReport;
use crate::provenance::ProvenanceReport;
use crate::quiz::QuizBank;
use ira_core::selflearn::LearningTrajectory;
use ira_core::{Environment, ResearchAgent};
use ira_simllm::Llm;
use serde::{Deserialize, Serialize};

/// Everything one evaluated run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalRun {
    pub consistency: ConsistencyReport,
    pub trajectories: Vec<LearningTrajectory>,
    pub provenance: ProvenanceReport,
}

impl EvalRun {
    /// Total self-learning rounds across the quiz.
    pub fn total_learning_rounds(&self) -> u32 {
        self.trajectories.iter().map(|t| t.learning_rounds()).sum()
    }

    /// Total searches issued during self-learning.
    pub fn total_searches(&self) -> usize {
        self.trajectories.iter().map(|t| t.total_searches()).sum()
    }
}

/// Evaluate a (typically freshly trained) agent on the quiz with full
/// self-learning per question.
pub fn evaluate_agent(
    agent: &mut ResearchAgent<'_>,
    quiz: &QuizBank,
    world_conclusions: &ira_worldmodel::ConclusionSet,
) -> EvalRun {
    let mut consistency = ConsistencyReport::new(&format!("agent {}", agent.role.name));
    let mut trajectories = Vec::new();
    for item in quiz.iter() {
        let trajectory = agent.self_learn(&item.question);
        let answer = agent.ask(&item.question);
        consistency.add(item, &answer);
        trajectories.push(trajectory);
    }
    let provenance = ProvenanceReport::audit(agent.memory(), world_conclusions);
    EvalRun { consistency, trajectories, provenance }
}

/// The baseline: the same model with no agent architecture — no
/// memory, no retrieval, no self-learning. This reproduces the paper's
/// observation that the raw model hedges.
pub fn evaluate_baseline(llm: &Llm, quiz: &QuizBank) -> ConsistencyReport {
    let mut report = ConsistencyReport::new("baseline (ungrounded LLM)");
    for item in quiz.iter() {
        let answer = llm.answer(&item.question, &[]);
        report.add(item, &answer);
    }
    report
}

/// Convenience: build environment + Bob, train, evaluate, return both
/// runs. Used by experiment E1 and the integration tests.
pub fn full_paper_run(env: &Environment) -> (EvalRun, ConsistencyReport) {
    let quiz = QuizBank::from_world(&env.world);
    let conclusions = env.world.conclusions();
    let mut bob = ResearchAgent::bob(env);
    bob.train();
    let agent_run = evaluate_agent(&mut bob, &quiz, &conclusions);
    let baseline = evaluate_baseline(&Llm::gpt4(999), &quiz);
    (agent_run, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ira_worldmodel::World;

    #[test]
    fn baseline_is_mostly_inconsistent_and_unconfident() {
        let quiz = QuizBank::from_world(&World::standard());
        let report = evaluate_baseline(&Llm::gpt4(1), &quiz);
        assert_eq!(report.total(), 8);
        assert!(
            report.consistent_count() <= 1,
            "ungrounded model matched {} conclusions",
            report.consistent_count()
        );
        assert!(report.mean_confidence() <= 3.0);
    }

    #[test]
    fn trained_agent_reaches_paper_level_consistency() {
        // The paper's headline: 7 of 8 conclusions consistent. This is
        // the full pipeline, so it doubles as an integration test.
        let env = Environment::standard();
        let (agent_run, baseline) = full_paper_run(&env);
        assert!(
            agent_run.consistency.consistent_count() >= 7,
            "agent matched only {} of {}:\n{:#?}",
            agent_run.consistency.consistent_count(),
            agent_run.consistency.total(),
            agent_run
                .consistency
                .per_item
                .iter()
                .map(|r| (r.id.clone(), r.matched.consistent, r.verdict.clone()))
                .collect::<Vec<_>>()
        );
        assert!(agent_run.consistency.consistent_count() > baseline.consistent_count());
        assert!(agent_run.provenance.clean(), "provenance: {:?}", agent_run.provenance);
        assert_eq!(agent_run.trajectories.len(), 8);
    }
}
