//! End-to-end evaluation runs: train an agent, self-learn through the
//! quiz, and score consistency — plus the ungrounded baseline (the
//! paper's "ChatGPT directly" comparison) and the deterministic
//! parallel [`sweep`] runner the experiment binaries share.

use crate::consistency::ConsistencyReport;
use crate::provenance::ProvenanceReport;
use crate::quiz::QuizBank;
use ira_core::selflearn::LearningTrajectory;
use ira_core::{Environment, ResearchAgent};
use ira_simllm::Llm;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Everything one evaluated run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalRun {
    pub consistency: ConsistencyReport,
    pub trajectories: Vec<LearningTrajectory>,
    pub provenance: ProvenanceReport,
}

impl EvalRun {
    /// Total self-learning rounds across the quiz.
    pub fn total_learning_rounds(&self) -> u32 {
        self.trajectories.iter().map(|t| t.learning_rounds()).sum()
    }

    /// Total searches issued during self-learning.
    pub fn total_searches(&self) -> usize {
        self.trajectories.iter().map(|t| t.total_searches()).sum()
    }
}

/// Evaluate a (typically freshly trained) agent on the quiz with full
/// self-learning per question.
pub fn evaluate_agent(
    agent: &mut ResearchAgent,
    quiz: &QuizBank,
    world_conclusions: &ira_worldmodel::ConclusionSet,
) -> EvalRun {
    let mut consistency = ConsistencyReport::new(&format!("agent {}", agent.role.name));
    let mut trajectories = Vec::new();
    for item in quiz.iter() {
        let trajectory = agent.self_learn(&item.question);
        let answer = agent.ask(&item.question);
        consistency.add(item, &answer);
        trajectories.push(trajectory);
    }
    let provenance = ProvenanceReport::audit(agent.memory(), world_conclusions);
    EvalRun {
        consistency,
        trajectories,
        provenance,
    }
}

/// The scenario-aware [`EvalRun`] path: evaluate an agent on the quiz
/// a scenario derives from `world`, with full self-learning per
/// question. The provenance audit's answer-key leak check runs against
/// the scenario's own conclusion statements. For the solar superstorm
/// the quiz is item-for-item identical to the legacy
/// [`evaluate_agent`] path.
pub fn evaluate_scenario(
    agent: &mut ResearchAgent,
    scenario: &dyn ira_worldmodel::scenario::Scenario,
    world: &ira_worldmodel::World,
) -> EvalRun {
    let quiz = QuizBank::for_scenario(world, scenario);
    let mut consistency =
        ConsistencyReport::new(&format!("agent {} on {}", agent.role.name, scenario.name()));
    let mut trajectories = Vec::new();
    for item in quiz.iter() {
        let trajectory = agent.self_learn(&item.question);
        let answer = agent.ask(&item.question);
        consistency.add(item, &answer);
        trajectories.push(trajectory);
    }
    let statements: Vec<String> = scenario
        .conclusions(world)
        .into_iter()
        .map(|c| c.statement)
        .collect();
    let provenance = ProvenanceReport::audit_statements(agent.memory(), &statements);
    EvalRun {
        consistency,
        trajectories,
        provenance,
    }
}

/// The baseline: the same model with no agent architecture — no
/// memory, no retrieval, no self-learning. This reproduces the paper's
/// observation that the raw model hedges.
pub fn evaluate_baseline(llm: &Llm, quiz: &QuizBank) -> ConsistencyReport {
    let mut report = ConsistencyReport::new("baseline (ungrounded LLM)");
    for item in quiz.iter() {
        let answer = llm.answer(&item.question, &[]);
        report.add(item, &answer);
    }
    report
}

/// Convenience: build environment + Bob, train, evaluate, return both
/// runs. Used by experiment E1 and the integration tests.
pub fn full_paper_run(env: &Environment) -> (EvalRun, ConsistencyReport) {
    let quiz = QuizBank::from_world(&env.world);
    let conclusions = env.world.conclusions();
    let mut bob = ResearchAgent::bob(env);
    bob.train();
    let agent_run = evaluate_agent(&mut bob, &quiz, &conclusions);
    let baseline = evaluate_baseline(&Llm::gpt4(999), &quiz);
    (agent_run, baseline)
}

/// Run one independent job per item, optionally on `threads` worker
/// threads, and return the results **in item order** regardless of
/// completion order.
///
/// This is the deterministic sweep primitive the experiment binaries
/// and the CLI share: each job gets `(index, item)` and must be
/// self-contained (spawn its own session from a shared
/// [`ira_engine::Engine`], typically). Because jobs share no mutable
/// state and results are re-ordered by index, the output is invariant
/// under `threads` — `sweep(items, 8, job)` is byte-identical to
/// `sweep(items, 1, job)`, just faster. With `threads <= 1` the jobs
/// run inline on the caller's thread.
/// Merge per-session metric snapshots into one sweep-level rollup.
///
/// Counters add, gauges keep the high-watermark, histograms merge
/// bucket-wise — all commutative, so the rollup is identical no matter
/// what order the sessions finished in (and therefore invariant under
/// the sweep's thread count).
pub fn metrics_rollup<I>(snapshots: I) -> ira_obs::MetricsSnapshot
where
    I: IntoIterator<Item = ira_obs::MetricsSnapshot>,
{
    let mut total = ira_obs::MetricsSnapshot::default();
    for snap in snapshots {
        total.merge(&snap);
    }
    total
}

pub fn sweep<T, R, F>(items: Vec<T>, threads: usize, job: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for result in try_sweep(items, threads, job) {
        match result {
            Ok(r) => out.push(r),
            Err(p) => panic!("{p}"),
        }
    }
    out
}

/// A job that panicked during [`try_sweep`]: which item blew up and the
/// panic payload's message. Serializable so supervisors can forward it
/// as a typed error response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepPanic {
    /// Index of the item whose job panicked.
    pub index: usize,
    /// The panic payload rendered as text (`&str`/`String` payloads are
    /// preserved verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for SweepPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for SweepPanic {}

/// Render a caught panic payload as text.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`sweep`] with per-job panic isolation: a panicking job yields
/// `Err(SweepPanic)` at its own index while every other job still runs
/// to completion. This is what keeps one poisoned session from taking
/// down a whole evaluation run (or the serve layer's worker pool).
///
/// The same determinism contract as [`sweep`] applies: results come
/// back in item order and are invariant under `threads`. Note the
/// caught panic still triggers the process panic hook (the default hook
/// prints a backtrace to stderr); output streams are unaffected.
pub fn try_sweep<T, R, F>(items: Vec<T>, threads: usize, job: F) -> Vec<Result<R, SweepPanic>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    // Jobs share no mutable state (that is the sweep contract), so
    // resuming after a caught panic observes nothing torn.
    let guarded = |i: usize, item: T| {
        catch_unwind(AssertUnwindSafe(|| job(i, item))).map_err(|payload| SweepPanic {
            index: i,
            message: panic_message(payload),
        })
    };

    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| guarded(i, item))
            .collect();
    }

    // Shared pull queue: workers take the next pending item, so a slow
    // job never stalls the rest of the sweep behind it.
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut indexed: Vec<(usize, Result<R, SweepPanic>)> = crossbeam::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(n))
            .map(|_| {
                scope.spawn(|_| {
                    let mut done = Vec::new();
                    loop {
                        let next = queue.lock().expect("sweep queue poisoned").next();
                        match next {
                            Some((i, item)) => done.push((i, guarded(i, item))),
                            None => break done,
                        }
                    }
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope");

    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ira_worldmodel::World;

    #[test]
    fn sweep_preserves_item_order_across_threads() {
        // Jobs finish out of order (later items sleep less); results
        // must still come back in item order, identical to serial.
        let items: Vec<u64> = (0..12).collect();
        let job = |i: usize, item: u64| {
            std::thread::sleep(std::time::Duration::from_millis(12 - item));
            format!("{i}:{}", item * item)
        };
        let serial = sweep(items.clone(), 1, job);
        let parallel = sweep(items, 4, job);
        assert_eq!(serial, parallel);
        assert_eq!(serial[3], "3:9");
    }

    #[test]
    fn sweep_handles_degenerate_shapes() {
        let empty: Vec<u32> = Vec::new();
        assert!(sweep(empty, 8, |_, x: u32| x).is_empty());
        assert_eq!(sweep(vec![7u32], 8, |_, x| x + 1), vec![8]);
        // More threads than items must not hang or duplicate work.
        assert_eq!(sweep(vec![1u32, 2], 16, |_, x| x), vec![1, 2]);
    }

    #[test]
    fn try_sweep_isolates_panics_per_job() {
        let items: Vec<u32> = (0..8).collect();
        let job = |_i: usize, item: u32| {
            if item == 3 {
                panic!("static payload");
            }
            if item == 5 {
                panic!("dynamic payload for {item}");
            }
            item * 10
        };
        let serial = try_sweep(items.clone(), 1, job);
        let parallel = try_sweep(items, 4, job);
        assert_eq!(serial, parallel, "panic isolation must be thread-invariant");
        assert_eq!(serial.len(), 8);
        for (i, r) in serial.iter().enumerate() {
            match i {
                3 => assert_eq!(
                    r.as_ref().unwrap_err(),
                    &SweepPanic {
                        index: 3,
                        message: "static payload".into()
                    }
                ),
                5 => assert_eq!(
                    r.as_ref().unwrap_err().message,
                    "dynamic payload for 5",
                    "String panic payloads must be preserved"
                ),
                _ => assert_eq!(*r.as_ref().unwrap(), i as u32 * 10),
            }
        }
    }

    #[test]
    fn sweep_repropagates_the_first_panic_by_index() {
        let caught = std::panic::catch_unwind(|| {
            sweep(vec![0u32, 1, 2, 3], 2, |_, item| {
                if item >= 2 {
                    panic!("job {item} exploded");
                }
                item
            })
        });
        let message = panic_message(caught.unwrap_err());
        assert_eq!(message, "sweep job 2 panicked: job 2 exploded");
    }

    #[test]
    fn panicking_session_does_not_take_down_the_sweep() {
        // Regression: a deliberately-panicking session used to abort the
        // whole sweep via the worker join. Now its neighbours complete.
        let engine = ira_engine::Engine::new();
        let results = try_sweep(vec![0u64, 1, 2], 2, |_i, seed| {
            let mut session = engine.spawn_session(ira_engine::SessionConfig::bob());
            if seed == 1 {
                panic!("poisoned session {seed}");
            }
            session.agent.train();
            session.agent.memory().len()
        });
        assert!(results[0].is_ok() && results[2].is_ok());
        assert_eq!(results[0], results[2], "surviving sessions are untouched");
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &SweepPanic {
                index: 1,
                message: "poisoned session 1".into()
            }
        );
    }

    #[test]
    fn sweep_panic_round_trips_through_serde() {
        let p = SweepPanic {
            index: 4,
            message: "boom".into(),
        };
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<SweepPanic>(&json).unwrap(), p);
    }

    #[test]
    fn baseline_is_mostly_inconsistent_and_unconfident() {
        let quiz = QuizBank::from_world(&World::standard());
        let report = evaluate_baseline(&Llm::gpt4(1), &quiz);
        assert_eq!(report.total(), 8);
        assert!(
            report.consistent_count() <= 1,
            "ungrounded model matched {} conclusions",
            report.consistent_count()
        );
        assert!(report.mean_confidence() <= 3.0);
    }

    #[test]
    fn trained_agent_reaches_paper_level_consistency() {
        // The paper's headline: 7 of 8 conclusions consistent. This is
        // the full pipeline, so it doubles as an integration test.
        let env = Environment::standard();
        let (agent_run, baseline) = full_paper_run(&env);
        assert!(
            agent_run.consistency.consistent_count() >= 7,
            "agent matched only {} of {}:\n{:#?}",
            agent_run.consistency.consistent_count(),
            agent_run.consistency.total(),
            agent_run
                .consistency
                .per_item
                .iter()
                .map(|r| (r.id.clone(), r.matched.consistent, r.verdict.clone()))
                .collect::<Vec<_>>()
        );
        assert!(agent_run.consistency.consistent_count() > baseline.consistent_count());
        assert!(
            agent_run.provenance.clean(),
            "provenance: {:?}",
            agent_run.provenance
        );
        assert_eq!(agent_run.trajectories.len(), 8);
    }
}
