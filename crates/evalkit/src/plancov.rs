//! Response-plan coverage (experiment E4, §4.3).
//!
//! The paper compares the agent's generated "shutdown strategy" against
//! the human-expert plan and finds *Predictive Shutdown* and
//! *Redundancy Utilization* "highly consistent". We check the generated
//! plan text for all five reference components.

use serde::{Deserialize, Serialize};

/// The five reference components of the expert plan.
pub const REFERENCE_COMPONENTS: [&str; 5] = [
    "Predictive Shutdown",
    "Redundancy Utilization",
    "Phased Shutdown",
    "Data Preservation",
    "Gradual Reboot",
];

/// The two components the paper highlights as "highly consistent".
pub const CORE_COMPONENTS: [&str; 2] = ["Predictive Shutdown", "Redundancy Utilization"];

/// Coverage of a generated plan against the reference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanCoverage {
    pub present: Vec<String>,
    pub missing: Vec<String>,
}

impl PlanCoverage {
    /// Analyse a generated plan text.
    pub fn of(plan_text: &str) -> Self {
        let lower = plan_text.to_lowercase();
        let (present, missing) = REFERENCE_COMPONENTS
            .iter()
            .map(|c| c.to_string())
            .partition(|c: &String| lower.contains(&c.to_lowercase()));
        PlanCoverage { present, missing }
    }

    /// Fraction of the five reference components present.
    pub fn coverage(&self) -> f64 {
        self.present.len() as f64 / REFERENCE_COMPONENTS.len() as f64
    }

    /// Whether the two paper-highlighted components are both present.
    pub fn core_two_present(&self) -> bool {
        CORE_COMPONENTS
            .iter()
            .all(|c| self.present.iter().any(|p| p == c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_plan_scores_one() {
        let plan = "Suggesting the following strategy:\n\
                    - Predictive Shutdown: shut the vulnerable systems down first.\n\
                    - Redundancy Utilization: shift traffic to safer zones.\n\
                    - Phased Shutdown: sequence by vulnerability.\n\
                    - Data Preservation: back everything up.\n\
                    - Gradual Reboot: restore carefully.";
        let cov = PlanCoverage::of(plan);
        assert_eq!(cov.coverage(), 1.0);
        assert!(cov.core_two_present());
        assert!(cov.missing.is_empty());
    }

    #[test]
    fn partial_plan_reports_missing() {
        let plan = "- Predictive Shutdown: power down early.\n- Data Preservation: backups.";
        let cov = PlanCoverage::of(plan);
        assert_eq!(cov.present.len(), 2);
        assert!(!cov.core_two_present(), "redundancy component absent");
        assert!(cov.missing.contains(&"Gradual Reboot".to_string()));
    }

    #[test]
    fn empty_plan_scores_zero() {
        let cov = PlanCoverage::of("no plan at all");
        assert_eq!(cov.coverage(), 0.0);
        assert_eq!(cov.missing.len(), 5);
    }

    #[test]
    fn matching_is_case_insensitive() {
        let cov = PlanCoverage::of("we recommend PREDICTIVE SHUTDOWN and redundancy utilization");
        assert!(cov.core_two_present());
    }
}
