//! BM25 search latency vs corpus size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ira_webcorpus::{Corpus, CorpusConfig};
use ira_worldmodel::World;

fn bench_search(c: &mut Criterion) {
    let world = World::standard();
    let mut group = c.benchmark_group("bm25_search");
    for distractors in [150usize, 600, 2400] {
        let corpus = Corpus::generate(
            &world,
            CorpusConfig {
                seed: 1,
                distractor_count: distractors,
                ..CorpusConfig::default()
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(corpus.len()),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    std::hint::black_box(
                        corpus.search("fiber optic submarine cable brazil europe latitude", 10),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let world = World::standard();
    c.bench_function("corpus_generate_and_index", |b| {
        b.iter(|| {
            std::hint::black_box(Corpus::generate(
                &world,
                CorpusConfig {
                    seed: 1,
                    distractor_count: 150,
                    ..CorpusConfig::default()
                },
            ))
        })
    });
}

criterion_group!(benches, bench_search, bench_index_build);
criterion_main!(benches);
