//! World-model computations: geomagnetic latitude, cable failure
//! probability, conclusion derivation, and the Monte Carlo
//! connectivity report.

use criterion::{criterion_group, criterion_main, Criterion};
use ira_worldmodel::geo::GeoPoint;
use ira_worldmodel::geomag::geomagnetic_latitude;
use ira_worldmodel::storm::StormScenario;
use ira_worldmodel::World;

fn bench_geomag(c: &mut Criterion) {
    let p = GeoPoint::new(40.71, -74.01);
    c.bench_function("geomagnetic_latitude", |b| {
        b.iter(|| std::hint::black_box(geomagnetic_latitude(&p)))
    });
}

fn bench_cable_failure(c: &mut Criterion) {
    let world = World::standard();
    let cable = world.cables.find("Grace Hopper").unwrap().clone();
    let storm = StormScenario::carrington_1859();
    c.bench_function("cable_failure_prob", |b| {
        b.iter(|| std::hint::black_box(world.storm_model.cable_failure_prob(&cable, &storm)))
    });
}

fn bench_conclusions(c: &mut Criterion) {
    let world = World::standard();
    c.bench_function("derive_conclusions", |b| {
        b.iter(|| std::hint::black_box(world.conclusions()))
    });
}

fn bench_storm_report(c: &mut Criterion) {
    let world = World::standard();
    let storm = StormScenario::carrington_1859();
    c.bench_function("storm_report_100_trials", |b| {
        b.iter(|| {
            std::hint::black_box(world.graph.storm_report(
                &world.cables,
                &world.storm_model,
                &storm,
                100,
                7,
            ))
        })
    });
}

fn bench_bgp_reachability(c: &mut Criterion) {
    use ira_worldmodel::bgp::RoutingSystem;
    let sys = RoutingSystem::standard();
    c.bench_function("bgp_availability_sweep", |b| {
        b.iter(|| std::hint::black_box(sys.availability("facebook.com")))
    });
}

fn bench_policy_evaluation(c: &mut Criterion) {
    use ira_worldmodel::forecast::{evaluate_policy, CostModel, ForecastModel, ShutdownPolicy};
    use rand::SeedableRng;
    let world = World::standard();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let events = ForecastModel::default().sample_series(100, &mut rng);
    let costs = CostModel::default();
    c.bench_function("shutdown_policy_100_events", |b| {
        b.iter(|| {
            std::hint::black_box(evaluate_policy(
                ShutdownPolicy { trigger_dst: 500.0 },
                &events,
                &world.cables,
                &world.storm_model,
                &costs,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_geomag,
    bench_cable_failure,
    bench_conclusions,
    bench_storm_report,
    bench_bgp_reachability,
    bench_policy_evaluation
);
criterion_main!(benches);
