//! End-to-end agent pipeline: training and one self-learning question.
//! Sample counts are kept low — each iteration is a full agent run.

use criterion::{criterion_group, criterion_main, Criterion};
use ira_core::{Environment, ResearchAgent};

const CABLE_Q: &str = "Which is more vulnerable to solar activity? The fiber optic cable that \
                       connects Brazil to Europe or the one that connects the US to Europe?";

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_pipeline");
    group.sample_size(10);
    group.bench_function("train_bob", |b| {
        b.iter(|| {
            let env = Environment::standard();
            let mut bob = ResearchAgent::bob(&env);
            std::hint::black_box(bob.train())
        })
    });
    group.bench_function("train_and_self_learn_cable_q", |b| {
        b.iter(|| {
            let env = Environment::standard();
            let mut bob = ResearchAgent::bob(&env);
            bob.train();
            std::hint::black_box(bob.self_learn(CABLE_Q))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
