//! Knowledge-memory operations: embed, memorize (with dedup scan), and
//! scored retrieval at several store sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ira_agentmem::{embed, KnowledgeStore, StoreConfig};

fn filled_store(n: usize) -> KnowledgeStore {
    let store = KnowledgeStore::new(StoreConfig {
        capacity: n + 10,
        ..StoreConfig::default()
    });
    for i in 0..n {
        store.memorize(
            "topic",
            &format!(
                "Entry number {i}: the cable system alpha-{i} connects city-{i} to port-{i} \
                 and reaches a latitude of {} degrees.",
                i % 70
            ),
            &format!("sim://src.test/{i}"),
            "news",
            i as u64 * 1_000,
            0.5,
        );
    }
    store
}

fn bench_embed(c: &mut Criterion) {
    let text = "The Grace Hopper submarine cable connects New York, United States to Bude, \
                United Kingdom, linking North America and Europe. Along its route it reaches \
                a maximum geomagnetic latitude of 63.0 degrees.";
    c.bench_function("embed_document", |b| {
        b.iter(|| std::hint::black_box(embed(text)))
    });
}

fn bench_memorize(c: &mut Criterion) {
    let mut group = c.benchmark_group("memorize_with_dedup_scan");
    for size in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let store = filled_store(size);
            let mut i = size as u64;
            b.iter(|| {
                i += 1;
                store.memorize(
                    "t",
                    &format!("fresh unique content number {i} about storms and cables"),
                    &format!("sim://new.test/{i}"),
                    "news",
                    i,
                    0.5,
                )
            })
        });
    }
    group.finish();
}

fn bench_retrieve(c: &mut Criterion) {
    let mut group = c.benchmark_group("retrieve_top8");
    for size in [100usize, 1000] {
        let store = filled_store(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &store, |b, store| {
            b.iter(|| {
                std::hint::black_box(store.retrieve("cable system latitude degrees", 8, u64::MAX))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_embed, bench_memorize, bench_retrieve);
criterion_main!(benches);
