//! Simulated-network request path: raw transmit and client with
//! retries, plus URL parsing.

use criterion::{criterion_group, criterion_main, Criterion};
use ira_simnet::latency::LatencyModel;
use ira_simnet::ratelimit::TokenBucket;
use ira_simnet::server::{HostConfig, Request, Response};
use ira_simnet::{Client, Network, NetworkConfig, Url};
use std::sync::Arc;

fn network() -> Arc<Network> {
    let mut net = Network::new(NetworkConfig::default(), 42);
    net.register_with(
        "bench.test",
        Arc::new(|_req: &Request| Response::ok("body of a benchmark page")),
        HostConfig {
            latency: LatencyModel {
                loss: 0.001,
                ..LatencyModel::fast()
            },
            rate_limit: TokenBucket::unlimited(),
        },
    );
    Arc::new(net)
}

fn bench_url_parse(c: &mut Criterion) {
    c.bench_function("url_parse", |b| {
        b.iter(|| {
            std::hint::black_box(Url::parse(
                "sim://search.test/q?query=solar+storm+cable&k=10",
            ))
        })
    });
}

fn bench_transmit(c: &mut Criterion) {
    let net = network();
    let req = Request::get(Url::parse("sim://bench.test/page").unwrap());
    c.bench_function("network_transmit", |b| {
        b.iter(|| std::hint::black_box(net.transmit(&req)))
    });
}

fn bench_client_get(c: &mut Criterion) {
    let client = Client::new(network());
    c.bench_function("client_get_with_retries", |b| {
        b.iter(|| std::hint::black_box(client.get("sim://bench.test/page")))
    });
}

criterion_group!(benches, bench_url_parse, bench_transmit, bench_client_get);
criterion_main!(benches);
