//! Simulated-LLM operations: extraction, grounded and ungrounded
//! answering, and intent classification.

use criterion::{criterion_group, criterion_main, Criterion};
use ira_simllm::extract::Extraction;
use ira_simllm::intent::classify;
use ira_simllm::Llm;

const CABLE_Q: &str = "Which is more vulnerable to solar activity? The fiber optic cable that \
                       connects Brazil to Europe or the one that connects the US to Europe?";

fn knowledge() -> Vec<String> {
    vec![
        "Geomagnetically induced currents grow stronger at higher geomagnetic latitudes.".into(),
        "The EllaLink submarine cable connects Fortaleza, Brazil to Sines, Portugal, linking \
         South America and Europe. Along its route it reaches a maximum geomagnetic latitude \
         of 46.0 degrees. The system spans approximately 6134 kilometres. The cable is \
         powered through roughly 87 optical repeaters."
            .into(),
        "The Grace Hopper submarine cable connects New York, United States to Bude, United \
         Kingdom, linking North America and Europe. Along its route it reaches a maximum \
         geomagnetic latitude of 63.0 degrees."
            .into(),
    ]
}

fn bench_extraction(c: &mut Criterion) {
    let text = knowledge().join("\n");
    c.bench_function("extract_facts", |b| {
        b.iter(|| std::hint::black_box(Extraction::from_text(&text, None)))
    });
}

fn bench_classify(c: &mut Criterion) {
    c.bench_function("intent_classify", |b| {
        b.iter(|| std::hint::black_box(classify(CABLE_Q)))
    });
}

fn bench_grounded_answer(c: &mut Criterion) {
    let llm = Llm::gpt4(1);
    let k = knowledge();
    c.bench_function("llm_answer_grounded", |b| {
        b.iter(|| std::hint::black_box(llm.answer(CABLE_Q, &k)))
    });
}

fn bench_ungrounded_answer(c: &mut Criterion) {
    let llm = Llm::gpt4(1);
    c.bench_function("llm_answer_ungrounded", |b| {
        b.iter(|| std::hint::black_box(llm.answer(CABLE_Q, &[])))
    });
}

criterion_group!(
    benches,
    bench_extraction,
    bench_classify,
    bench_grounded_answer,
    bench_ungrounded_answer
);
criterion_main!(benches);
