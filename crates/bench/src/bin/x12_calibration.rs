//! X12 — confidence calibration (extension; validates the signal the
//! whole §3 control loop gates on).
//!
//! The agent's self-reported confidence decides when self-learning
//! stops. This experiment collects (confidence, correct) pairs across
//! the full quiz at five corpus seeds — sampling every round of every
//! trajectory, not just the final answers — and reports the
//! calibration table, Brier score, and expected calibration error.

use ira::evalkit::calibration::Calibration;
use ira::evalkit::report::{banner, table};
use ira::evalkit::verdict::match_verdict;
use ira::prelude::*;

fn main() {
    print!(
        "{}",
        banner(
            "X12",
            "confidence calibration across seeds",
            "(extension) answers at confidence 9 must be right far more often than at 3, \
             or the threshold loop is gating on noise"
        )
    );

    let engine = Engine::new();
    let mut cal = Calibration::new();
    for seed in [0xCA1u64, 0xCA2, 0xCA3, 0xCA4, 0xCA5] {
        let mut session = engine.spawn_session(SessionConfig {
            corpus: CorpusConfig {
                seed,
                distractor_count: 150,
                ..CorpusConfig::default()
            },
            net_seed: seed ^ 0xBEEF,
            llm_seed: seed,
            ..SessionConfig::bob()
        });
        let quiz = QuizBank::from_world(session.world());
        let bob = &mut session.agent;
        bob.train();
        for item in quiz.iter() {
            let trajectory = bob.self_learn(&item.question);
            // Sample every round: low-confidence rounds are exactly
            // where calibration matters most.
            for round in &trajectory.rounds {
                let answer = ira::simllm::reason::Answer {
                    text: round.answer_text.clone(),
                    verdict: round.verdict.clone(),
                    confidence: round.confidence,
                    coverage: round.coverage,
                    missing: Vec::new(),
                    principles_used: Vec::new(),
                    facts_used: 0,
                    reasoning: Vec::new(),
                };
                let correct = match_verdict(&answer, item).consistent;
                cal.record(round.confidence, correct);
            }
        }
    }

    let rows: Vec<Vec<String>> = cal
        .buckets(&[(0, 2), (3, 4), (5, 6), (7, 8), (9, 10)])
        .into_iter()
        .map(|b| {
            vec![
                format!("{}-{}", b.lo, b.hi),
                b.samples.to_string(),
                format!("{:.2}", b.stated),
                format!("{:.2}", b.accuracy),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["confidence", "samples", "stated-p", "accuracy"], &rows)
    );
    println!(
        "{} samples · Brier score {:.3} · expected calibration error {:.3}",
        cal.len(),
        cal.brier_score(),
        cal.expected_calibration_error()
    );
    println!(
        "\nreading: accuracy should rise with the bucket. Low buckets scoring ~0 is correct \
         behaviour — a hedge is 'wrong' against ground truth, and the agent said so."
    );
}
