//! X10 — the cost of disruption (extension; §1's motivation, made
//! computable).
//!
//! The paper opens with the economic stake: "The economic impact of
//! widespread Internet disruption can lead to a loss of revenue of 7
//! billion" (NetBlocks cost-of-shutdown). This experiment runs the
//! COST-style model over the storm catalog: grid-driven regional
//! downtime plus cross-border losses during the cable-repair window.

use ira::evalkit::report::{banner, table};
use ira::prelude::*;
use ira::worldmodel::econ::{daily_digital_economy_busd, storm_impact};
use ira::worldmodel::geo::Region;
use ira::worldmodel::storm::StormScenario;

fn main() {
    print!(
        "{}",
        banner(
            "X10",
            "economic impact per storm scenario",
            "(extension) §1's \"$7B\" figure generalised: impact scales superlinearly with \
             storm intensity"
        )
    );

    println!(
        "calibration: a full one-day North America shutdown costs ${:.1}B (the paper's \
         NetBlocks figure is $7B for the US)\n",
        daily_digital_economy_busd(Region::NorthAmerica)
    );

    let world = World::standard();
    let mut rows = Vec::new();
    for storm in StormScenario::catalog() {
        let impact = storm_impact(&world, &storm, 200, 0xEC0);
        rows.push(vec![
            storm.name.clone(),
            format!("{:.0}", storm.dst_nt),
            format!("{:.1}", impact.cables_down),
            format!("{:.1}", impact.grid_losses_busd),
            format!("{:.1}", impact.connectivity_losses_busd),
            format!("{:.1}", impact.total_busd),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "scenario",
                "dst-nT",
                "cables-down",
                "grid-$B",
                "connectivity-$B",
                "total-$B"
            ],
            &rows
        )
    );
    println!(
        "shape: moderate storms cost nothing; the 1989-class event is a single-digit-billions \
         regional grid story; Carrington-class events combine month-scale grid damage with a \
         long cable-repair tail into a different order of magnitude."
    );
}
