//! X13 — chaos sweep: graceful degradation under fault injection
//! (extension; robustness the paper's clean-web evaluation never
//! exercises).
//!
//! A seeded fault plan blacks out, degrades, rate-limit-storms, or
//! corrupts a growing fraction of the simulated web's hosts while Bob
//! trains and answers the quiz. The resilient client (per-host circuit
//! breaker) and the agent's source-rerouting keep the investigation
//! alive; this sweep measures what that degradation costs: quiz
//! consistency, self-learning effort, wasted network work, and breaker
//! activity at 0%, 10%, 25%, and 50% fault intensity. Fixed seeds make
//! every level bit-reproducible, and `--threads N` runs the levels on
//! worker threads with the very same output (timing on stderr).

use ira::evalkit::report::{banner, table};
use ira::evalkit::robustness::chaos_sweep_threads;
use ira_bench::{print_timing, threads_from_args};

const INTENSITIES: [f64; 4] = [0.0, 0.10, 0.25, 0.50];
const FAULT_SEED: u64 = 0xC4A0;

fn main() {
    let threads = threads_from_args();
    print!(
        "{}",
        banner(
            "X13",
            "chaos sweep: fault intensity 0% -> 50%",
            "(extension) the agent must finish with partial knowledge and honest \
             confidence when hosts fail, not abort; at 25% intensity quiz consistency \
             must stay within one conclusion of fault-free"
        )
    );

    let start = std::time::Instant::now();
    let sweep = chaos_sweep_threads(&INTENSITIES, FAULT_SEED, threads);

    let rows: Vec<Vec<String>> = sweep
        .levels
        .iter()
        .map(|l| {
            vec![
                format!("{:.0}%", l.intensity * 100.0),
                l.fault_windows.to_string(),
                format!("{}/{}", l.consistent, l.total),
                format!("{:.1}", l.mean_confidence),
                l.learning_rounds.to_string(),
                l.wasted_network.to_string(),
                l.fast_failures.to_string(),
                l.breaker_transitions.to_string(),
                l.source_unavailable.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "faults",
                "windows",
                "consistent",
                "conf",
                "rounds",
                "wasted net",
                "fast fail",
                "breaker",
                "rerouted",
            ],
            &rows
        )
    );

    let base = sweep.baseline().map(|l| l.consistent).unwrap_or(0);
    println!(
        "fault-free consistency {base}/8; worst degradation across levels: \
         {} conclusion(s)",
        sweep.worst_degradation()
    );
    if let Some(quarter) = sweep
        .levels
        .iter()
        .find(|l| (l.intensity - 0.25).abs() < 1e-9)
    {
        let drop = base.saturating_sub(quarter.consistent);
        println!(
            "at 25% intensity: {}/{} consistent ({} below fault-free) -- {}",
            quarter.consistent,
            quarter.total,
            drop,
            if drop <= 1 {
                "within the 1-conclusion bar"
            } else {
                "EXCEEDS the 1-conclusion bar"
            }
        );
    }
    print_timing(threads, start.elapsed(), 1);
}
