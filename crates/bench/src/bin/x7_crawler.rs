//! X7 — the integrated crawler (extension; §5 "Limitations of
//! Auto-GPT": "We plan to develop an integrated online crawler for
//! Auto-GPT to fetch and analyze diverse resources with a unified
//! format").
//!
//! With crawling enabled, every fetched page's "Related:" links are
//! followed one level deep. We train Bob both ways and compare: what
//! one training run learns (entries, source diversity), what it costs
//! (fetches, virtual time), and how it changes the flagship question's
//! starting point.

use ira::evalkit::report::{banner, table};
use ira::prelude::*;

const QUESTION: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
                        that connects Brazil to Europe or the one that connects the US to \
                        Europe?";

fn main() {
    print!(
        "{}",
        banner(
            "X7",
            "crawler extension on vs off",
            "(extension) following Related links broadens one run's knowledge at extra \
             fetch cost"
        )
    );

    let mut rows = Vec::new();
    for crawl_links in [0usize, 1, 2] {
        let env = Environment::standard();
        let config = AgentConfig {
            autogpt: AutoGptConfig {
                crawl_links,
                ..AutoGptConfig::default()
            },
            ..AgentConfig::default()
        };
        let mut bob = ResearchAgent::new(RoleDefinition::bob(), &env, config, 0xB0B);
        let report = bob.train();
        let sources = bob.memory().source_histogram().len();
        let trajectory = bob.self_learn(QUESTION);
        rows.push(vec![
            crawl_links.to_string(),
            report.total_fetches().to_string(),
            report.memory_entries.to_string(),
            sources.to_string(),
            format!("{:.1}", report.virtual_elapsed_us as f64 / 1e6),
            trajectory
                .initial_confidence()
                .map(|c| c.to_string())
                .unwrap_or_default(),
            trajectory
                .final_confidence()
                .map(|c| c.to_string())
                .unwrap_or_default(),
            trajectory.learning_rounds().to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "crawl-links",
                "fetches",
                "entries",
                "source-kinds",
                "train-virt-s",
                "conf-0",
                "conf-final",
                "rounds"
            ],
            &rows
        )
    );
    println!(
        "shape: crawling buys broader initial knowledge (more entries, sometimes a higher \
         starting confidence) at proportional fetch and time cost — the trade-off the \
         paper's planned crawler would face."
    );
}
