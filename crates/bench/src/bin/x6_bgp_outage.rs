//! X6 — the configuration-error incident, simulated (extension; §2's
//! first incident class).
//!
//! Rather than quoting the 2021 Facebook outage, this replays its
//! mechanism on the AS-level routing substrate: the BGP configuration
//! error withdraws the prefixes covering Facebook's authoritative DNS
//! servers; valley-free route propagation then determines which edge
//! networks can still resolve and reach the service. The incident
//! catalog's qualitative claims (total loss, Facebook-local blast
//! radius, full recovery on re-announcement) are checked against the
//! simulation.

use ira::evalkit::report::{banner, table};
use ira::worldmodel::bgp::{AsKind, RoutingSystem};
use ira::worldmodel::incidents::{IncidentCatalog, IncidentId};
use ira::worldmodel::scenario::{RouteLeak, Scenario};
use ira::worldmodel::World;

fn main() {
    print!(
        "{}",
        banner(
            "X6",
            "BGP/DNS outage replay on the routing substrate",
            "(extension) the Facebook-outage mechanism reproduced by simulation: DNS prefix \
             withdrawal -> global resolution failure -> full recovery"
        )
    );

    let mut sys = RoutingSystem::standard();
    println!(
        "topology: {} ASes ({} edge networks), valley-free routing\n",
        sys.graph.len(),
        sys.graph.ases().filter(|n| n.kind == AsKind::Edge).count()
    );

    let phases = [
        ("pre-incident", None),
        ("DNS prefixes withdrawn", Some(true)),
        ("prefixes re-announced", Some(false)),
    ];
    let mut rows = Vec::new();
    for (label, action) in phases {
        match action {
            Some(true) => {
                sys.withdraw("129.134.30.0/24");
                sys.withdraw("129.134.31.0/24");
            }
            Some(false) => {
                sys.restore("129.134.30.0/24");
                sys.restore("129.134.31.0/24");
            }
            None => {}
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.0}%", sys.availability("facebook.com") * 100.0),
            format!("{:.0}%", sys.availability("google.com") * 100.0),
        ]);
    }
    println!("{}", table(&["phase", "facebook.com", "google.com"], &rows));

    // Per-edge view during the outage for color.
    sys.withdraw("129.134.30.0/24");
    sys.withdraw("129.134.31.0/24");
    println!("during the outage, per edge network:");
    for node in sys.graph.ases().filter(|n| n.kind == AsKind::Edge) {
        println!(
            "  {:<16} resolve={:<5} service={}",
            node.name,
            sys.can_resolve(node.asn, "facebook.com"),
            sys.service_available(node.asn, "facebook.com")
        );
    }

    let catalog = IncidentCatalog::standard();
    let fb = catalog.get(IncidentId::FacebookOutage2021).unwrap();
    println!(
        "\ncatalog cross-check: \"{}\" — the simulation reproduces the mechanism: losing \
         only the DNS prefixes takes availability to 0% everywhere while every other \
         network stays up.",
        fb.cause
    );

    // The route-leak scenario derives its quiz ground truth from this
    // very replay; cross-check that its numbers match the phases above
    // and that every conclusion holds in the model.
    let (before, during, after) = RouteLeak::replay();
    let world = World::standard();
    RouteLeak
        .self_check(&world)
        .expect("route-leak ground truth");
    let availability = |v: f64| format!("{} percent", (v * 100.0).round() as u64);
    let conclusions = RouteLeak.conclusions(&world);
    let stated = |id: &str| {
        conclusions
            .iter()
            .find(|c| c.id == id)
            .map(|c| c.statement.as_str())
            .expect("conclusion present")
    };
    assert!(
        stated("RouteLeakAvailability").contains(&availability(during)),
        "scenario availability claim must quote the replayed outage level"
    );
    assert!(
        stated("RouteLeakRecovery").contains(&availability(after)),
        "scenario recovery claim must quote the replayed recovery level"
    );
    println!(
        "\nscenario cross-check: route-leak ground truth self-checks against the same \
         replay — availability {} -> {} -> {}, {} conclusions hold.",
        availability(before),
        availability(during),
        availability(after),
        conclusions.len()
    );
}
