//! Observability overhead on the X11 sweep (tooling calibration).
//!
//! Runs the X11 seed-robustness workload — ten train + self-learn
//! sessions over a shared [`Engine`] — under three observation modes
//! and reports median wall time over repeated runs:
//!
//! * `off`      — `spawn_session`: the disabled [`NullCollector`] path
//!   every existing experiment takes (emission closures never run).
//! * `summary`  — `spawn_session_observed` with a [`SummaryCollector`]
//!   aggregating counters/histograms.
//! * `jsonl`    — `spawn_session_observed` with a [`JsonlCollector`]
//!   buffering the full replayable trace in memory.
//! * `flight`   — `spawn_session_observed` with the always-on
//!   [`FlightRecorder`](ira::obs::FlightRecorder): a bounded
//!   per-session ring of recent events. No serve-stage triggers fire
//!   in an engine sweep, so this measures the pure ring-buffer cost of
//!   leaving the recorder attached.
//!
//! The `off` mode must stay within noise of the pre-instrumentation
//! X11 wall time (the <2% budget recorded in EXPERIMENTS.md); the
//! sweep sanity-checks its own verdicts so a mode that changed agent
//! behaviour would fail loudly.

use ira::evalkit::report::{banner, table};
use ira::prelude::*;
use ira_bench::threads_from_args;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counting allocator backing the warm-key no-allocation assertion:
/// one relaxed add per allocation, uniform across all three modes.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The steady-state contract [`SummaryCollector`] documents: once a
/// metric key has been seen, folding further events for it must not
/// allocate (reused key buffer, in-place registry updates).
fn assert_warm_key_folding_is_alloc_free() {
    use ira::obs::Collector as _;
    let collector = SummaryCollector::new();
    let mut events = Vec::new();
    for i in 0..1_000u64 {
        events.push(TraceEvent::point(0, i, "net", "cache_hit", ""));
        events.push(TraceEvent::span(0, i, "llm", "call", "", 40 + i));
    }
    for ev in events.drain(..2) {
        collector.record(ev); // warm-up pays the one-time key allocations
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let folded = events.len();
    for ev in events {
        collector.record(ev);
    }
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        during, 0,
        "warm-key summary folding allocated {during} times over {folded} events"
    );
    println!("warm-key folding: 0 allocations over {folded} events\n");
}

/// The disabled-path contract the `off` rows lean on, asserted
/// directly: a disabled [`ObsHandle`](ira::obs::ObsHandle) never runs
/// an emit closure, opens no span state, and allocates nothing.
fn assert_disabled_path_is_alloc_free() {
    let handle = ira::obs::ObsHandle::disabled();
    const CALLS: u64 = 10_000;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..CALLS {
        handle.emit(|| TraceEvent::point(0, i, "net", "cache_hit", ""));
        let scope = handle.scope(i, "llm", "call");
        scope.finish(i + 40, || format!("call {i}"));
    }
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        during, 0,
        "disabled observability allocated {during} times over {CALLS} emit+scope rounds"
    );
    println!("disabled path: 0 allocations over {CALLS} emit+scope rounds\n");
}

const QUESTION: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
                        that connects Brazil to Europe or the one that connects the US to \
                        Europe?";

const RUNS: usize = 9;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Off,
    Summary,
    Jsonl,
    Flight,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Off => "off (NullCollector)",
            Mode::Summary => "summary",
            Mode::Jsonl => "jsonl",
            Mode::Flight => "flight",
        }
    }
}

/// One full X11 sweep; returns (wall seconds, correct verdicts, events
/// recorded).
fn run_once(mode: Mode, threads: usize) -> (f64, usize, usize) {
    let start = std::time::Instant::now();
    let engine = Engine::new();
    let jsonl = Arc::new(JsonlCollector::new());
    let summary = Arc::new(SummaryCollector::new());
    let flight = Arc::new(ira::obs::FlightRecorder::default());
    let seeds: Vec<u64> = (0..10).map(|i| 0x5EED + i * 0x101).collect();
    let outcomes = sweep(seeds, threads, |i, seed| {
        let config = SessionConfig {
            corpus: CorpusConfig {
                seed,
                distractor_count: 150,
                ..CorpusConfig::default()
            },
            net_seed: seed ^ 0xBEEF,
            llm_seed: seed,
            ..SessionConfig::bob()
        };
        let mut session = match mode {
            Mode::Off => engine.spawn_session(config),
            Mode::Summary => {
                engine.spawn_session_observed(config, Arc::clone(&summary) as _, i as u32)
            }
            Mode::Jsonl => engine.spawn_session_observed(config, Arc::clone(&jsonl) as _, i as u32),
            Mode::Flight => {
                engine.spawn_session_observed(config, Arc::clone(&flight) as _, i as u32)
            }
        };
        session.agent.train();
        session.agent.self_learn(QUESTION);
        let answer = session.agent.ask(QUESTION);
        answer
            .verdict
            .as_deref()
            .unwrap_or("")
            .to_lowercase()
            .contains("united states")
    });
    let wall = start.elapsed().as_secs_f64();
    let correct = outcomes.into_iter().filter(|ok| *ok).count();
    let events = match mode {
        Mode::Off => 0,
        Mode::Summary => summary.snapshot().counters.values().sum::<u64>() as usize,
        Mode::Jsonl => jsonl.events().len(),
        Mode::Flight => {
            assert_eq!(
                flight.dump_count(),
                0,
                "no serve-stage trigger exists in an engine sweep"
            );
            flight.events_seen() as usize
        }
    };
    (wall, correct, events)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    samples[samples.len() / 2]
}

fn main() {
    let threads = threads_from_args();
    print!(
        "{}",
        banner(
            "OBS",
            "collector overhead on the X11 sweep",
            "(tooling) the disabled path must cost nothing; tracing must stay cheap \
             enough to leave on"
        )
    );
    println!("{RUNS} runs per mode, threads={threads}; reporting medians\n");

    assert_warm_key_folding_is_alloc_free();
    assert_disabled_path_is_alloc_free();

    let mut rows = Vec::new();
    let mut baseline = 0.0;
    for mode in [Mode::Off, Mode::Summary, Mode::Jsonl, Mode::Flight] {
        let mut walls = Vec::new();
        let mut correct = 0;
        let mut events = 0;
        for _ in 0..RUNS {
            let (w, c, e) = run_once(mode, threads);
            assert_eq!(
                c,
                10,
                "{}: verdicts must not change under tracing",
                mode.label()
            );
            walls.push(w);
            correct = c;
            events = e;
        }
        let med = median(&mut walls);
        if mode == Mode::Off {
            baseline = med;
        }
        rows.push(vec![
            mode.label().to_string(),
            format!("{:.3}", med),
            format!("{:+.1}%", (med / baseline - 1.0) * 100.0),
            events.to_string(),
            format!("{correct}/10"),
        ]);
    }
    println!(
        "{}",
        table(
            &["mode", "median-wall-s", "vs-off", "events", "verdicts"],
            &rows
        )
    );
}
