//! E4 — §4.3 "Planning Ability": the shutdown strategy.
//!
//! Paper claim: asked for a "shutdown" strategy, the agent's plan is
//! "highly consistent" with the human-expert plan on *Predictive
//! Shutdown* and *Redundancy Utilization*, and also proposes Phased
//! Shutdown, Data Preservation, and Gradual Reboot.

use ira::evalkit::plancov::{PlanCoverage, CORE_COMPONENTS, REFERENCE_COMPONENTS};
use ira::evalkit::report::banner;
use ira::prelude::*;

fn main() {
    print!(
        "{}",
        banner(
            "E4",
            "response-plan component coverage",
            "Predictive Shutdown + Redundancy Utilization highly consistent; 5 reference \
             components overall"
        )
    );

    let env = Environment::standard();
    let mut bob = ResearchAgent::bob(&env);
    bob.train();

    let plan = bob.respond_plan();
    println!("agent {} suggests:\n{}\n", bob.role.name, plan.text);
    println!("plan confidence: {}/10\n", plan.confidence);

    let coverage = PlanCoverage::of(&plan.text);
    println!("reference components ({}):", REFERENCE_COMPONENTS.len());
    for c in REFERENCE_COMPONENTS {
        let mark = if coverage.present.iter().any(|p| p == c) {
            "present"
        } else {
            "MISSING"
        };
        println!("  {c:<24} {mark}");
    }
    println!(
        "\ncoverage: {:.0}% of reference components; core two ({}) present: {}",
        coverage.coverage() * 100.0,
        CORE_COMPONENTS.join(" + "),
        coverage.core_two_present()
    );
}
