//! X11 — seed robustness of the flagship result (extension; the
//! reproducibility hygiene the paper's single-run evaluation lacks).
//!
//! The paper reports one training run of one agent. This experiment
//! re-runs the E2 cable trajectory across ten corpus/network seeds —
//! ten different "views of the web" — and reports the distribution of
//! outcomes. A result that only holds at one seed is an anecdote;
//! during development this sweep caught every retrieval fragility the
//! single-seed experiments missed.

use ira_core::{AgentConfig, Environment, ResearchAgent, RoleDefinition};
use ira_evalkit::report::{banner, table};
use ira_webcorpus::CorpusConfig;

const QUESTION: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
                        that connects Brazil to Europe or the one that connects the US to \
                        Europe?";

fn main() {
    print!(
        "{}",
        banner(
            "X11",
            "E2 across ten corpus seeds",
            "(extension) the 3 -> 8..9 one-round trajectory must hold for every view of \
             the web, not one lucky seed"
        )
    );

    let mut rows = Vec::new();
    let mut correct = 0usize;
    let mut one_round = 0usize;
    let seeds: Vec<u64> = (0..10).map(|i| 0x5EED + i * 0x101).collect();
    for &seed in &seeds {
        let env = Environment::build(
            CorpusConfig { seed, distractor_count: 150 },
            seed ^ 0xBEEF,
        );
        let mut bob = ResearchAgent::new(RoleDefinition::bob(), &env, AgentConfig::default(), seed);
        bob.train();
        let t = bob.self_learn(QUESTION);
        let answer = bob.ask(QUESTION);
        let verdict_ok = answer
            .verdict
            .as_deref()
            .unwrap_or("")
            .to_lowercase()
            .contains("united states");
        if verdict_ok {
            correct += 1;
        }
        if t.learning_rounds() == 1 {
            one_round += 1;
        }
        let series: Vec<String> = t.confidence_series().iter().map(u8::to_string).collect();
        rows.push(vec![
            format!("{seed:#x}"),
            series.join(" -> "),
            t.learning_rounds().to_string(),
            if verdict_ok { "US-Europe" } else { "WRONG/hedge" }.to_string(),
        ]);
    }
    println!("{}", table(&["seed", "confidence", "rounds", "verdict"], &rows));
    println!(
        "correct verdict on {correct}/{} seeds; one-round convergence on {one_round}/{}",
        seeds.len(),
        seeds.len()
    );
}
