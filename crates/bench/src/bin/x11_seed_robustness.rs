//! X11 — seed robustness of the flagship result (extension; the
//! reproducibility hygiene the paper's single-run evaluation lacks).
//!
//! The paper reports one training run of one agent. This experiment
//! re-runs the E2 cable trajectory across ten corpus/network seeds —
//! ten different "views of the web" — and reports the distribution of
//! outcomes. A result that only holds at one seed is an anecdote;
//! during development this sweep caught every retrieval fragility the
//! single-seed experiments missed.
//!
//! Each seed is one independent session over a shared [`Engine`];
//! `--threads N` runs seeds on worker threads with the report
//! aggregated in seed order, byte-identical to serial.

use ira::evalkit::report::{banner, table};
use ira::prelude::*;
use ira_bench::{print_timing, threads_from_args};

const QUESTION: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
                        that connects Brazil to Europe or the one that connects the US to \
                        Europe?";

fn main() {
    let threads = threads_from_args();
    print!(
        "{}",
        banner(
            "X11",
            "E2 across ten corpus seeds",
            "(extension) the 3 -> 8..9 one-round trajectory must hold for every view of \
             the web, not one lucky seed"
        )
    );

    let start = std::time::Instant::now();
    let engine = Engine::new();
    let seeds: Vec<u64> = (0..10).map(|i| 0x5EED + i * 0x101).collect();
    let outcomes = sweep(seeds.clone(), threads, |_, seed| {
        let mut session = engine.spawn_session(SessionConfig {
            corpus: CorpusConfig {
                seed,
                distractor_count: 150,
                ..CorpusConfig::default()
            },
            net_seed: seed ^ 0xBEEF,
            llm_seed: seed,
            ..SessionConfig::bob()
        });
        session.agent.train();
        let t = session.agent.self_learn(QUESTION);
        let answer = session.agent.ask(QUESTION);
        let verdict_ok = answer
            .verdict
            .as_deref()
            .unwrap_or("")
            .to_lowercase()
            .contains("united states");
        let series: Vec<String> = t.confidence_series().iter().map(u8::to_string).collect();
        let row = vec![
            format!("{seed:#x}"),
            series.join(" -> "),
            t.learning_rounds().to_string(),
            if verdict_ok {
                "US-Europe"
            } else {
                "WRONG/hedge"
            }
            .to_string(),
        ];
        (row, verdict_ok, t.learning_rounds() == 1)
    });

    let correct = outcomes.iter().filter(|(_, ok, _)| *ok).count();
    let one_round = outcomes.iter().filter(|(_, _, one)| *one).count();
    let rows: Vec<Vec<String>> = outcomes.into_iter().map(|(row, _, _)| row).collect();
    println!(
        "{}",
        table(&["seed", "confidence", "rounds", "verdict"], &rows)
    );
    println!(
        "correct verdict on {correct}/{} seeds; one-round convergence on {one_round}/{}",
        seeds.len(),
        seeds.len()
    );
    print_timing(threads, start.elapsed(), engine.corpus_builds());
}
