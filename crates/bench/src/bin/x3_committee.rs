//! X3 — multi-model committees (extension; §5 "Learning and
//! interacting with multiple LLMs").
//!
//! Several independently seeded agents — each with its own view of the
//! web — investigate the quiz; answers are aggregated by plurality
//! vote. Reported per question: the committee verdict, cross-member
//! agreement, and mean confidence, against the single-agent answer.
//! The interesting rows are the ones where members diverge: agreement
//! below 1.0 flags exactly the questions a single agent is least
//! reliable on.
//!
//! Committee members are independent end-to-end runs, so `--threads N`
//! evaluates them on worker threads ([`Committee::evaluate_member`])
//! and aggregates in member order — the same report, faster.

use ira::core::ensemble::aggregate;
use ira::core::{Committee, CommitteeConfig};
use ira::evalkit::report::{banner, table};
use ira::prelude::*;
use ira_bench::{print_timing, threads_from_args};

fn main() {
    let threads = threads_from_args();
    print!(
        "{}",
        banner(
            "X3",
            "committee of independently trained agents",
            "(extension) plurality voting across models; disagreement marks unreliable \
             answers"
        )
    );

    let start = std::time::Instant::now();
    let engine = Engine::new();
    let mut session = engine.spawn_session(SessionConfig::bob());
    let quiz = QuizBank::from_world(session.world());
    let questions: Vec<&str> = quiz.iter().map(|i| i.question.as_str()).collect();

    // Single-agent reference.
    session.agent.train();
    let single: Vec<(Option<String>, u8)> = questions
        .iter()
        .map(|q| {
            let _ = session.agent.self_learn(q);
            let a = session.agent.ask(q);
            (a.verdict, a.confidence)
        })
        .collect();

    let committee = Committee::new(RoleDefinition::bob(), CommitteeConfig::default());
    let members = committee.config().members;
    let per_member = sweep((0..members).collect(), threads, |_, m| {
        committee.evaluate_member(m, &questions)
    });
    let answers: Vec<_> = questions
        .iter()
        .enumerate()
        .map(|(qi, q)| aggregate(q, per_member.iter().map(|ms| ms[qi].clone()).collect()))
        .collect();

    let rows: Vec<Vec<String>> = quiz
        .iter()
        .zip(&answers)
        .zip(&single)
        .map(|((item, committee_ans), (single_verdict, single_conf))| {
            vec![
                item.id.clone(),
                single_verdict.clone().unwrap_or_else(|| "(hedge)".into()),
                single_conf.to_string(),
                committee_ans
                    .verdict
                    .clone()
                    .unwrap_or_else(|| "(hedge)".into()),
                format!("{:.2}", committee_ans.agreement),
                format!("{:.1}", committee_ans.mean_confidence),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "question",
                "single verdict",
                "conf",
                "committee verdict",
                "agree",
                "mean-conf"
            ],
            &rows
        )
    );

    let contested: Vec<&str> = quiz
        .iter()
        .zip(&answers)
        .filter(|(_, a)| a.agreement < 1.0)
        .map(|(item, _)| item.id.as_str())
        .collect();
    println!(
        "contested questions (agreement < 1.0): {}",
        if contested.is_empty() {
            "none".into()
        } else {
            contested.join(", ")
        }
    );
    print_timing(threads, start.elapsed(), engine.corpus_builds());
}
