//! X3 — multi-model committees (extension; §5 "Learning and
//! interacting with multiple LLMs").
//!
//! Several independently seeded agents — each with its own view of the
//! web — investigate the quiz; answers are aggregated by plurality
//! vote. Reported per question: the committee verdict, cross-member
//! agreement, and mean confidence, against the single-agent answer.
//! The interesting rows are the ones where members diverge: agreement
//! below 1.0 flags exactly the questions a single agent is least
//! reliable on.

use ira_core::{Committee, CommitteeConfig, Environment, ResearchAgent, RoleDefinition};
use ira_evalkit::quiz::QuizBank;
use ira_evalkit::report::{banner, table};

fn main() {
    print!(
        "{}",
        banner(
            "X3",
            "committee of independently trained agents",
            "(extension) plurality voting across models; disagreement marks unreliable \
             answers"
        )
    );

    let env = Environment::standard();
    let quiz = QuizBank::from_world(&env.world);
    let questions: Vec<&str> = quiz.iter().map(|i| i.question.as_str()).collect();

    // Single-agent reference.
    let mut bob = ResearchAgent::bob(&env);
    bob.train();
    let single: Vec<(Option<String>, u8)> = questions
        .iter()
        .map(|q| {
            let _ = bob.self_learn(q);
            let a = bob.ask(q);
            (a.verdict, a.confidence)
        })
        .collect();

    let committee = Committee::new(RoleDefinition::bob(), CommitteeConfig::default());
    let answers = committee.investigate(&questions);

    let rows: Vec<Vec<String>> = quiz
        .iter()
        .zip(&answers)
        .zip(&single)
        .map(|((item, committee_ans), (single_verdict, single_conf))| {
            vec![
                item.id.clone(),
                single_verdict.clone().unwrap_or_else(|| "(hedge)".into()),
                single_conf.to_string(),
                committee_ans.verdict.clone().unwrap_or_else(|| "(hedge)".into()),
                format!("{:.2}", committee_ans.agreement),
                format!("{:.1}", committee_ans.mean_confidence),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["question", "single verdict", "conf", "committee verdict", "agree", "mean-conf"],
            &rows
        )
    );

    let contested: Vec<&str> = quiz
        .iter()
        .zip(&answers)
        .filter(|(_, a)| a.agreement < 1.0)
        .map(|(item, _)| item.id.as_str())
        .collect();
    println!(
        "contested questions (agreement < 1.0): {}",
        if contested.is_empty() { "none".into() } else { contested.join(", ") }
    );
}
