//! X9 — the economics of Predictive Shutdown (extension; quantifies
//! §4.3's leading plan component).
//!
//! The agent's plan says "upon receiving information about a CME, start
//! with shutting down the systems that are most vulnerable". This
//! experiment asks *when that policy pays*: over a seeded series of 500
//! forecast CME events, sweep the shutdown trigger threshold and
//! account expected repeater losses against preemptive downtime.

use ira::evalkit::report::{banner, table};
use ira::prelude::*;
use ira::worldmodel::forecast::{evaluate_policy, CostModel, ForecastModel, ShutdownPolicy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    print!(
        "{}",
        banner(
            "X9",
            "predictive-shutdown trigger sweep",
            "(extension) acting on every warning wastes downtime; never acting eats the \
             tail risk; a tuned trigger minimises total cost"
        )
    );

    let world = World::standard();
    let costs = CostModel::default();
    let mut rng = ChaCha8Rng::seed_from_u64(0x501A);
    let events = ForecastModel::default().sample_series(500, &mut rng);

    let mut rows = Vec::new();
    let mut best: Option<(f64, f64)> = None;
    for trigger in [0.0, 200.0, 400.0, 600.0, 800.0, 1_000.0, 1_400.0, f64::MAX] {
        let outcome = evaluate_policy(
            ShutdownPolicy {
                trigger_dst: trigger,
            },
            &events,
            &world.cables,
            &world.storm_model,
            &costs,
        );
        let label = if trigger == f64::MAX {
            "never act".to_string()
        } else if trigger == 0.0 {
            "always act".to_string()
        } else {
            format!("{trigger:.0} nT")
        };
        rows.push(vec![
            label,
            outcome.shutdowns.to_string(),
            outcome.false_alarms.to_string(),
            outcome.missed_storms.to_string(),
            format!("{:.0}", outcome.repeaters_lost),
            format!("{:.0}", outcome.downtime_hours),
            format!("{:.0}", outcome.total_cost),
        ]);
        if best.is_none_or(|(_, c)| outcome.total_cost < c) {
            best = Some((trigger, outcome.total_cost));
        }
    }
    println!(
        "{}",
        table(
            &[
                "trigger",
                "shutdowns",
                "false-alarms",
                "missed",
                "repeaters-lost",
                "downtime-h",
                "total-cost"
            ],
            &rows
        )
    );
    if let Some((trigger, cost)) = best {
        println!(
            "minimum cost {cost:.0} at trigger {}; the agent plan's 'most vulnerable first' \
             instinct corresponds to running a mid-range trigger rather than either extreme.",
            if trigger == f64::MAX {
                "never".into()
            } else {
                format!("{trigger:.0} nT")
            }
        );
    }
}
