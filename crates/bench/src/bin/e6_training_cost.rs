//! E6 — §4.2 "Bob learns above topics in the order of minutes".
//!
//! Paper claim: the agent acquires in minutes what takes human
//! researchers much longer, and the cost scales gracefully. We scale
//! the distractor load of the web corpus (1× to 8×) and report, per
//! corpus size, training effort: searches, pages fetched, entries
//! memorised, LLM tokens, and both virtual ("online") and host wall
//! time. Each corpus size is an independent session; `--threads N`
//! runs them on worker threads without changing the report.

use ira::evalkit::report::{banner, table};
use ira::prelude::*;
use ira_bench::{print_timing, threads_from_args};

fn main() {
    let threads = threads_from_args();
    print!(
        "{}",
        banner(
            "E6",
            "training cost vs corpus size",
            "agent learns the topic in the order of (virtual) minutes; cost scales mildly \
             with corpus size"
        )
    );

    let start = std::time::Instant::now();
    let engine = Engine::new();
    let rows = sweep(
        vec![75usize, 150, 300, 600, 1200],
        threads,
        |_, distractors| {
            let mut session = engine.spawn_session(SessionConfig {
                corpus: CorpusConfig {
                    seed: 0xC0FFEE,
                    distractor_count: distractors,
                    ..CorpusConfig::default()
                },
                ..SessionConfig::bob()
            });
            let report = session.agent.train();
            // The paper's "learns … in the order of minutes" covers the
            // whole investigation, so include the quiz self-learning too.
            let quiz = QuizBank::from_world(session.world());
            let investigate_start = session.now_us();
            for item in quiz.iter() {
                let _ = session.agent.self_learn(&item.question);
            }
            let investigate_us = session.now_us() - investigate_start;
            let llm = session.agent.llm_stats();
            vec![
                session.env.corpus.len().to_string(),
                report.total_searches().to_string(),
                report.total_fetches().to_string(),
                report.total_memorized().to_string(),
                (llm.prompt_tokens + llm.completion_tokens).to_string(),
                format!("{:.1}", report.virtual_elapsed_us as f64 / 1e6),
                format!(
                    "{:.1}",
                    (report.virtual_elapsed_us + investigate_us) as f64 / 1e6 / 60.0
                ),
                format!("{:.0}", report.host_elapsed_us as f64 / 1e3),
            ]
        },
    );
    println!(
        "{}",
        table(
            &[
                "corpus-docs",
                "searches",
                "fetches",
                "memorized",
                "llm-tokens",
                "train-virt-s",
                "total-virt-min",
                "host-ms"
            ],
            &rows
        )
    );
    println!(
        "total-virt-min is the full investigation (training + 8-question quiz with \
         self-learning) as the agent would experience it against a real network and model \
         API: the paper's \"order of minutes\", not the weeks of a human literature survey."
    );
    print_timing(threads, start.elapsed(), engine.corpus_builds());
}
