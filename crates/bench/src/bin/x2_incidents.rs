//! X2 — generality beyond solar storms (extension; §2's motivation).
//!
//! The paper's vision is an agent that can "investigate all types of
//! Internet disruption" — it motivates configuration errors (the 2021
//! Facebook BGP/DNS outage), natural disasters (the 2004 Indian Ocean
//! tsunami), and black-swan events (COVID-19). This experiment trains
//! Alice, the outage analyst, with her own role definition and runs her
//! against the incident quiz derived from the incident catalog —
//! demonstrating that nothing in the architecture is storm-specific.

use ira::evalkit::report::{banner, table};
use ira::prelude::*;
use ira::simllm::Llm;

fn main() {
    print!(
        "{}",
        banner(
            "X2",
            "incident investigation beyond solar storms",
            "(extension) the same architecture investigates the §2 incident classes: config \
             errors, natural disasters, black swans"
        )
    );

    // The canonical environment, assembled through the scenario API:
    // the solar-superstorm spec reproduces the legacy corpus
    // byte-for-byte (pinned by webcorpus tests), so Alice's run here is
    // unchanged from the Environment::standard() era.
    let env = Environment::for_scenario(&ScenarioSpec::solar_superstorm(), 0xBEEF, None)
        .expect("canonical scenario is registered");
    let quiz = QuizBank::incidents(&env.world.incidents);
    let conclusions = env.world.conclusions();

    let mut alice = ResearchAgent::new(
        RoleDefinition::outage_analyst(),
        &env,
        AgentConfig::default(),
        0xA11CE,
    );
    let training = alice.train();
    println!(
        "Alice trained: {} searches, {} fetches, {} entries\n",
        training.total_searches(),
        training.total_fetches(),
        training.memory_entries
    );

    let run = evaluate_agent(&mut alice, &quiz, &conclusions);
    let rows: Vec<Vec<String>> = run
        .consistency
        .per_item
        .iter()
        .map(|r| {
            vec![
                r.id.clone(),
                r.verdict.clone().unwrap_or_else(|| "(hedge)".into()),
                r.confidence.to_string(),
                if r.matched.consistent { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["incident", "Alice's verdict", "conf", "consistent"],
            &rows
        )
    );
    println!("{}", run.consistency.summary());

    let baseline = evaluate_baseline(&Llm::gpt4(404), &quiz);
    println!("{}", baseline.summary());

    println!("\ntrajectories (confidence series per incident):");
    for (item, t) in quiz.iter().zip(&run.trajectories) {
        let series: Vec<String> = t.confidence_series().iter().map(u8::to_string).collect();
        println!("  {:<26} {}", item.id, series.join(" -> "));
    }
}
