//! Trace-profile regression gate over the E5 workload.
//!
//! Re-runs the E5 confidence-threshold sweep (thresholds 3/5/7/9) with
//! the trace collector attached, folds the recorded trace into an
//! [`ira_obs::Profile`], and merges in the run-level
//! `lexicon`/`opstats` virtual-op counters. Every number in the profile
//! is virtual — span ids, virtual-clock durations, op counts — so the
//! profile JSON is byte-identical across runs *and thread counts*, and
//! CI can diff it against a checked-in baseline with **zero**
//! tolerance: any drift in where the agent spends virtual time is a
//! hard failure, speedups included (a speedup you didn't make is a
//! behaviour change you didn't intend).
//!
//! Usage:
//!
//! ```text
//!   trace_profile_gate                      run, write results/PROFILE_e5_baseline.json
//!   trace_profile_gate --write <path>       run, write the profile JSON to <path>
//!   trace_profile_gate --check <baseline>   run, diff against <baseline> at zero
//!                                           tolerance, exit 1 naming drifted keys
//!   trace_profile_gate --threads N          fan the sweep out (profile must not change)
//!   trace_profile_gate --trace-out <path>   also write the raw JSONL trace
//! ```
//!
//! `--write` and `--check` compose: write the fresh profile first, then
//! gate. Stdout is the deterministic summary; timing goes to stderr.

use ira::evalkit::report::{banner, table};
use ira::obs::diff::{diff_flat, flatten_profile};
use ira::obs::{fold_trace, Profile, Tolerances};
use ira::prelude::*;
use ira::simllm::lexicon::ops;
use ira::webcorpus::index::opstats;
use ira_bench::{print_timing, threads_from_args};
use std::sync::Arc;

/// Run the E5 sweep traced and fold the trace. Returns the profile and
/// the sweep's quality rows (sanity: instrumentation must not change
/// verdict quality).
fn run_profiled(threads: usize) -> (Profile, Vec<Vec<String>>) {
    ops::reset();
    opstats::reset();

    let engine = Engine::new();
    let sink = Arc::new(JsonlCollector::new());
    let rows = sweep(vec![3u8, 5, 7, 9], threads, |i, threshold| {
        let config = AgentConfig {
            confidence_threshold: threshold,
            ..AgentConfig::default()
        };
        let mut session = engine.spawn_session_observed(
            SessionConfig {
                agent: config,
                ..SessionConfig::bob()
            },
            Arc::clone(&sink) as SharedCollector,
            i as u32,
        );
        let quiz = QuizBank::from_world(session.world());
        let conclusions = session.world().conclusions();
        session.agent.train();
        let run = evaluate_agent(&mut session.agent, &quiz, &conclusions);
        vec![
            threshold.to_string(),
            run.total_learning_rounds().to_string(),
            format!(
                "{}/{}",
                run.consistency.consistent_count(),
                run.consistency.total()
            ),
        ]
    });

    let events = sink.events();
    let mut profile = fold_trace(&events);
    // The lexicon/opstats counters are process-global sums of
    // commutative atomic adds over an identical total workload, so the
    // totals are thread-count invariant and safe to pin at zero
    // tolerance alongside the trace-derived numbers.
    let llm = ops::snapshot();
    let lookups = opstats::snapshot();
    profile.merge_run_ops([
        ("lexicon.tokenize_chars".to_string(), llm.tokenize_chars),
        ("lexicon.absorb_calls".to_string(), llm.absorb_calls),
        ("lexicon.classify_calls".to_string(), llm.classify_calls),
        ("lexicon.extract_hits".to_string(), llm.extract_hits),
        ("lexicon.extract_misses".to_string(), llm.extract_misses),
        ("lexicon.answer_hits".to_string(), llm.answer_hits),
        ("lexicon.answer_misses".to_string(), llm.answer_misses),
        ("index.lookup_calls".to_string(), lookups.lookup_calls),
        ("index.docs_scanned".to_string(), lookups.docs_scanned),
    ]);

    if let Some(path) = flag_value("--trace-out") {
        sink.write_to(std::path::Path::new(&path))
            .unwrap_or_else(|e| panic!("cannot write trace {path}: {e}"));
        eprintln!("[trace] wrote {path}");
    }
    (profile, rows)
}

fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let threads = threads_from_args();
    let write_path = flag_value("--write");
    let check_path = flag_value("--check");

    print!(
        "{}",
        banner(
            "GATE",
            "trace-profile regression gate (E5 workload)",
            "virtual-time profiles are exactly reproducible, so perf regressions are \
             caught by equality, not statistics"
        )
    );

    let start = std::time::Instant::now();
    let (profile, rows) = run_profiled(threads);

    println!(
        "{}",
        table(&["threshold", "learn-rounds", "consistent"], &rows)
    );
    println!(
        "profiled {} events across {} sessions\n",
        profile.events,
        profile.sessions.len()
    );
    println!("hotspots:");
    for (key, agg) in profile.hotspots(8) {
        println!(
            "  {key:<28} count {:>6}  incl {:>10} µs  excl {:>10} µs",
            agg.count, agg.inclusive_us, agg.exclusive_us
        );
    }
    for sp in &profile.sessions {
        let path: Vec<&str> = sp.critical_path.iter().map(|s| s.key.as_str()).collect();
        println!(
            "session {} critical path: {}",
            sp.session,
            path.join(" -> ")
        );
    }

    let json = serde_json::to_string_pretty(&profile).expect("serialize profile");
    let out = write_path.unwrap_or_else(|| {
        if check_path.is_some() {
            String::new()
        } else {
            "results/PROFILE_e5_baseline.json".to_string()
        }
    });
    if !out.is_empty() {
        std::fs::write(&out, json.clone() + "\n")
            .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("\nwrote {out}");
    }

    print_timing(threads, start.elapsed(), 1);

    if let Some(path) = check_path {
        let baseline: Profile = serde_json::from_str(
            &std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}")),
        )
        .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let report = diff_flat(
            &flatten_profile(&baseline),
            &flatten_profile(&profile),
            &Tolerances::zero(),
        );
        print!("\ncheck vs {path} (zero tolerance):\n{}", report.render());
        if !report.is_clean() {
            std::process::exit(1);
        }
    }
}
