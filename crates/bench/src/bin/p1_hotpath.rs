//! P1 — hot-path perf baseline: before/after the retrieval & grounding
//! overhaul.
//!
//! Runs the same train + quiz-sweep workload twice:
//!
//! * **before** — the legacy hot path: corpus host+path lookups served
//!   by the O(N) linear scan, the model re-extracting and re-reasoning
//!   on every call (`grounding_cache: false`);
//! * **after** — the indexed `(host, path)` map plus the per-chunk
//!   extraction cache and grounded-answer cache (the defaults).
//!
//! Both phases must produce byte-identical answers (confidence and
//! text per quiz item) — the binary asserts it. What differs is *work*:
//! deterministic virtual-op counts (characters normalized, absorb
//! passes, documents scanned) and host wall time. The op counts are
//! exactly reproducible, so `--check <baseline.json>` enforces them
//! with strict equality in CI — a perf gate that cannot flake.
//!
//! Usage:
//!   p1_hotpath                 full sweep, writes results/BENCH_hotpath.json
//!   p1_hotpath --smoke         reduced sweep, writes results/BENCH_hotpath_smoke.json
//!   p1_hotpath --smoke --check results/BENCH_hotpath_smoke.json
//!                              re-run and fail unless op counts match the
//!                              checked-in baseline exactly
//!
//! Stdout is the deterministic report; wall-clock timing goes to
//! stderr, matching the other sweep binaries.

use ira::evalkit::report::{banner, table};
use ira::prelude::*;
use ira::services::WebServices;
use ira::simllm::lexicon::ops;
use ira::simllm::{Llm, LlmConfig};
use ira::webcorpus::index::opstats;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Deterministic work counters for one phase. Everything in here must
/// be byte-reproducible run to run — the CI check is `==`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PhaseOps {
    llm: ops::OpSnapshot,
    lookups: opstats::LookupSnapshot,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PhaseReport {
    ops: PhaseOps,
    /// Informational only — never part of the `--check` comparison.
    wall_ms: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    bench: String,
    mode: String,
    quiz_items: usize,
    answer_passes: usize,
    before: PhaseReport,
    after: PhaseReport,
    /// before/after ratios for the headline counters.
    reduction: Reduction,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Reduction {
    tokenize_chars: f64,
    absorb_calls: f64,
    docs_scanned: f64,
}

struct PhaseOutput {
    report: PhaseReport,
    quiz_items: usize,
    /// (quiz id, confidence, answer text) — the identity check.
    answers: Vec<(String, u8, String)>,
}

/// One full workload: build the environment, train Bob, self-learn
/// every quiz question, then `passes` answer-only sweeps.
fn run_phase(legacy: bool, quiz_take: usize, passes: usize) -> PhaseOutput {
    ops::reset();
    opstats::reset();
    let start = std::time::Instant::now();

    let env = Environment::standard();
    if legacy {
        env.corpus.set_scan_lookups(true);
    }
    let web: Arc<dyn WebServices> = Arc::new(env.client.clone());
    let llm = Arc::new(Llm::new(LlmConfig {
        seed: 0xB0B,
        grounding_cache: !legacy,
        ..LlmConfig::default()
    }));
    let mut bob =
        ResearchAgent::from_services(RoleDefinition::bob(), web, llm, AgentConfig::default());
    bob.train();

    let quiz = QuizBank::from_world(&env.world);
    let items: Vec<_> = quiz.iter().take(quiz_take).collect();
    for item in &items {
        let _ = bob.self_learn(&item.question);
    }
    let mut answers = Vec::new();
    for _ in 0..passes {
        for item in &items {
            let a = bob.ask(&item.question);
            answers.push((item.id.clone(), a.confidence, a.text));
        }
    }

    PhaseOutput {
        report: PhaseReport {
            ops: PhaseOps {
                llm: ops::snapshot(),
                lookups: opstats::snapshot(),
            },
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        },
        quiz_items: items.len(),
        answers,
    }
}

fn ratio(before: u64, after: u64) -> f64 {
    if after == 0 {
        f64::INFINITY
    } else {
        before as f64 / after as f64
    }
}

fn op_rows(label: &str, p: &PhaseOps) -> Vec<String> {
    vec![
        label.to_string(),
        p.llm.tokenize_chars.to_string(),
        p.llm.absorb_calls.to_string(),
        p.llm.classify_calls.to_string(),
        format!("{}/{}", p.llm.extract_hits, p.llm.extract_misses),
        format!("{}/{}", p.llm.answer_hits, p.llm.answer_misses),
        p.lookups.lookup_calls.to_string(),
        p.lookups.docs_scanned.to_string(),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (mode, quiz_take, passes) = if smoke {
        ("smoke", 4, 2)
    } else {
        ("full", usize::MAX, 2)
    };

    print!(
        "{}",
        banner(
            "P1",
            "retrieval & grounding hot-path baseline",
            "long-horizon agents live or die by retrieval throughput; the retrieve-and-ground \
             loop dominates iterative research agents"
        )
    );
    println!("mode: {mode}\n");

    let before = run_phase(true, quiz_take, passes);
    let after = run_phase(false, quiz_take, passes);

    assert_eq!(
        before.answers, after.answers,
        "hot-path rework changed observable outputs"
    );
    println!(
        "outputs byte-identical across phases: yes ({} answers compared)\n",
        after.answers.len()
    );

    println!(
        "{}",
        table(
            &[
                "phase",
                "tokenize-chars",
                "absorbs",
                "classifies",
                "extract h/m",
                "answer h/m",
                "lookups",
                "docs-scanned",
            ],
            &[
                op_rows("before (scan + no cache)", &before.report.ops),
                op_rows("after (index + caches)", &after.report.ops),
            ],
        )
    );

    let reduction = Reduction {
        tokenize_chars: ratio(
            before.report.ops.llm.tokenize_chars,
            after.report.ops.llm.tokenize_chars,
        ),
        absorb_calls: ratio(
            before.report.ops.llm.absorb_calls,
            after.report.ops.llm.absorb_calls,
        ),
        docs_scanned: ratio(
            before.report.ops.lookups.docs_scanned,
            after.report.ops.lookups.docs_scanned,
        ),
    };
    println!(
        "reduction: {:.1}x tokenize-chars, {:.1}x absorb passes, {:.1}x docs scanned",
        reduction.tokenize_chars, reduction.absorb_calls, reduction.docs_scanned
    );

    eprintln!(
        "[timing] before={:.0}ms after={:.0}ms",
        before.report.wall_ms, after.report.wall_ms
    );

    let report = Report {
        bench: "p1_hotpath".to_string(),
        mode: mode.to_string(),
        quiz_items: after.quiz_items,
        answer_passes: passes,
        before: before.report,
        after: after.report,
        reduction,
    };

    if let Some(path) = check_path {
        let baseline: Report = serde_json::from_str(
            &std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}")),
        )
        .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let mut bad = Vec::new();
        if baseline.mode != report.mode {
            bad.push(format!(
                "mode: baseline {} vs run {}",
                baseline.mode, report.mode
            ));
        }
        if baseline.quiz_items != report.quiz_items
            || baseline.answer_passes != report.answer_passes
        {
            bad.push("workload shape differs from baseline".to_string());
        }
        if baseline.before.ops != report.before.ops {
            bad.push(format!(
                "BEFORE ops drifted:\n  baseline: {:?}\n  run:      {:?}",
                baseline.before.ops, report.before.ops
            ));
        }
        if baseline.after.ops != report.after.ops {
            bad.push(format!(
                "AFTER ops drifted:\n  baseline: {:?}\n  run:      {:?}",
                baseline.after.ops, report.after.ops
            ));
        }
        if bad.is_empty() {
            println!("\ncheck vs {path}: op counts match the baseline exactly");
        } else {
            eprintln!("op-count check vs {path} FAILED:");
            for b in &bad {
                eprintln!("  {b}");
            }
            std::process::exit(1);
        }
    } else {
        let out = if smoke {
            "results/BENCH_hotpath_smoke.json"
        } else {
            "results/BENCH_hotpath.json"
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(out, json + "\n").unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("\nwrote {out}");
    }
}
