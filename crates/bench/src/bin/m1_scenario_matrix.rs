//! M1 — the scenario matrix: every registered incident scenario,
//! across tenant seeds and fault intensities, through the parallel
//! sweep runner.
//!
//! Each cell spawns a session whose corpus and quiz both follow one
//! [`ScenarioSpec`]: the scenario derives its ground-truth conclusions
//! from the world model and injects its own event documents into the
//! corpus, so the agent is graded against answers the simulation
//! actually produces. The canonical `solar-superstorm` cell at seed 0
//! reproduces the legacy paper run byte-for-byte (the corpus identity
//! is pinned by webcorpus tests; this binary pins the scores).
//!
//! Every cell is deterministic, so the whole report is a strict
//! equality baseline: `--check` re-runs the matrix and fails on any
//! drifted cell. `--threads N` fans cells out without changing a byte
//! of stdout (timing goes to stderr).
//!
//! Independently of the baseline comparison, every cell must clear the
//! per-scenario regression floor — nonzero consistent answers, learning
//! rounds, and searches — so the pre-ISSUE-9 failure mode (scenario
//! questions falling through to a no-learning path) can never silently
//! return behind a regenerated baseline.
//!
//! Usage:
//!   m1_scenario_matrix                 full matrix, writes results/BENCH_scenarios.json
//!   m1_scenario_matrix --smoke         one cell per scenario, writes
//!                                      results/BENCH_scenarios_smoke.json
//!   m1_scenario_matrix --smoke --check results/BENCH_scenarios_smoke.json
//!                                      re-run and fail unless every cell matches
//!                                      the checked-in baseline exactly

use ira::evalkit::report::{banner, table};
use ira::prelude::*;
use ira_bench::{print_timing, threads_from_args};
use serde::{Deserialize, Serialize};

/// Stride between tenant seeds on the network stream, mirroring the
/// serve layer's per-tenant perturbation scheme.
const NET_SEED_BASE: u64 = 0xBEEF;
const LLM_SEED_BASE: u64 = 0xB0B;
/// Fault-plan seed shared with X13 and the CLI's `--faults`.
const FAULT_SEED: u64 = 0xC4A0;

/// One (scenario, seed, faults) cell of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Cell {
    scenario: String,
    seed: u64,
    faults: f64,
    quiz_items: usize,
    consistent: usize,
    mean_confidence: f64,
    learning_rounds: u32,
    searches: usize,
    memory_entries: usize,
    provenance_clean: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    bench: String,
    mode: String,
    scenarios: Vec<String>,
    cells: Vec<Cell>,
}

fn run_cell(engine: &Engine, scenario: &str, seed: u64, faults: f64) -> Cell {
    let spec = ScenarioSpec::named(scenario);
    let mut config = SessionConfig::for_scenario(&spec).expect("registered scenario");
    config.net_seed = NET_SEED_BASE.wrapping_add(seed);
    config.llm_seed = LLM_SEED_BASE.wrapping_add(seed);
    config.faults = (faults > 0.0).then(|| FaultSpec {
        intensity: faults,
        horizon: Duration::from_secs(60),
        seed: FAULT_SEED.wrapping_add(seed),
    });
    let mut session = engine.spawn_session(config);
    session.agent.train();
    let scenario_impl = ira::worldmodel::scenario::lookup(scenario).expect("registered scenario");
    let world = session.env.world.clone();
    let run = evaluate_scenario(&mut session.agent, scenario_impl.as_ref(), &world);
    Cell {
        scenario: scenario.to_string(),
        seed,
        faults,
        quiz_items: run.consistency.total(),
        consistent: run.consistency.consistent_count(),
        mean_confidence: run.consistency.mean_confidence(),
        learning_rounds: run.total_learning_rounds(),
        searches: run.total_searches(),
        memory_entries: session.agent.memory().entries().len(),
        provenance_clean: run.provenance.clean(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = threads_from_args();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let scenarios: Vec<&'static str> = ScenarioRegistry::standard().names();
    let (mode, seeds, fault_levels): (&str, Vec<u64>, Vec<f64>) = if smoke {
        ("smoke", vec![0], vec![0.0])
    } else {
        ("full", vec![0, 1, 2], vec![0.0, 0.25])
    };

    print!(
        "{}",
        banner(
            "M1",
            "scenario matrix",
            "each scenario generates its own corpus and ground truth; the agent is graded \
             against answers the world model actually produces, per seed and fault level"
        )
    );
    println!("mode: {mode}\n");

    let mut grid: Vec<(&'static str, u64, f64)> = Vec::new();
    for scenario in &scenarios {
        for &seed in &seeds {
            for &faults in &fault_levels {
                grid.push((scenario, seed, faults));
            }
        }
    }

    let start = std::time::Instant::now();
    let engine = Engine::new();
    let cells: Vec<Cell> = sweep(grid, threads, |_, (scenario, seed, faults)| {
        run_cell(&engine, scenario, seed, faults)
    });

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.scenario.clone(),
                c.seed.to_string(),
                format!("{:.2}", c.faults),
                format!("{}/{}", c.consistent, c.quiz_items),
                format!("{:.1}", c.mean_confidence),
                c.learning_rounds.to_string(),
                c.searches.to_string(),
                c.memory_entries.to_string(),
                if c.provenance_clean { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "scenario",
                "seed",
                "faults",
                "consistent",
                "mean-conf",
                "learn-rounds",
                "searches",
                "memory",
                "prov-clean",
            ],
            &rows
        )
    );
    print_timing(threads, start.elapsed(), engine.corpus_builds());

    // Per-scenario regression floor (ISSUE 9): before the sim-LLM
    // learned scenario-class rules, three of four scenarios scored
    // 0/N consistent with zero learning rounds and zero searches. Any
    // cell regressing to that no-learning state fails the gate outright
    // — even before the strict-equality baseline comparison — so the
    // defect can't silently return behind a regenerated baseline.
    let mut floor_violations = Vec::new();
    for c in &cells {
        if c.consistent == 0 || c.learning_rounds == 0 || c.searches == 0 {
            floor_violations.push(format!(
                "{} seed {} faults {:.2}: consistent {}/{}, rounds {}, searches {}",
                c.scenario,
                c.seed,
                c.faults,
                c.consistent,
                c.quiz_items,
                c.learning_rounds,
                c.searches
            ));
        }
    }
    if !floor_violations.is_empty() {
        eprintln!("per-scenario floor FAILED (consistent, rounds, and searches must be nonzero):");
        for v in &floor_violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }

    let report = Report {
        bench: "m1_scenario_matrix".to_string(),
        mode: mode.to_string(),
        scenarios: scenarios.iter().map(|s| s.to_string()).collect(),
        cells,
    };

    if let Some(path) = check_path {
        let baseline: Report = serde_json::from_str(
            &std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}")),
        )
        .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
        let mut bad = Vec::new();
        if baseline.mode != report.mode {
            bad.push(format!(
                "mode: baseline {} vs run {}",
                baseline.mode, report.mode
            ));
        }
        if baseline.scenarios != report.scenarios {
            bad.push(format!(
                "scenario registry drifted: baseline {:?} vs run {:?}",
                baseline.scenarios, report.scenarios
            ));
        }
        if baseline.cells.len() != report.cells.len() {
            bad.push(format!(
                "cell count: baseline {} vs run {}",
                baseline.cells.len(),
                report.cells.len()
            ));
        } else {
            for (b, r) in baseline.cells.iter().zip(&report.cells) {
                if b != r {
                    bad.push(format!(
                        "cell drifted:\n  baseline: {b:?}\n  run:      {r:?}"
                    ));
                }
            }
        }
        if bad.is_empty() {
            println!("check vs {path}: every cell matches the baseline exactly");
        } else {
            eprintln!("scenario-matrix check vs {path} FAILED:");
            for b in &bad {
                eprintln!("  {b}");
            }
            std::process::exit(1);
        }
    } else {
        let out = if smoke {
            "results/BENCH_scenarios_smoke.json"
        } else {
            "results/BENCH_scenarios.json"
        };
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(out, json + "\n").unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("wrote {out}");
    }
}
