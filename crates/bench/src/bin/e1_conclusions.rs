//! E1 — §4.2 "Research Ability": conclusion consistency.
//!
//! Paper claim: agent Bob "reached a high level of consistency in 7 out
//! of 8 conclusions" of the SIGCOMM '21 solar-superstorm study, while
//! the raw model answers vaguely. This binary trains Bob, runs the full
//! quiz with self-learning, scores both Bob and the ungrounded
//! baseline, and prints the per-conclusion table plus the provenance
//! audit (§4.2's "verify the sources of the knowledge").

use ira::evalkit::report::{banner, table};
use ira::prelude::*;

fn main() {
    print!(
        "{}",
        banner(
            "E1",
            "conclusion consistency, agent vs ungrounded baseline",
            "agent consistent on 7 of 8 conclusions; raw LLM hedges"
        )
    );

    let env = Environment::standard();
    let (agent_run, baseline) = full_paper_run(&env);

    let rows: Vec<Vec<String>> = agent_run
        .consistency
        .per_item
        .iter()
        .map(|r| {
            vec![
                r.id.clone(),
                r.verdict.clone().unwrap_or_else(|| "(hedge)".into()),
                r.confidence.to_string(),
                if r.matched.consistent { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["conclusion", "agent verdict", "conf", "consistent"],
            &rows
        )
    );

    println!("{}", agent_run.consistency.summary());
    println!("{}", baseline.summary());
    println!(
        "baseline mean confidence {:.1} vs agent {:.1}",
        baseline.mean_confidence(),
        agent_run.consistency.mean_confidence()
    );
    println!(
        "self-learning: {} rounds, {} searches across the quiz",
        agent_run.total_learning_rounds(),
        agent_run.total_searches()
    );

    let p = &agent_run.provenance;
    println!(
        "\nprovenance audit: {} entries from {} distinct sources, {} answer-key leaks -> {}",
        p.entries,
        p.distinct_sources,
        p.answer_key_leaks,
        if p.clean() { "CLEAN" } else { "DIRTY" }
    );
    println!("sources by kind:");
    for (kind, count) in &p.source_histogram {
        println!("  {kind:>12}: {count}");
    }
}
