//! X4 — research-question generation (extension; §5 "Generating
//! high-quality research questions").
//!
//! A trained agent mines its own knowledge memory for entities and
//! proposes the questions its reasoning can express; each candidate is
//! appraised against the agent itself. High-novelty questions (the
//! agent has studied the area but cannot answer confidently) are the
//! research opportunities §5 envisions surfacing automatically.

use ira::core::questions;
use ira::evalkit::report::{banner, table};
use ira::prelude::*;

fn main() {
    print!(
        "{}",
        banner(
            "X4",
            "research-question generation and novelty appraisal",
            "(extension) the agent poses questions its corpus reading does not settle"
        )
    );

    let env = Environment::standard();
    let mut bob = ResearchAgent::bob(&env);
    bob.train();
    // Settle a couple of questions first so the appraisal has contrast
    // between "already studied" and "open".
    for q in [
        "Which is more vulnerable to solar activity? The fiber optic cable that connects \
         Brazil to Europe or the one that connects the US to Europe?",
        "Whose datacenter is more vulnerable to a solar superstorm, Google's or Facebook's?",
    ] {
        let _ = bob.self_learn(q);
    }

    let generated = questions::generate(&mut bob, 40);
    let rows: Vec<Vec<String>> = generated
        .iter()
        .map(|q| {
            vec![
                q.novelty.to_string(),
                q.confidence.to_string(),
                q.question.chars().take(100).collect(),
            ]
        })
        .collect();
    println!("{}", table(&["novelty", "conf", "question"], &rows));

    let open = generated.iter().filter(|q| q.novelty >= 5).count();
    let settled = generated.len() - open;
    println!(
        "{} candidate questions: {open} open research directions, {settled} already settled \
         by the agent's reading.",
        generated.len()
    );
}
