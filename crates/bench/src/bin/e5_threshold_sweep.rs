//! E5 — §3 step 4 knob: the confidence threshold.
//!
//! Paper claim: "increasing confidence can result in a longer iterative
//! self-learning process, but can produce higher-quality answers." We
//! sweep the threshold from 3 to 9 and report, per setting, the
//! self-learning effort (rounds, searches, pages memorised) and the
//! answer quality (quiz consistency, mean confidence).

use ira_core::{AgentConfig, Environment, ResearchAgent, RoleDefinition};
use ira_evalkit::quiz::QuizBank;
use ira_evalkit::report::{banner, table};
use ira_evalkit::runner::evaluate_agent;

fn main() {
    print!(
        "{}",
        banner(
            "E5",
            "confidence-threshold sweep",
            "higher threshold -> more self-learning effort, higher answer quality"
        )
    );

    let mut rows = Vec::new();
    for threshold in [3u8, 5, 7, 9] {
        let env = Environment::standard();
        let quiz = QuizBank::from_world(&env.world);
        let conclusions = env.world.conclusions();
        let config = AgentConfig { confidence_threshold: threshold, ..AgentConfig::default() };
        let mut bob = ResearchAgent::new(RoleDefinition::bob(), &env, config, 0xB0B);
        bob.train();
        let run = evaluate_agent(&mut bob, &quiz, &conclusions);
        rows.push(vec![
            threshold.to_string(),
            run.total_learning_rounds().to_string(),
            run.total_searches().to_string(),
            format!("{}/{}", run.consistency.consistent_count(), run.consistency.total()),
            format!("{:.1}", run.consistency.mean_confidence()),
        ]);
    }
    println!(
        "{}",
        table(
            &["threshold", "learn-rounds", "searches", "consistent", "mean-conf"],
            &rows
        )
    );
    println!(
        "expected shape: rounds and searches grow with the threshold, and consistency/mean \
         confidence rise toward the paper's 7-of-8 at threshold 7."
    );
}
