//! E5 — §3 step 4 knob: the confidence threshold.
//!
//! Paper claim: "increasing confidence can result in a longer iterative
//! self-learning process, but can produce higher-quality answers." We
//! sweep the threshold from 3 to 9 and report, per setting, the
//! self-learning effort (rounds, searches, pages memorised) and the
//! answer quality (quiz consistency, mean confidence).
//!
//! Sessions are spawned from one shared [`Engine`] — the corpus is
//! generated once, not per threshold — and `--threads N` fans the
//! sweep out without changing a byte of the report (timing on stderr).

use ira::evalkit::report::{banner, table};
use ira::prelude::*;
use ira_bench::{print_timing, threads_from_args};

fn main() {
    let threads = threads_from_args();
    print!(
        "{}",
        banner(
            "E5",
            "confidence-threshold sweep",
            "higher threshold -> more self-learning effort, higher answer quality"
        )
    );

    let start = std::time::Instant::now();
    let engine = Engine::new();
    let rows = sweep(vec![3u8, 5, 7, 9], threads, |_, threshold| {
        let config = AgentConfig {
            confidence_threshold: threshold,
            ..AgentConfig::default()
        };
        let mut session = engine.spawn_session(SessionConfig {
            agent: config,
            ..SessionConfig::bob()
        });
        let quiz = QuizBank::from_world(session.world());
        let conclusions = session.world().conclusions();
        session.agent.train();
        let run = evaluate_agent(&mut session.agent, &quiz, &conclusions);
        vec![
            threshold.to_string(),
            run.total_learning_rounds().to_string(),
            run.total_searches().to_string(),
            format!(
                "{}/{}",
                run.consistency.consistent_count(),
                run.consistency.total()
            ),
            format!("{:.1}", run.consistency.mean_confidence()),
        ]
    });
    println!(
        "{}",
        table(
            &[
                "threshold",
                "learn-rounds",
                "searches",
                "consistent",
                "mean-conf"
            ],
            &rows
        )
    );
    println!(
        "expected shape: rounds and searches grow with the threshold, and consistency/mean \
         confidence rise toward the paper's 7-of-8 at threshold 7."
    );
    print_timing(threads, start.elapsed(), engine.corpus_builds());
}
