//! E3 — §4.2 conclusion 2: the data-center comparison trajectory.
//!
//! Paper claim: confidence 3/10 pre-learning, ~6/10 after one round of
//! self-learning about data-center locations; verdict becomes "Google's
//! data centers are more globally dispersed … Facebook more
//! vulnerable".

use ira::evalkit::report::banner;
use ira::evalkit::trajectory::{render_csv, render_table};
use ira::prelude::*;

const QUESTION: &str = "Whose datacenter is more vulnerable to a solar superstorm, Google's \
                        or Facebook's?";

fn main() {
    print!(
        "{}",
        banner(
            "E3",
            "data-center question confidence trajectory",
            "confidence 3 pre-learning -> ~6 after one round; Facebook judged more vulnerable"
        )
    );

    let env = Environment::standard();
    let mut bob = ResearchAgent::bob(&env);
    bob.train();

    let trajectory = bob.self_learn(QUESTION);
    println!("{}", render_table(&trajectory));

    let last = trajectory.rounds.last().expect("at least round 0");
    println!("final answer:\n{}\n", last.answer_text);
    println!("csv:\n{}", render_csv(&trajectory));
}
