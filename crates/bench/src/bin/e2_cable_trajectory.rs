//! E2 — §4.2 conclusion 1: the cable-vulnerability confidence
//! trajectory.
//!
//! Paper claim: Bob rates his confidence 3/10 before self-learning
//! (general knowledge only, no specific cable routes) and 8–9/10 after
//! one round, flipping from a hedge to "the US–Europe cable, because
//! higher latitudes".

use ira::evalkit::report::banner;
use ira::evalkit::trajectory::{render_csv, render_table};
use ira::prelude::*;

const QUESTION: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
                        that connects Brazil to Europe or the one that connects the US to \
                        Europe?";

fn main() {
    print!(
        "{}",
        banner(
            "E2",
            "cable question confidence trajectory",
            "confidence 3 before self-learning -> 8-9 after one round; verdict flips to the \
             US-Europe cable"
        )
    );

    let env = Environment::standard();
    let mut bob = ResearchAgent::bob(&env);
    let training = bob.train();
    println!(
        "trained on {} goals: {} searches, {} pages, {} memorized\n",
        training.per_goal.len(),
        training.total_searches(),
        training.total_fetches(),
        training.total_memorized()
    );

    let trajectory = bob.self_learn(QUESTION);
    println!("{}", render_table(&trajectory));

    let last = trajectory.rounds.last().expect("at least round 0");
    println!("final answer:\n{}\n", last.answer_text);
    println!("csv:\n{}", render_csv(&trajectory));
}
