//! X5 — knowledge-memory poisoning: quantitative detection sweep
//! (extension; §5 "Security and ethical considerations").
//!
//! The adversary injects entries inflating the Brazil–Europe cables'
//! maximum geomagnetic latitude, trying to flip the flagship verdict
//! ("the US–Europe cable is more vulnerable"). This sweep measures two
//! defenses at every dose:
//!
//! * **Detection** — flag hosts whose apex claims deviate from
//!   consensus. The *flat* baseline gives every stored entry one vote,
//!   so a campaign that outnumbers the honest entries drags the
//!   consensus into the poison cluster: honest hosts get flagged, the
//!   adversary sails through. The *graph* detector gives each host one
//!   vote weighted by its corroboration trust from the claim graph
//!   (claims other hosts independently assert), so repetition from one
//!   host cannot move the consensus and the adversary stays visible at
//!   every dose.
//! * **Verdict resistance** — the flagship question asked with legacy
//!   retrieval vs graph-mode retrieval (corroboration term in scoring).
//!
//! Output is deterministic: fixed seeds, virtual time only.

use ira::evalkit::poison::{detect_poisoned_sources, poisoned_entry_count, PoisonCampaign};
use ira::evalkit::report::{banner, table};
use ira::prelude::*;
use std::collections::BTreeSet;

const QUESTION: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
                        that connects Brazil to Europe or the one that connects the US to \
                        Europe?";

/// Degrees of deviation from consensus at which a host is flagged.
const TOLERANCE: f64 = 5.0;

fn trained_bob(graph_retrieval: bool) -> (Environment, ResearchAgent) {
    let env = Environment::standard();
    let config = AgentConfig::builder()
        .graph_retrieval(graph_retrieval)
        .build()
        .expect("valid config");
    let mut bob = ResearchAgent::new(RoleDefinition::bob(), &env, config, 0xB0B);
    bob.train();
    let _ = bob.self_learn(QUESTION); // honest knowledge in memory
    (env, bob)
}

fn inject(bob: &ResearchAgent, now_us: u64, poison_count: usize) {
    for target in ["Atlantis-2", "EllaLink"] {
        PoisonCampaign::inflate(target, 75.0, poison_count).inject(bob.memory(), now_us);
    }
}

fn verdict_cell(bob: &mut ResearchAgent) -> String {
    let answer = bob.ask(QUESTION);
    let verdict = answer.verdict.unwrap_or_else(|| "(hedge)".into());
    let status = if verdict.to_lowercase().contains("brazil") {
        "FLIPPED"
    } else {
        "held"
    };
    format!("{status}@{}", answer.confidence)
}

fn fmt_scores(s: &ira::evalkit::poison::DetectionScores) -> (String, String) {
    (format!("{:.2}", s.precision), format!("{:.2}", s.recall))
}

fn main() {
    print!(
        "{}",
        banner(
            "X5",
            "poisoned-source detection: flat vs claim-graph corroboration",
            "(extension) adversarial entries in knowledge.json; detection P/R per dose, \
             plus verdict resistance with legacy vs graph retrieval"
        )
    );

    let adversary = BTreeSet::from(["adversary.test".to_string()]);
    let mut rows = Vec::new();
    let mut graph_caught_where_flat_missed = 0usize;
    for poison_count in [0usize, 1, 2, 4, 8] {
        // Legacy-retrieval agent: detection baseline + verdict.
        let (env, mut flat_bob) = trained_bob(false);
        inject(&flat_bob, env.now_us(), poison_count);
        let flat =
            detect_poisoned_sources(flat_bob.memory(), TOLERANCE, false).score_against(&adversary);
        let graph =
            detect_poisoned_sources(flat_bob.memory(), TOLERANCE, true).score_against(&adversary);
        if graph.true_positives > flat.true_positives {
            graph_caught_where_flat_missed += 1;
        }
        let stored = poisoned_entry_count(flat_bob.memory());
        let flat_verdict = verdict_cell(&mut flat_bob);

        // Graph-retrieval agent: same training, same injection.
        let (env2, mut graph_bob) = trained_bob(true);
        inject(&graph_bob, env2.now_us(), poison_count);
        let graph_verdict = verdict_cell(&mut graph_bob);

        let (fp, fr) = fmt_scores(&flat);
        let (gp, gr) = fmt_scores(&graph);
        rows.push(vec![
            poison_count.to_string(),
            stored.to_string(),
            fp,
            fr,
            gp,
            gr,
            flat_verdict,
            graph_verdict,
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "poison/cable",
                "stored",
                "flat P",
                "flat R",
                "graph P",
                "graph R",
                "flat verdict",
                "graph verdict"
            ],
            &rows
        )
    );
    println!(
        "doses where the graph detector caught a source the flat detector missed: \
         {graph_caught_where_flat_missed}"
    );
    println!(
        "shape: at narrow doses both detectors see the deviant host. Once the campaign \
         outnumbers the honest entries, the flat consensus (one vote per entry) moves \
         into the poison cluster — honest hosts get flagged and the adversary passes. \
         The claim-graph consensus gives each host one corroboration-weighted vote: \
         publishing the same fake from one host, however often, never manufactures \
         agreement, so detection precision/recall hold at every dose. Source-level \
         trust closes exactly the hole §5 flags."
    );
}
