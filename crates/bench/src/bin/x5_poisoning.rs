//! X5 — knowledge-memory poisoning and the aggregation defense
//! (extension; §5 "Security and ethical considerations").
//!
//! The adversary injects entries inflating the Brazil–Europe cables'
//! maximum geomagnetic latitude, trying to flip the flagship verdict
//! ("the US–Europe cable is more vulnerable"). The model aggregates
//! conflicting values by median and discounts confidence when sources
//! disagree, so single-shot poisoning fails and larger campaigns are
//! visible as a confidence drop before they flip the verdict.

use ira::evalkit::poison::{poisoned_entry_count, PoisonCampaign};
use ira::evalkit::report::{banner, table};
use ira::prelude::*;

const QUESTION: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
                        that connects Brazil to Europe or the one that connects the US to \
                        Europe?";

fn main() {
    print!(
        "{}",
        banner(
            "X5",
            "knowledge-memory poisoning vs median aggregation",
            "(extension) adversarial entries in knowledge.json; defense: median over \
             conflicting values + confidence discount"
        )
    );

    let mut rows = Vec::new();
    for poison_count in [0usize, 1, 2, 3, 4] {
        let env = Environment::standard();
        let mut bob = ResearchAgent::bob(&env);
        bob.train();
        let _ = bob.self_learn(QUESTION); // honest knowledge in memory

        for target in ["Atlantis-2", "EllaLink"] {
            PoisonCampaign::inflate(target, 75.0, poison_count).inject(bob.memory(), env.now_us());
        }

        let answer = bob.ask(QUESTION);
        let verdict = answer.verdict.clone().unwrap_or_else(|| "(hedge)".into());
        let flipped = verdict.to_lowercase().contains("brazil");
        rows.push(vec![
            poison_count.to_string(),
            poisoned_entry_count(bob.memory()).to_string(),
            answer.confidence.to_string(),
            if flipped { "FLIPPED" } else { "held" }.to_string(),
            verdict,
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "poison/cable",
                "stored",
                "conf",
                "verdict status",
                "verdict"
            ],
            &rows
        )
    );
    println!(
        "shape: the defense is strong at the edges and has an honest hole in the middle. \
         Single injections cannot move the median; heavy campaigns crowd the context with \
         conflicting values, trigger the conflict discount, and push the agent back to \
         hedging (fail-safe). But at a narrow dose the retrieval-optimised fakes can \
         monopolise the prompt — the honest page drops out of context, no conflict is \
         visible, and the verdict flips at full confidence. Context-level median \
         aggregation is no substitute for source-level trust: exactly the open problem \
         §5 flags."
    );
}
