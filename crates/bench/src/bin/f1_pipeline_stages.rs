//! F1 — Figure 1: the two-stage pipeline split.
//!
//! Figure 1 of the paper separates the *knowledge retrieval stage*
//! (searching and reading the web) from the *reasoning stage* (asking
//! the model to answer/test). This binary runs a full train + quiz
//! cycle and reports how the agent's time divides between the stages —
//! the empirical argument for the knowledge memory: retrieval dominates
//! wall-clock, so memorised knowledge must be reused rather than
//! re-fetched.

use ira::evalkit::report::{banner, table};
use ira::prelude::*;

fn main() {
    print!(
        "{}",
        banner(
            "F1",
            "pipeline stage timing (Figure 1)",
            "the agent's clock is spent waiting on the outside world: web retrieval latency \
             plus model-inference latency"
        )
    );

    let env = Environment::standard();
    let quiz = QuizBank::from_world(&env.world);
    let mut bob = ResearchAgent::bob(&env);
    bob.train();
    for item in quiz.iter() {
        let _ = bob.self_learn(&item.question);
    }

    let s = bob.stage_stats();
    let rows = vec![
        vec![
            "knowledge retrieval".to_string(),
            s.retrieval_ops.to_string(),
            format!("{:.2}", s.retrieval_virtual_us as f64 / 1e6),
            format!("{:.1}", s.retrieval_host_us as f64 / 1e3),
        ],
        vec![
            "reasoning (model calls)".to_string(),
            s.reasoning_ops.to_string(),
            format!("{:.2}", s.reasoning_virtual_us as f64 / 1e6),
            format!("{:.1}", s.reasoning_host_us as f64 / 1e3),
        ],
    ];
    println!(
        "{}",
        table(&["stage", "ops", "virtual-s", "host-ms"], &rows)
    );
    println!(
        "retrieval share of total agent time: {:.1}%  (rest is model inference)",
        s.retrieval_share() * 100.0
    );
    println!(
        "\nimplication (the paper's design point): both stages are external-I/O bound, so \
         answers must be served from the knowledge memory — re-retrieving and re-reading the \
         web on every question would multiply the agent's latency."
    );
}
