//! Serve-layer load generator: throughput, latency, and shed/degraded
//! accounting for the resilient multi-tenant serve layer.
//!
//! Runs one mixed request batch (train / ask / quiz-with-deadline /
//! blackout quiz / panic probes / overload) through [`ira_serve::Server`]
//! at three worker-pool sizes sharing one engine-cached corpus, and
//! asserts the serve determinism contract in-binary: the response
//! transcript and the trace must be byte-identical at every
//! concurrency level. What varies with workers is host wall time —
//! reported per level as throughput — while the virtual latency
//! distribution (queue wait + retry backoff + session execution) is
//! worker-invariant and reported once with p50/p95/p99.
//!
//! Usage:
//!   serve_load                 full batch, writes results/BENCH_serve.json
//!   serve_load --smoke         reduced batch, writes results/BENCH_serve_smoke.json
//!                              (a metrics snapshot of the serve trace —
//!                              fully deterministic, diffable with
//!                              `ira trace diff` at zero tolerance)
//!   serve_load --smoke --write `path`
//!                              write the smoke snapshot to `path` instead
//!   serve_load --smoke --check <baseline.json>
//!                              re-run and fail unless the snapshot
//!                              matches the checked-in baseline exactly
//!
//! Stdout is the deterministic report; wall-clock timing goes to
//! stderr, matching the other sweep binaries.

use ira_engine::Engine;
use ira_obs::{summarize_events, JsonlCollector, LiveStats, MetricsSnapshot, SharedCollector};
use ira_serve::{
    render_responses, slo_sample, AdmissionConfig, RequestKind, ResponseStatus, ServeConfig,
    ServeRequest, ServeResponse, Server,
};
use ira_simnet::Duration;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

const WORKER_LEVELS: [usize; 3] = [1, 4, 8];

const SOLAR_QUESTION: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
     that connects Brazil to Europe or the one that connects the US to Europe?";
const DATACENTER_QUESTION: &str =
    "Whose datacenter is more vulnerable to a solar superstorm, Google's or Facebook's?";
const REPEATER_QUESTION: &str =
    "Which component of a submarine cable system is most at risk during a geomagnetic storm?";

fn train(id: &str, seed: u64, deadline_us: Option<u64>) -> ServeRequest {
    let mut req = ServeRequest::new(id, RequestKind::Train);
    req.seed = seed;
    req.deadline_us = deadline_us;
    req
}

fn ask(id: &str, seed: u64, question: &str) -> ServeRequest {
    let mut req = ServeRequest::new(id, RequestKind::Ask);
    req.seed = seed;
    req.question = Some(question.to_string());
    req
}

fn quiz(id: &str, seed: u64, deadline_us: u64, fault: Option<(f64, u64)>) -> ServeRequest {
    let mut req = ServeRequest::new(id, RequestKind::Quiz);
    req.seed = seed;
    req.deadline_us = Some(deadline_us);
    if let Some((intensity, fault_seed)) = fault {
        req.fault_intensity = intensity;
        req.fault_seed = fault_seed;
    }
    req
}

fn probe(id: &str, panics: Option<u32>) -> ServeRequest {
    let mut req = ServeRequest::new(id, RequestKind::PanicProbe);
    req.probe_panics = panics;
    req
}

/// Control-plane stats probe: reads the live-telemetry ledger without
/// spending an admission token.
fn stats(id: &str) -> ServeRequest {
    ServeRequest::new(id, RequestKind::Stats)
}

/// The full mixed batch: 16 tenants across every request kind, with
/// deadlines cutting two quizzes and one training run, a blackout
/// quiz, a probe that recovers on retry, one that never does, and a
/// tail request past the token-bucket burst (shed).
fn full_workload() -> Vec<ServeRequest> {
    vec![
        train("t0-train", 1, None),
        train("t1-train-cut", 2, Some(5_000_000)),
        ask("t2-ask-solar", 3, SOLAR_QUESTION),
        quiz("t3-quiz-cut", 4, 100_000_000, None),
        probe("t4-probe-retry", Some(1)),
        probe("t5-probe-dead", None),
        ask("t6-ask-dc", 5, DATACENTER_QUESTION),
        train("t7-train", 6, None),
        quiz("t8-quiz-blackout", 7, 110_000_000, Some((0.25, 7))),
        ask("t9-ask-solar", 8, SOLAR_QUESTION),
        train("t10-train-cut", 9, Some(5_000_000)),
        probe("t11-probe-ok", Some(0)),
        ask("t12-ask-repeater", 10, REPEATER_QUESTION),
        train("t13-train", 11, None),
        quiz("t14-quiz-cut", 12, 100_000_000, None),
        train("t15-train-tail", 13, None),
        stats("t16-stats"),
    ]
}

/// The smoke batch: one of everything cheap (no full quiz), sized so
/// the tail request overruns the bucket.
fn smoke_workload() -> Vec<ServeRequest> {
    vec![
        train("s0-train-cut", 1, Some(5_000_000)),
        ask("s1-ask-solar", 2, SOLAR_QUESTION),
        probe("s2-probe-retry", Some(1)),
        probe("s3-probe-dead", None),
        probe("s4-probe-ok", Some(0)),
        train("s5-train-tail", 3, None),
        stats("s6-stats"),
    ]
}

/// Admission sized against the workload: refill 1/s with 250 ms
/// arrival spacing drains net 0.75 tokens per arrival, so a burst of
/// `floor(0.75 * (billable - 1)) + 1` sheds exactly the batch's last
/// *billable* request and admits everything before it. Stats probes
/// spend no tokens, so they are excluded from the sizing.
fn admission_for(billable: usize) -> AdmissionConfig {
    let burst = (3 * (billable as u32 - 1)) / 4 + 1;
    AdmissionConfig {
        rate_per_sec: 1.0,
        burst,
        arrival_spacing: Duration::from_millis(250),
        lanes: 4,
        max_queue_wait: Duration::from_secs(600),
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct LevelReport {
    workers: usize,
    /// Informational only — never part of any `--check` comparison.
    wall_ms: f64,
    /// Requests per host second at this pool size.
    throughput_rps: f64,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct LatencyReport {
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct OutcomeReport {
    ok: usize,
    degraded: usize,
    rejected: usize,
    failed: usize,
    /// Retry attempts consumed across the batch.
    retries: usize,
    /// Session panics caught by the supervisor (retried or terminal).
    panics: usize,
}

/// The SLO summary derived from the live-telemetry ledger: rates as
/// integer parts-per-million (so the report stays `Eq`-diffable at
/// zero tolerance) plus the deterministic sketch percentiles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct SloReport {
    arrivals: u64,
    admitted: u64,
    shed_ppm: u64,
    degraded_ppm: u64,
    deadline_miss_ppm: u64,
    queue_p50_us: u64,
    queue_p95_us: u64,
    queue_p99_us: u64,
    exec_p50_us: u64,
    exec_p95_us: u64,
    exec_p99_us: u64,
}

/// Fold every `(request, response)` pair through the serve layer's
/// public [`slo_sample`] derivation — the same stream the in-server
/// ledger records — and collapse the per-key cells into one batch-wide
/// SLO cell.
fn slo_report(requests: &[ServeRequest], responses: &[ServeResponse]) -> SloReport {
    let mut live = LiveStats::default();
    for (request, response) in requests.iter().zip(responses) {
        live.record(&slo_sample(request, response));
    }
    let snapshot = live.snapshot(0);
    let mut all = ira_obs::SloCell::default();
    for cell in snapshot.total.values() {
        all.merge(cell);
    }
    SloReport {
        arrivals: all.arrivals,
        admitted: all.admitted,
        shed_ppm: all.shed_ppm(),
        degraded_ppm: all.degraded_ppm(),
        deadline_miss_ppm: all.deadline_miss_ppm(),
        queue_p50_us: all.queue.p50_us(),
        queue_p95_us: all.queue.p95_us(),
        queue_p99_us: all.queue.p99_us(),
        exec_p50_us: all.exec.p50_us(),
        exec_p95_us: all.exec.p95_us(),
        exec_p99_us: all.exec.p99_us(),
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Report {
    bench: String,
    mode: String,
    requests: usize,
    levels: Vec<LevelReport>,
    /// Worker-invariant end-to-end virtual latency (queue + retry
    /// backoff + execution) over executed requests.
    virtual_latency_us: LatencyReport,
    outcomes: OutcomeReport,
    /// Batch-wide SLO rates and sketch percentiles from the live
    /// telemetry ledger.
    slo: SloReport,
    transcripts_identical: bool,
}

struct RunOutput {
    transcript: String,
    trace: String,
    responses: Vec<ServeResponse>,
    wall_ms: f64,
}

fn run_level(engine: &Arc<Engine>, workers: usize, requests: &[ServeRequest]) -> RunOutput {
    let billable = requests
        .iter()
        .filter(|r| r.kind != RequestKind::Stats)
        .count();
    let config = ServeConfig {
        workers,
        admission: admission_for(billable),
        ..ServeConfig::default()
    };
    let server = Server::with_engine(Arc::clone(engine), config);
    let collector = Arc::new(JsonlCollector::new());
    let start = std::time::Instant::now();
    let responses = server.handle_batch(requests, Some(Arc::clone(&collector) as SharedCollector));
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    RunOutput {
        transcript: render_responses(&responses),
        trace: collector.render(),
        responses,
        wall_ms,
    }
}

/// End-to-end virtual latency of one served request.
fn latency_us(response: &ServeResponse) -> u64 {
    response.queue_us + response.retry_wait_us + response.exec_virtual_us
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn latency_report(responses: &[ServeResponse]) -> LatencyReport {
    // Executed requests only: sheds never ran, and control-plane stats
    // probes are answered at intake with zero attempts.
    let mut lat: Vec<u64> = responses
        .iter()
        .filter(|r| r.attempts > 0)
        .map(latency_us)
        .collect();
    lat.sort_unstable();
    LatencyReport {
        p50_us: percentile(&lat, 50.0),
        p95_us: percentile(&lat, 95.0),
        p99_us: percentile(&lat, 99.0),
        max_us: lat.last().copied().unwrap_or(0),
    }
}

fn outcome_report(responses: &[ServeResponse]) -> OutcomeReport {
    let mut out = OutcomeReport {
        ok: 0,
        degraded: 0,
        rejected: 0,
        failed: 0,
        retries: 0,
        panics: 0,
    };
    for response in responses {
        match response.status {
            ResponseStatus::Ok => out.ok += 1,
            ResponseStatus::Degraded => out.degraded += 1,
            ResponseStatus::Rejected => out.rejected += 1,
            ResponseStatus::Failed => out.failed += 1,
        }
        let retries = response.attempts.saturating_sub(1) as usize;
        out.retries += retries;
        // Each retry was provoked by a caught panic; a terminal
        // failure means the last attempt panicked too.
        out.panics += retries;
        if response.status == ResponseStatus::Failed
            && response
                .error
                .as_ref()
                .is_some_and(|e| e.kind == "serve.session_panicked")
        {
            out.panics += 1;
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let check_path = flag_value("--check");
    let write_path = flag_value("--write");

    let (mode, requests) = if smoke {
        ("smoke", smoke_workload())
    } else {
        ("full", full_workload())
    };

    println!("serve_load — resilient serve layer under a mixed multi-tenant batch");
    println!("mode: {mode}, requests: {}\n", requests.len());

    // The workload detonates panic probes on purpose; keep their
    // backtraces out of the report while leaving real panics loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let probe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("panic probe"));
        if !probe {
            default_hook(info);
        }
    }));

    let engine = Arc::new(Engine::new());
    // Warm the shared corpus cache so level timings measure serving,
    // not one-time corpus generation.
    let _ = run_level(&engine, WORKER_LEVELS[0], &[probe("warmup", Some(0))]);

    let runs: Vec<RunOutput> = WORKER_LEVELS
        .iter()
        .map(|&workers| run_level(&engine, workers, &requests))
        .collect();

    for pair in runs.windows(2) {
        assert_eq!(
            pair[0].transcript, pair[1].transcript,
            "serve transcript must be byte-identical across worker counts"
        );
        assert_eq!(
            pair[0].trace, pair[1].trace,
            "serve trace must be byte-identical across worker counts"
        );
    }
    println!(
        "transcripts and traces byte-identical across workers {:?}: yes\n",
        WORKER_LEVELS
    );

    let levels: Vec<LevelReport> = WORKER_LEVELS
        .iter()
        .zip(&runs)
        .map(|(&workers, run)| LevelReport {
            workers,
            wall_ms: run.wall_ms,
            throughput_rps: requests.len() as f64 / (run.wall_ms / 1e3),
        })
        .collect();
    let responses = &runs[0].responses;
    let latency = latency_report(responses);
    let outcomes = outcome_report(responses);
    let slo = slo_report(&requests, responses);

    println!("per-request outcomes (identical at every level):");
    for response in responses {
        let error = response
            .error
            .as_ref()
            .map(|e| format!(" [{}]", e.kind))
            .unwrap_or_default();
        println!(
            "  {:<18} {:<9} attempts={} queue={:>9}µs exec={:>10}µs{}",
            response.id,
            response.status.as_str(),
            response.attempts,
            response.queue_us,
            response.exec_virtual_us,
            error
        );
    }
    println!(
        "\noutcomes: ok={} degraded={} rejected={} failed={} retries={} panics={}",
        outcomes.ok,
        outcomes.degraded,
        outcomes.rejected,
        outcomes.failed,
        outcomes.retries,
        outcomes.panics
    );
    println!(
        "virtual latency (executed): p50={}µs p95={}µs p99={}µs max={}µs",
        latency.p50_us, latency.p95_us, latency.p99_us, latency.max_us
    );
    println!(
        "slo: arrivals={} admitted={} shed={} degraded={} deadline_miss={}",
        slo.arrivals,
        slo.admitted,
        ira_obs::fmt_ppm_pct(slo.shed_ppm),
        ira_obs::fmt_ppm_pct(slo.degraded_ppm),
        ira_obs::fmt_ppm_pct(slo.deadline_miss_ppm),
    );
    println!(
        "slo sketch percentiles: queue p50/p95/p99 = {}/{}/{}µs, exec = {}/{}/{}µs",
        slo.queue_p50_us,
        slo.queue_p95_us,
        slo.queue_p99_us,
        slo.exec_p50_us,
        slo.exec_p95_us,
        slo.exec_p99_us
    );
    for level in &levels {
        eprintln!(
            "[timing] workers={} wall={:.0}ms throughput={:.1} req/s",
            level.workers, level.wall_ms, level.throughput_rps
        );
    }

    // Sanity: the batch must actually exercise every degradation path.
    assert!(outcomes.rejected > 0, "workload never tripped admission");
    assert!(outcomes.degraded > 0, "workload never hit a deadline");
    assert!(outcomes.failed > 0, "workload never exhausted retries");
    assert!(outcomes.retries > 0, "workload never retried");

    if smoke {
        // The smoke artifact is the metrics snapshot folded from the
        // serve trace: pure virtual time and counts, so CI can hold it
        // to zero drift with `ira trace diff`.
        let events = ira_obs::parse_jsonl(&runs[0].trace).expect("serve trace parses");
        let snapshot = summarize_events(&events);
        let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot") + "\n";
        if let Some(path) = &check_path {
            let baseline: MetricsSnapshot = serde_json::from_str(
                &std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}")),
            )
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e}"));
            if baseline != snapshot {
                eprintln!("serve smoke snapshot drifted from {path}:");
                eprintln!("--- baseline ---\n{}", baseline.render());
                eprintln!("--- run ---\n{}", snapshot.render());
                std::process::exit(1);
            }
            println!("\ncheck vs {path}: serve trace metrics match the baseline exactly");
        }
        if let Some(path) = &write_path {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("wrote {path}");
        }
        if check_path.is_none() && write_path.is_none() {
            let out = "results/BENCH_serve_smoke.json";
            std::fs::write(out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
            println!("\nwrote {out}");
        }
        return;
    }

    let report = Report {
        bench: "serve_load".to_string(),
        mode: mode.to_string(),
        requests: requests.len(),
        levels,
        virtual_latency_us: latency,
        outcomes,
        slo,
        transcripts_identical: true,
    };
    let out = write_path.unwrap_or_else(|| "results/BENCH_serve.json".to_string());
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("\nwrote {out}");
}
