//! A1 — design-choice ablations (DESIGN.md "key design choices").
//!
//! Three knobs of the architecture are ablated, each against the full
//! quiz with self-learning:
//!
//! * memory retrieval scoring: relevance-only vs relevance+recency+importance,
//! * knowledge dedup: on vs off (off re-memorises repeated fetches and
//!   bloats the store),
//! * chain-of-thought decomposition on thin search results: on vs off.
//!
//! Reported per variant: quiz consistency, self-learning effort, and
//! memory size.

use ira::agentmem::RetrievalWeights;
use ira::evalkit::report::{banner, table};
use ira::prelude::*;

fn run_variant(label: &str, config: AgentConfig) -> Vec<String> {
    let env = Environment::standard();
    let quiz = QuizBank::from_world(&env.world);
    let conclusions = env.world.conclusions();
    let mut agent = ResearchAgent::new(RoleDefinition::bob(), &env, config, 0xB0B);
    agent.train();
    let run = evaluate_agent(&mut agent, &quiz, &conclusions);
    vec![
        label.to_string(),
        format!(
            "{}/{}",
            run.consistency.consistent_count(),
            run.consistency.total()
        ),
        format!("{:.1}", run.consistency.mean_confidence()),
        run.total_learning_rounds().to_string(),
        run.total_searches().to_string(),
        agent.memory().len().to_string(),
    ]
}

fn main() {
    print!(
        "{}",
        banner(
            "A1",
            "architecture ablations",
            "(no paper counterpart — validates the design choices DESIGN.md calls out)"
        )
    );

    let base = AgentConfig::default();
    let mut no_diversity = base;
    no_diversity.memory.weights.diversity = 0.0;
    let rows = vec![
        run_variant("full architecture", base),
        run_variant("retrieval: no diversity (paper-faithful)", no_diversity),
        run_variant(
            "memory: relevance-only",
            AgentConfig {
                memory: StoreConfig {
                    weights: RetrievalWeights::relevance_only(),
                    ..StoreConfig::default()
                },
                ..base
            },
        ),
        run_variant(
            "memory: dedup off",
            AgentConfig {
                memory: StoreConfig {
                    dedup_threshold: 1.01,
                    ..StoreConfig::default()
                },
                ..base
            },
        ),
        run_variant(
            "cot decomposition off",
            AgentConfig {
                autogpt: AutoGptConfig {
                    cot_threshold: 0,
                    ..AutoGptConfig::default()
                },
                ..base
            },
        ),
        run_variant(
            "query expansion OFF (question-only retrieval)",
            AgentConfig {
                query_expansion: false,
                ..base
            },
        ),
    ];
    println!(
        "{}",
        table(
            &[
                "variant",
                "consistent",
                "mean-conf",
                "rounds",
                "searches",
                "memory"
            ],
            &rows
        )
    );
}
