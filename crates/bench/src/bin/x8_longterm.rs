//! X8 — long-term robustness (extension; §5 "Long-term robustness":
//! "we have limited knowledge of how robust this kind of software
//! agent is when performing research tasks" over a long period).
//!
//! One agent runs twenty sequential investigation sessions against the
//! full quiz, persisting and reloading its `knowledge.json` between
//! sessions, under tight memory capacity (forcing eviction). Reported
//! per session: quiz consistency, memory size, and new entries — the
//! question is whether quality drifts as the memory churns.

use ira::evalkit::consistency::ConsistencyReport;
use ira::evalkit::report::{banner, table};
use ira::prelude::*;

fn main() {
    print!(
        "{}",
        banner(
            "X8",
            "twenty sequential sessions under memory pressure",
            "(extension) consistency must not drift as knowledge.json round-trips and \
             eviction churns the store"
        )
    );

    let env = Environment::standard();
    let quiz = QuizBank::from_world(&env.world);

    // Tight capacity: roughly one investigation's worth of entries.
    let memory_config = StoreConfig {
        capacity: 30,
        ..StoreConfig::default()
    };
    let agent_config = AgentConfig {
        memory: memory_config,
        ..AgentConfig::default()
    };

    let mut bob = ResearchAgent::new(RoleDefinition::bob(), &env, agent_config, 0xB0B);
    bob.train();

    let mut rows = Vec::new();
    let mut knowledge_json = bob.memory().to_json();
    for session in 1..=20u32 {
        // Reload the persisted knowledge into a fresh agent, as a
        // long-lived deployment restarting between sessions would.
        let store = KnowledgeStore::from_json(&knowledge_json).expect("knowledge.json loads");
        let mut agent = ResearchAgent::with_memory(
            RoleDefinition::bob(),
            &env,
            agent_config,
            0xB0B + session as u64,
            store,
        );

        let mut consistency = ConsistencyReport::new("session");
        let before = agent.memory().len();
        for item in quiz.iter() {
            let _ = agent.self_learn(&item.question);
            let answer = agent.ask(&item.question);
            consistency.add(item, &answer);
        }
        let after = agent.memory().len();
        knowledge_json = agent.memory().to_json();

        if session <= 5 || session % 5 == 0 {
            rows.push(vec![
                session.to_string(),
                format!("{}/{}", consistency.consistent_count(), consistency.total()),
                format!("{:.1}", consistency.mean_confidence()),
                before.to_string(),
                after.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &[
                "session",
                "consistent",
                "mean-conf",
                "mem-before",
                "mem-after"
            ],
            &rows
        )
    );
    println!(
        "shape: flat across all twenty sessions — no progressive drift, no corruption from \
         the knowledge.json round trips, and the importance/recency-weighted eviction never \
         discards load-bearing knowledge even with the store pinned at capacity."
    );
}
