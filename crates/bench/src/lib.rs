//! Experiment binaries live in src/bin; criterion benches in benches/.

/// Parse `--threads N` (or `--threads=N`) from the process arguments.
/// Defaults to 1 — serial. The sweep binaries keep **stdout**
/// byte-identical at any thread count; wall-clock timing goes to
/// stderr, so `e5_threshold_sweep --threads 8 > out.txt` produces the
/// same file as the serial run.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    threads_from(&args)
}

/// [`threads_from_args`] over an explicit argument list (testable).
pub fn threads_from(args: &[String]) -> usize {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threads" {
            return iter
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1);
        }
        if let Some(v) = arg.strip_prefix("--threads=") {
            return v.parse().ok().filter(|&n| n >= 1).unwrap_or(1);
        }
    }
    1
}

/// One-line timing summary on stderr (never stdout — stdout is the
/// deterministic report).
pub fn print_timing(threads: usize, wall: std::time::Duration, corpus_builds: usize) {
    eprintln!(
        "[timing] threads={threads} wall={:.2}s corpus-builds={corpus_builds}",
        wall.as_secs_f64()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn threads_flag_parses_both_spellings() {
        assert_eq!(threads_from(&args(&["bin", "--threads", "8"])), 8);
        assert_eq!(threads_from(&args(&["bin", "--threads=4"])), 4);
        assert_eq!(threads_from(&args(&["bin"])), 1);
    }

    #[test]
    fn bad_thread_counts_fall_back_to_serial() {
        assert_eq!(threads_from(&args(&["bin", "--threads", "zero"])), 1);
        assert_eq!(threads_from(&args(&["bin", "--threads", "0"])), 1);
        assert_eq!(threads_from(&args(&["bin", "--threads"])), 1);
    }
}
