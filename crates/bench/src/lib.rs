//! Experiment binaries live in src/bin; criterion benches in benches/.
