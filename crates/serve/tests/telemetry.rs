//! Live-telemetry contract tests (ISSUE 10).
//!
//! The bar: `stats` snapshots and flight-recorder post-mortem dumps
//! are pure functions of the request batch — byte-identical across
//! `--workers 1/4/8` and repeat runs; stats probes never consume
//! admission tokens; a clean run leaves zero flight artifacts.

use ira_engine::Engine;
use ira_obs::{parse_jsonl, Fanout, FlightRecorder, JsonlCollector, LiveSnapshot};
use ira_serve::{
    render_responses, slo_sample, AdmissionConfig, RequestKind, ResponsePayload, ResponseStatus,
    ServeConfig, ServeRequest, ServeResponse, Server,
};
use ira_simnet::clock::Duration;
use std::sync::Arc;

/// One run of a batch with full tracing *and* the always-on flight
/// recorder fanned in, the way `ira serve --trace --flight` wires it.
struct Observed {
    transcript: String,
    trace: String,
    flight: String,
    dump_count: usize,
    responses: Vec<ServeResponse>,
}

fn run_observed(engine: &Arc<Engine>, config: ServeConfig, requests: &[ServeRequest]) -> Observed {
    let server = Server::with_engine(Arc::clone(engine), config);
    let trace = Arc::new(JsonlCollector::new());
    let flight = Arc::new(FlightRecorder::default());
    let sink = Arc::new(Fanout::new(vec![trace.clone(), flight.clone()]));
    let responses = server.handle_batch(requests, Some(sink));
    Observed {
        transcript: render_responses(&responses),
        trace: trace.render(),
        flight: flight.render(),
        dump_count: flight.dump_count(),
        responses,
    }
}

/// The acceptance-criteria workload: an injected panic, a
/// deadline-exceeded train, an overload shed, and a trailing stats
/// probe — every flight-recorder trigger fires, and the probe reads
/// the ledger the batch built.
fn telemetry_requests() -> Vec<ServeRequest> {
    let mut train = ServeRequest::new("train-full", RequestKind::Train);
    train.seed = 1;

    let mut train_cut = ServeRequest::new("train-cut", RequestKind::Train);
    train_cut.deadline_us = Some(5_000_000);

    let probe_dead = ServeRequest::new("probe-dead", RequestKind::PanicProbe);

    let shed_me = ServeRequest::new("late-train", RequestKind::Train);

    let stats = ServeRequest::new("stats-tail", RequestKind::Stats);

    vec![train, train_cut, probe_dead, shed_me, stats]
}

/// Burst 3 admits exactly the first three billable requests; the
/// fourth sheds. The stats probe is not billable.
fn tight_admission() -> AdmissionConfig {
    AdmissionConfig {
        rate_per_sec: 0.1,
        burst: 3,
        arrival_spacing: Duration::from_millis(250),
        lanes: 2,
        max_queue_wait: Duration::from_secs(600),
    }
}

fn stats_snapshot(response: &ServeResponse) -> &LiveSnapshot {
    match response.result.as_ref().expect("stats result present") {
        ResponsePayload::Stats { snapshot } => snapshot,
        other => panic!("expected stats payload, got {other:?}"),
    }
}

#[test]
fn stats_snapshots_and_flight_dumps_are_worker_invariant() {
    let engine = Arc::new(Engine::new());
    let requests = telemetry_requests();
    let runs: Vec<Observed> = [1usize, 4, 8]
        .into_iter()
        .map(|workers| {
            let config = ServeConfig {
                workers,
                admission: tight_admission(),
                ..ServeConfig::default()
            };
            run_observed(&engine, config, &requests)
        })
        .collect();

    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(runs[0].transcript, run.transcript, "transcript, run {i}");
        assert_eq!(runs[0].trace, run.trace, "trace, run {i}");
        assert_eq!(runs[0].flight, run.flight, "flight dumps, run {i}");
    }
    // Repeat run at the same worker count: byte-identical too.
    let again = run_observed(
        &engine,
        ServeConfig {
            workers: 4,
            admission: tight_admission(),
            ..ServeConfig::default()
        },
        &requests,
    );
    assert_eq!(runs[0].flight, again.flight, "flight dumps, repeat run");
    assert_eq!(runs[0].transcript, again.transcript, "transcript, repeat");

    // Every failure mode produced a post-mortem: the panic probe
    // panics on 3 attempts (3 dumps), the cut train misses its
    // deadline once, and the late train sheds.
    let run = &runs[0];
    let flight_events = parse_jsonl(&run.flight).expect("dumps are valid traces");
    let headers: Vec<&str> = flight_events
        .iter()
        .filter(|e| e.stage == "flight")
        .map(|e| e.detail.as_str())
        .collect();
    assert_eq!(
        run.dump_count, 5,
        "3 panics + 1 deadline + 1 shed: {headers:?}"
    );
    let labels: Vec<String> = headers
        .iter()
        .map(|d| d.split_whitespace().next().unwrap_or("").to_string())
        .collect();
    assert_eq!(
        labels
            .iter()
            .filter(|l| *l == "trigger=serve.panic")
            .count(),
        3
    );
    assert!(labels.contains(&"trigger=serve.deadline".to_string()));
    assert!(labels.contains(&"trigger=serve.shed".to_string()));

    // The stats probe answered Ok without a session and saw the whole
    // batch's intake plus the previous requests' outcomes... which at
    // probe time (intake phase) is intake-only for this batch.
    let stats = &run.responses[4];
    assert_eq!(stats.status, ResponseStatus::Ok);
    assert_eq!(stats.attempts, 0);
    let snapshot = stats_snapshot(stats);
    let train_cell = &snapshot.total["solar-superstorm/train"];
    assert_eq!(train_cell.arrivals, 3, "train-full, train-cut, late-train");
    assert_eq!(train_cell.admitted, 2);
    assert_eq!(train_cell.shed, 1);
    assert_eq!(snapshot.total["solar-superstorm/panic_probe"].admitted, 1);
    // Outcomes land in the ledger after the merge phase, which is
    // after the intake-phase snapshot — so the probe's own batch shows
    // no completions yet. A later batch would see them (covered below).
    assert_eq!(train_cell.ok + train_cell.degraded + train_cell.failed, 0);
    assert!(snapshot.render_text().contains("solar-superstorm/train"));
}

#[test]
fn later_batches_see_earlier_outcomes_and_the_ledger_accumulates() {
    let server = Server::new(ServeConfig {
        workers: 2,
        admission: tight_admission(),
        ..ServeConfig::default()
    });
    let first = server.handle_batch(&telemetry_requests(), None);
    assert_eq!(first.len(), 5);

    // A lone stats probe in a fresh batch reads the accumulated ledger.
    let probe = vec![ServeRequest::new("stats-after", RequestKind::Stats)];
    let second = server.handle_batch(&probe, None);
    let snapshot = stats_snapshot(&second[0]);
    let train_cell = &snapshot.total["solar-superstorm/train"];
    assert_eq!(train_cell.admitted, 2);
    assert_eq!(train_cell.ok, 1, "train-full completed");
    assert_eq!(train_cell.degraded, 1, "train-cut missed its deadline");
    assert_eq!(train_cell.deadline_miss, 1);
    assert!(train_cell.exec.count >= 2, "exec latencies were observed");
    let probe_cell = &snapshot.total["solar-superstorm/panic_probe"];
    assert_eq!(probe_cell.failed, 1);
    assert_eq!(probe_cell.retries, 2, "two retries before giving up");
    // The first batch's stats probe itself is in the ledger as an
    // admitted `stats` arrival.
    assert_eq!(snapshot.total["solar-superstorm/stats"].admitted, 1);

    // Replaying (request, response) pairs through the public
    // slo_sample derivation reproduces the server's own cumulative
    // cells — the contract `--stats-every` and serve_load lean on.
    let mut replay = ira_obs::LiveStats::default();
    for (request, response) in telemetry_requests().iter().zip(&first) {
        replay.record(&slo_sample(request, response));
    }
    for (request, response) in probe.iter().zip(&second) {
        replay.record(&slo_sample(request, response));
    }
    let replayed = replay.snapshot(0);
    let live = server.live_snapshot(0);
    assert_eq!(replayed.total, live.total, "replay matches the ledger");
}

#[test]
fn stats_probes_never_spend_admission_tokens() {
    // Burst 1: the single token goes to the first train; a following
    // train sheds. Stats probes interleaved before and after must all
    // answer Ok regardless.
    let server = Server::new(ServeConfig {
        workers: 1,
        admission: AdmissionConfig {
            rate_per_sec: 0.001,
            burst: 1,
            arrival_spacing: Duration::from_millis(250),
            lanes: 1,
            max_queue_wait: Duration::from_secs(600),
        },
        ..ServeConfig::default()
    });
    let requests = vec![
        ServeRequest::new("s-before", RequestKind::Stats),
        ServeRequest::new("t-1", RequestKind::Train),
        ServeRequest::new("s-mid", RequestKind::Stats),
        ServeRequest::new("t-2", RequestKind::Train),
        ServeRequest::new("s-after", RequestKind::Stats),
    ];
    let responses = server.handle_batch(&requests, None);
    assert_eq!(responses[0].status, ResponseStatus::Ok);
    assert_eq!(responses[1].status, ResponseStatus::Ok, "token available");
    assert_eq!(responses[2].status, ResponseStatus::Ok);
    assert_eq!(
        responses[3].status,
        ResponseStatus::Rejected,
        "bucket empty for the second train"
    );
    assert_eq!(responses[4].status, ResponseStatus::Ok);

    // Mid-batch snapshot ordering: s-mid saw t-1 admitted but not
    // t-2's shed; s-after saw both. And each probe's own arrival is
    // counted only after it answers.
    assert_eq!(stats_snapshot(&responses[0]).total.len(), 0);
    let mid = stats_snapshot(&responses[2]);
    assert_eq!(mid.total["solar-superstorm/train"].admitted, 1);
    assert_eq!(mid.total["solar-superstorm/train"].shed, 0);
    assert_eq!(mid.total["solar-superstorm/stats"].admitted, 1, "s-before");
    let after = stats_snapshot(&responses[4]);
    assert_eq!(after.total["solar-superstorm/train"].shed, 1);
    assert_eq!(after.total["solar-superstorm/stats"].admitted, 2);

    // Arrival clock: stats probes occupy slots (250ms apart).
    let arrivals: Vec<u64> = responses.iter().map(|r| r.arrival_us).collect();
    assert_eq!(arrivals, vec![0, 250_000, 500_000, 750_000, 1_000_000]);
}

#[test]
fn clean_runs_leave_zero_flight_artifacts() {
    let engine = Arc::new(Engine::new());
    let mut train = ServeRequest::new("clean-train", RequestKind::Train);
    train.seed = 1;
    let stats = ServeRequest::new("clean-stats", RequestKind::Stats);
    let observed = run_observed(
        &engine,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        &[train, stats],
    );
    assert_eq!(observed.dump_count, 0);
    assert_eq!(observed.flight, "");
    assert_eq!(observed.responses[0].status, ResponseStatus::Ok);
    assert_eq!(observed.responses[1].status, ResponseStatus::Ok);
}

#[test]
fn stats_round_trips_through_the_wire_protocol() {
    let server = Server::new(ServeConfig {
        workers: 1,
        admission: tight_admission(),
        ..ServeConfig::default()
    });
    let input = "{\"id\":\"t\",\"kind\":\"train\"}\n{\"id\":\"s\",\"kind\":\"stats\"}\n";
    let out = server.serve_jsonl(input, None).expect("serves");
    let responses = ira_serve::parse_responses(&out).expect("parses back");
    assert_eq!(responses.len(), 2);
    let snapshot = stats_snapshot(&responses[1]);
    assert_eq!(snapshot.total["solar-superstorm/train"].admitted, 1);
    // The parsed snapshot renders the same bytes as the original.
    assert_eq!(
        render_responses(&responses),
        out,
        "render(parse(x)) == x for stats payloads"
    );
}
