//! Serve-layer robustness and determinism contract tests.
//!
//! The bar these enforce (ISSUE 6): identical request batches produce
//! byte-identical response transcripts and traces regardless of worker
//! count; overload is typed and immediate; deadlines degrade
//! gracefully instead of erroring; panics are isolated and retried;
//! and every request lands in the causal trace tree as a
//! `serve.request` span enclosing admission, queueing, and execution.

use ira_engine::Engine;
use ira_obs::{parse_jsonl, EventClass, JsonlCollector, SharedCollector};
use ira_serve::{
    render_responses, AdmissionConfig, RequestKind, ResponsePayload, ResponseStatus, ServeConfig,
    ServeRequest, ServeResponse, Server,
};
use ira_simnet::clock::Duration;
use std::sync::Arc;

/// A real quiz question (the agent's verdict matching is tuned for
/// the incident quiz bank, so ask-examples use one of its questions).
const SOLAR_QUESTION: &str = "Which is more vulnerable to solar activity? The fiber optic cable \
     that connects Brazil to Europe or the one that connects the US to Europe?";

fn run_batch(
    engine: &Arc<Engine>,
    config: ServeConfig,
    requests: &[ServeRequest],
) -> (String, String, Vec<ServeResponse>) {
    let server = Server::with_engine(Arc::clone(engine), config);
    let collector = Arc::new(JsonlCollector::new());
    let sink: SharedCollector = collector.clone();
    let responses = server.handle_batch(requests, Some(sink));
    (render_responses(&responses), collector.render(), responses)
}

/// The mixed workload used by the worker-count sweep: a full train, a
/// deadline-degraded train, an ask, a deadline-degraded quiz, a probe
/// that recovers on retry, a probe that never recovers, and one
/// request past the token-bucket burst (shed).
fn mixed_requests() -> Vec<ServeRequest> {
    let mut train = ServeRequest::new("train-full", RequestKind::Train);
    train.seed = 1;

    let mut train_cut = ServeRequest::new("train-cut", RequestKind::Train);
    train_cut.deadline_us = Some(5_000_000);

    let mut ask = ServeRequest::new("ask-solar", RequestKind::Ask);
    ask.question = Some(SOLAR_QUESTION.to_string());
    ask.seed = 2;

    let mut quiz_cut = ServeRequest::new("quiz-cut", RequestKind::Quiz);
    quiz_cut.deadline_us = Some(100_000_000);

    let mut probe_retry = ServeRequest::new("probe-retry", RequestKind::PanicProbe);
    probe_retry.probe_panics = Some(1);

    let probe_dead = ServeRequest::new("probe-dead", RequestKind::PanicProbe);

    let shed_me = ServeRequest::new("late-train", RequestKind::Train);

    vec![
        train,
        train_cut,
        ask,
        quiz_cut,
        probe_retry,
        probe_dead,
        shed_me,
    ]
}

/// Admission tuned so exactly the last of the seven mixed requests
/// overruns the bucket: burst 5, refill 1/s, arrivals 250 ms apart.
fn mixed_admission() -> AdmissionConfig {
    AdmissionConfig {
        rate_per_sec: 1.0,
        burst: 5,
        arrival_spacing: Duration::from_millis(250),
        lanes: 2,
        max_queue_wait: Duration::from_secs(600),
    }
}

#[test]
fn mixed_batch_is_byte_identical_across_worker_counts() {
    let engine = Arc::new(Engine::new());
    let requests = mixed_requests();
    let runs: Vec<(String, String, Vec<ServeResponse>)> = [1usize, 4, 8]
        .into_iter()
        .map(|workers| {
            let config = ServeConfig {
                workers,
                admission: mixed_admission(),
                ..ServeConfig::default()
            };
            run_batch(&engine, config, &requests)
        })
        .collect();

    // Byte-identity of both the response transcript and the trace.
    assert_eq!(
        runs[0].0, runs[1].0,
        "transcript differs between workers=1 and workers=4"
    );
    assert_eq!(
        runs[0].0, runs[2].0,
        "transcript differs between workers=1 and workers=8"
    );
    assert_eq!(
        runs[0].1, runs[1].1,
        "trace differs between workers=1 and workers=4"
    );
    assert_eq!(
        runs[0].1, runs[2].1,
        "trace differs between workers=1 and workers=8"
    );

    // And the transcript says what it should, request by request.
    let responses = &runs[0].2;
    assert_eq!(responses.len(), requests.len());
    for (request, response) in requests.iter().zip(responses) {
        assert_eq!(request.id, response.id, "responses stay in request order");
    }

    let full = &responses[0];
    assert_eq!(full.status, ResponseStatus::Ok);
    assert!(!full.degraded);
    match full.result.as_ref().unwrap() {
        ResponsePayload::Train {
            goals_completed,
            goals_total,
            memory_entries,
        } => {
            assert_eq!(goals_completed, goals_total);
            assert!(*memory_entries > 0);
        }
        other => panic!("expected train payload, got {other:?}"),
    }

    let cut = &responses[1];
    assert_eq!(cut.status, ResponseStatus::Degraded);
    assert!(cut.degraded);
    assert_eq!(cut.error.as_ref().unwrap().kind, "serve.deadline_exceeded");
    match cut.result.as_ref().unwrap() {
        ResponsePayload::Train {
            goals_completed,
            goals_total,
            ..
        } => {
            assert!(
                goals_completed < goals_total,
                "deadline should cut training"
            );
            assert!(*goals_completed > 0, "partial progress should be kept");
        }
        other => panic!("expected train payload, got {other:?}"),
    }

    let ask = &responses[2];
    assert_eq!(ask.status, ResponseStatus::Ok);
    match ask.result.as_ref().unwrap() {
        ResponsePayload::Ask {
            verdict,
            confidence,
            ..
        } => {
            assert!(verdict.is_some(), "solar question should reach a verdict");
            assert!(*confidence > 0);
        }
        other => panic!("expected ask payload, got {other:?}"),
    }

    let quiz = &responses[3];
    assert_eq!(quiz.status, ResponseStatus::Degraded);
    match quiz.result.as_ref().unwrap() {
        ResponsePayload::Quiz {
            answered,
            total,
            conclusions,
            ..
        } => {
            assert!(*answered > 0, "deadline leaves partial conclusions");
            assert!(answered < total);
            assert_eq!(conclusions.len(), *answered);
        }
        other => panic!("expected quiz payload, got {other:?}"),
    }

    let retried = &responses[4];
    assert_eq!(retried.status, ResponseStatus::Ok);
    assert_eq!(retried.attempts, 2, "one panic, then a clean retry");
    assert!(retried.retry_wait_us > 0, "backoff must cost virtual time");
    assert_eq!(
        retried.result.as_ref().unwrap(),
        &ResponsePayload::Probe {
            survived_attempt: 1
        }
    );

    let dead = &responses[5];
    assert_eq!(dead.status, ResponseStatus::Failed);
    assert_eq!(dead.attempts, 3, "initial attempt plus two retries");
    assert_eq!(dead.error.as_ref().unwrap().kind, "serve.session_panicked");
    assert!(dead.result.is_none());

    let shed = &responses[6];
    assert_eq!(shed.status, ResponseStatus::Rejected);
    assert_eq!(shed.error.as_ref().unwrap().kind, "serve.overloaded");
    assert_eq!(shed.exec_virtual_us, 0, "shed requests never run");
}

/// Satellite: the degraded-quiz blackout scenario. A quiz under a
/// mid-investigation blackout (chaotic network) and a virtual deadline
/// must return the conclusions reached so far with `degraded: true` —
/// and that partial transcript must be byte-identical at 1, 4, and 8
/// workers.
#[test]
fn blackout_quiz_degrades_identically_across_worker_counts() {
    let engine = Arc::new(Engine::new());
    let mut quiz = ServeRequest::new("blackout-quiz", RequestKind::Quiz);
    quiz.fault_intensity = 0.25;
    quiz.fault_seed = 7;
    quiz.deadline_us = Some(110_000_000);
    // A healthy control alongside, so degradation stays per-request.
    let control = ServeRequest::new("control-train", RequestKind::Train);
    let requests = vec![quiz, control];

    let runs: Vec<(String, String, Vec<ServeResponse>)> = [1usize, 4, 8]
        .into_iter()
        .map(|workers| {
            let config = ServeConfig {
                workers,
                ..ServeConfig::default()
            };
            run_batch(&engine, config, &requests)
        })
        .collect();

    assert_eq!(runs[0].0, runs[1].0, "workers=1 vs workers=4 transcript");
    assert_eq!(runs[0].0, runs[2].0, "workers=1 vs workers=8 transcript");
    assert_eq!(runs[0].1, runs[1].1, "workers=1 vs workers=4 trace");
    assert_eq!(runs[0].1, runs[2].1, "workers=1 vs workers=8 trace");

    let quiz_response = &runs[0].2[0];
    assert_eq!(quiz_response.status, ResponseStatus::Degraded);
    assert!(quiz_response.degraded);
    assert_eq!(
        quiz_response.error.as_ref().unwrap().kind,
        "serve.deadline_exceeded"
    );
    match quiz_response.result.as_ref().unwrap() {
        ResponsePayload::Quiz {
            answered, total, ..
        } => {
            assert!(
                *answered > 0 && answered < total,
                "blackout + deadline should leave a partial quiz, got {answered}/{total}"
            );
        }
        other => panic!("expected quiz payload, got {other:?}"),
    }
    let control_response = &runs[0].2[1];
    assert_eq!(control_response.status, ResponseStatus::Ok);
    assert!(!control_response.degraded);
}

/// Graph-retrieval mode (ISSUE 7) keeps the serve determinism bar:
/// the same batch with `graph_retrieval: true` is byte-identical in
/// transcript and trace at 1, 4, and 8 workers — and the flag-off
/// transcript is byte-identical to the default server's, because the
/// claim graph is only *consulted* when the flag is on.
#[test]
fn graph_retrieval_batches_are_deterministic_across_workers() {
    let engine = Arc::new(Engine::new());
    let mut ask = ServeRequest::new("ask-graph", RequestKind::Ask);
    ask.question = Some(SOLAR_QUESTION.to_string());
    ask.seed = 2;
    let train = ServeRequest::new("train-graph", RequestKind::Train);
    let requests = vec![train, ask];

    let runs: Vec<(String, String, Vec<ServeResponse>)> = [1usize, 4, 8]
        .into_iter()
        .map(|workers| {
            let config = ServeConfig {
                workers,
                graph_retrieval: true,
                ..ServeConfig::default()
            };
            run_batch(&engine, config, &requests)
        })
        .collect();
    assert_eq!(runs[0].0, runs[1].0, "graph transcript: workers 1 vs 4");
    assert_eq!(runs[0].0, runs[2].0, "graph transcript: workers 1 vs 8");
    assert_eq!(runs[0].1, runs[1].1, "graph trace: workers 1 vs 4");
    assert_eq!(runs[0].1, runs[2].1, "graph trace: workers 1 vs 8");
    match runs[0].2[1].result.as_ref().unwrap() {
        ResponsePayload::Ask { verdict, .. } => {
            assert!(verdict.is_some(), "graph retrieval still reaches a verdict");
        }
        other => panic!("expected ask payload, got {other:?}"),
    }

    // Legacy parity at the serve layer: flag off == default server.
    let (flag_off, _, _) = run_batch(
        &engine,
        ServeConfig {
            graph_retrieval: false,
            ..ServeConfig::default()
        },
        &requests,
    );
    let (default_cfg, _, _) = run_batch(&engine, ServeConfig::default(), &requests);
    assert_eq!(flag_off, default_cfg, "flag-off serve must stay legacy");
}

/// Overload produces a typed `serve.overloaded` response within the
/// arrival's own virtual tick — every request is answered, none hang,
/// none queue.
#[test]
fn overload_sheds_typed_within_one_virtual_tick() {
    let engine = Arc::new(Engine::new());
    let config = ServeConfig {
        workers: 4,
        admission: AdmissionConfig {
            rate_per_sec: 0.001,
            burst: 1,
            arrival_spacing: Duration::from_millis(250),
            lanes: 4,
            max_queue_wait: Duration::from_secs(600),
        },
        ..ServeConfig::default()
    };
    // Cheap requests: probes that survive attempt 0 without panicking.
    let requests: Vec<ServeRequest> = (0..6)
        .map(|i| {
            let mut req = ServeRequest::new(format!("burst-{i}"), RequestKind::PanicProbe);
            req.probe_panics = Some(0);
            req
        })
        .collect();

    let (_, _, responses) = run_batch(&engine, config, &requests);
    assert_eq!(responses.len(), 6, "every request gets a response");
    assert_eq!(responses[0].status, ResponseStatus::Ok);
    for (i, response) in responses.iter().enumerate().skip(1) {
        assert_eq!(response.status, ResponseStatus::Rejected, "request {i}");
        let error = response.error.as_ref().unwrap();
        assert_eq!(error.kind, "serve.overloaded");
        assert!(error.message.contains("retry after"), "{}", error.message);
        // Decided at the arrival instant: no queueing, no execution.
        assert_eq!(response.arrival_us, i as u64 * 250_000);
        assert_eq!(response.queue_us, 0);
        assert_eq!(response.exec_virtual_us, 0);
        assert_eq!(response.attempts, 0);
    }
}

/// A panicking session takes down neither its neighbors nor the
/// server: the poisoned request gets a typed failure after retries and
/// the server keeps serving.
#[test]
fn panics_are_isolated_and_the_server_survives() {
    let engine = Arc::new(Engine::new());
    let server = Server::with_engine(engine, ServeConfig::default());

    let poison = ServeRequest::new("poison", RequestKind::PanicProbe);
    let mut neighbor = ServeRequest::new("neighbor", RequestKind::Train);
    neighbor.deadline_us = Some(5_000_000);

    let responses = server.handle_batch(&[poison.clone(), neighbor.clone()], None);
    assert_eq!(responses[0].status, ResponseStatus::Failed);
    assert_eq!(responses[0].attempts, 3);
    let error = responses[0].error.as_ref().unwrap();
    assert_eq!(error.kind, "serve.session_panicked");
    assert!(
        error.message.contains("panic probe poison detonated"),
        "panic payload should surface: {}",
        error.message
    );
    assert_eq!(responses[1].status, ResponseStatus::Degraded);

    // The supervisor returned the worker to the pool: same server,
    // next batch, unremarkable service.
    let again = server.handle_batch(&[neighbor], None);
    assert_eq!(again[0].status, ResponseStatus::Degraded);
    assert!(again[0].result.is_some());
}

/// Transient faults retry with seeded backoff; the retry cost is
/// visible on the response and deterministic per request index.
#[test]
fn retry_backoff_is_deterministic_and_accounted() {
    let engine = Arc::new(Engine::new());
    let server = Server::with_engine(engine, ServeConfig::default());
    let mut probe = ServeRequest::new("flaky", RequestKind::PanicProbe);
    probe.probe_panics = Some(2);

    let first = server.handle_batch(std::slice::from_ref(&probe), None);
    let second = server.handle_batch(std::slice::from_ref(&probe), None);
    assert_eq!(first, second, "retry schedule must replay exactly");
    assert_eq!(first[0].status, ResponseStatus::Ok);
    assert_eq!(first[0].attempts, 3, "panics on attempts 0 and 1");
    assert!(first[0].retry_wait_us > 0);
    assert_eq!(
        first[0].result.as_ref().unwrap(),
        &ResponsePayload::Probe {
            survived_attempt: 2
        }
    );
}

/// Every request shows up in the causal trace tree as a
/// `serve.request` root span enclosing the admission point, any queue
/// wait, and the session execution (whose own spans nest inside).
#[test]
fn every_request_lands_in_the_trace_tree() {
    let engine = Arc::new(Engine::new());
    let mut train = ServeRequest::new("traced-train", RequestKind::Train);
    train.deadline_us = Some(5_000_000);
    let mut probe = ServeRequest::new("traced-probe", RequestKind::PanicProbe);
    probe.probe_panics = Some(1);
    let requests = vec![train, probe];

    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let (_, trace, responses) = run_batch(&engine, config, &requests);
    assert_eq!(responses.len(), 2);
    let events = parse_jsonl(&trace).expect("trace parses");

    for session in 0..requests.len() as u32 {
        let mine: Vec<_> = events.iter().filter(|e| e.session == session).collect();
        let root = mine
            .iter()
            .find(|e| e.stage == "serve" && e.name == "request" && e.class == EventClass::Span)
            .unwrap_or_else(|| panic!("session {session} missing serve.request root span"));
        assert_eq!(root.parent_id, 0, "serve.request is the session root");

        let admitted = mine
            .iter()
            .find(|e| e.stage == "serve" && e.name == "admitted")
            .expect("admission point present");
        assert_eq!(
            admitted.parent_id, root.span_id,
            "admission point nests under serve.request"
        );

        let exec = mine
            .iter()
            .find(|e| {
                e.stage == "serve"
                    && (e.name == "exec" || e.name == "degraded")
                    && e.class == EventClass::Span
            })
            .expect("execution span present");
        assert_eq!(exec.parent_id, root.span_id);

        // The session's own tree hangs off the request's exec scope —
        // the train request must show cycle/fetch/llm activity inside.
        if session == 0 {
            let session_spans = mine.iter().filter(|e| e.stage != "serve").count();
            assert!(
                session_spans > 0,
                "session work should be traced inside the request"
            );
        } else {
            // The retried probe leaves a panic point, a retry point,
            // and one exec span per attempt.
            assert!(mine.iter().any(|e| e.name == "panic"));
            assert!(mine.iter().any(|e| e.name == "retry"));
            let execs = mine
                .iter()
                .filter(|e| {
                    e.stage == "serve"
                        && e.class == EventClass::Span
                        && (e.name == "exec" || e.name == "panicked")
                })
                .count();
            assert_eq!(execs, 2, "one span per attempt");
        }
    }
}

/// Scenario-parameterised requests (ISSUE 8): a request naming a
/// registered scenario runs against that scenario's corpus and quiz;
/// an explicit `solar-superstorm` is byte-identical to the default;
/// an unknown scenario fails validation with a typed config error.
#[test]
fn scenario_requests_route_to_their_own_quiz() {
    let engine = Arc::new(Engine::new());
    let server = Server::with_engine(Arc::clone(&engine), ServeConfig::default());

    let mut leak_quiz = ServeRequest::new("leak-quiz", RequestKind::Quiz);
    leak_quiz.scenario = "route-leak".into();
    let responses = server.handle_batch(std::slice::from_ref(&leak_quiz), None);
    assert_eq!(responses[0].status, ResponseStatus::Ok);
    match responses[0].result.as_ref().unwrap() {
        ResponsePayload::Quiz {
            answered,
            total,
            conclusions,
            ..
        } => {
            assert_eq!(answered, total, "no deadline: the full quiz runs");
            let ids: Vec<&str> = conclusions.iter().map(|c| c.id.as_str()).collect();
            assert!(
                ids.contains(&"RouteLeakCause"),
                "quiz follows the requested scenario, got {ids:?}"
            );
        }
        other => panic!("expected quiz payload, got {other:?}"),
    }

    // Explicit solar == default (the legacy path is untouched).
    let implicit = ServeRequest::new("solar", RequestKind::Train);
    let mut explicit = ServeRequest::new("solar", RequestKind::Train);
    explicit.scenario = "solar-superstorm".into();
    let (a, trace_a, _) = run_batch(
        &engine,
        ServeConfig::default(),
        std::slice::from_ref(&implicit),
    );
    let (b, trace_b, _) = run_batch(
        &engine,
        ServeConfig::default(),
        std::slice::from_ref(&explicit),
    );
    assert_eq!(a, b, "explicit solar-superstorm must stay legacy");
    assert_eq!(trace_a, trace_b, "explicit solar trace must stay legacy");

    // Unknown scenarios are the caller's fault: typed, never executed.
    let mut bogus = ServeRequest::new("bogus", RequestKind::Train);
    bogus.scenario = "volcanic-winter".into();
    let rejected = server.handle_batch(std::slice::from_ref(&bogus), None);
    assert_eq!(rejected[0].status, ResponseStatus::Failed);
    let error = rejected[0].error.as_ref().unwrap();
    assert_eq!(error.kind, "config");
    assert!(
        error.message.contains("volcanic-winter"),
        "{}",
        error.message
    );
    assert_eq!(rejected[0].exec_virtual_us, 0, "never ran");
}

/// `serve_jsonl` round-trips the whole wire path: JSONL in, JSONL out,
/// byte-identical across repeated calls.
#[test]
fn serve_jsonl_round_trip_is_stable() {
    let engine = Arc::new(Engine::new());
    let server = Server::with_engine(engine, ServeConfig::default());
    let input = concat!(
        r#"{"id":"t1","kind":"train","deadline_us":5000000}"#,
        "\n",
        r#"{"id":"p1","kind":"panic_probe","probe_panics":0}"#,
        "\n",
    );
    let first = server.serve_jsonl(input, None).expect("serves");
    let second = server.serve_jsonl(input, None).expect("serves");
    assert_eq!(first, second);
    let responses = ira_serve::parse_responses(&first).expect("parses back");
    assert_eq!(responses.len(), 2);
    assert_eq!(responses[0].id, "t1");
    assert_eq!(responses[0].status, ResponseStatus::Degraded);
    assert_eq!(responses[1].status, ResponseStatus::Ok);
}
