//! Deterministic admission control.
//!
//! The controller decides — at intake, in request order, on a single
//! thread — whether each request is admitted and how long it waits
//! before execution. Decisions are computed against a purely *virtual*
//! model of the server: a [`TokenBucket`] driven by a synthetic arrival
//! clock (requests arrive `arrival_spacing` apart) and a fixed-lane
//! queue model with nominal per-kind service costs. Crucially, nothing
//! here observes real worker progress, so the shed/queue-wait outcome
//! for a request set is a pure function of the request order and the
//! [`AdmissionConfig`] — identical at `--workers 1` and `--workers 8`.
//!
//! The price of that determinism is that the queue model is nominal
//! rather than measured; the bench reports both modeled and host
//! timings so the gap stays visible.

use ira_simnet::clock::{Duration, Instant};
use ira_simnet::ratelimit::{Acquire, TokenBucket};

/// Static admission policy.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Token-bucket steady admission rate, requests per virtual second.
    pub rate_per_sec: f64,
    /// Token-bucket burst capacity.
    pub burst: u32,
    /// Synthetic gap between consecutive arrivals on the batch's
    /// arrival clock.
    pub arrival_spacing: Duration,
    /// Modeled service parallelism (NOT the real worker count — the
    /// model must not know it, or determinism across `--workers` dies).
    pub lanes: usize,
    /// Admitted requests whose modeled queue wait would exceed this are
    /// shed instead — the bounded-queue guarantee.
    pub max_queue_wait: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate_per_sec: 2.0,
            burst: 8,
            arrival_spacing: Duration::from_millis(250),
            lanes: 4,
            max_queue_wait: Duration::from_secs(600),
        }
    }
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The token bucket was empty at arrival.
    RateLimited,
    /// The modeled queue wait exceeded `max_queue_wait`.
    QueueFull,
}

impl ShedReason {
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate limited",
            ShedReason::QueueFull => "queue full",
        }
    }
}

/// Outcome of one admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run it, after `queue_wait` of modeled queueing.
    Admitted {
        arrival: Instant,
        queue_wait: Duration,
    },
    /// Typed rejection, decided within the same virtual tick as the
    /// arrival (no queueing, no hang).
    Shed {
        arrival: Instant,
        reason: ShedReason,
        retry_after: Duration,
    },
}

/// The intake-side scheduler state: one bucket plus the modeled lanes'
/// busy-until horizons.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    bucket: TokenBucket,
    /// Modeled time at which each lane frees up.
    lanes: Vec<Instant>,
    arrivals: u64,
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> Self {
        assert!(config.lanes >= 1, "admission model needs at least 1 lane");
        let bucket = TokenBucket::new(config.burst.max(1), config.rate_per_sec);
        let lanes = vec![Instant::EPOCH; config.lanes];
        AdmissionController {
            config,
            bucket,
            lanes,
            arrivals: 0,
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decide the next request (requests arrive in call order). `cost`
    /// is the kind's nominal service time charged to the chosen lane.
    pub fn admit(&mut self, cost: Duration) -> Admission {
        let arrival = Instant::EPOCH
            + Duration::from_micros(self.arrivals * self.config.arrival_spacing.as_micros());
        self.arrivals += 1;

        if let Acquire::Denied { retry_after } = self.bucket.try_acquire(arrival) {
            return Admission::Shed {
                arrival,
                reason: ShedReason::RateLimited,
                retry_after,
            };
        }

        // Earliest-free lane; ties break to the lowest index, which is
        // deterministic because intake is single-threaded.
        let lane = (0..self.lanes.len())
            .min_by_key(|&i| self.lanes[i])
            .expect("at least one lane");
        let start = self.lanes[lane].max(arrival);
        let queue_wait = start.duration_since(arrival);
        if queue_wait > self.config.max_queue_wait {
            // The token stays consumed — shedding must not make room
            // for a later, lower-priority arrival to jump the bucket.
            return Admission::Shed {
                arrival,
                reason: ShedReason::QueueFull,
                retry_after: queue_wait,
            };
        }
        self.lanes[lane] = start + cost;
        Admission::Admitted {
            arrival,
            queue_wait,
        }
    }

    /// Consume the next arrival slot *without* charging the token
    /// bucket or a lane, returning the arrival instant. Control-plane
    /// requests (`stats`) use this: they occupy a position on the
    /// arrival clock but spend no tokens and hold no lane, so they can
    /// never be shed and never displace a billable request's admission
    /// decision.
    pub fn observe_arrival(&mut self) -> Instant {
        let arrival = Instant::EPOCH
            + Duration::from_micros(self.arrivals * self.config.arrival_spacing.as_micros());
        self.arrivals += 1;
        arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(rate: f64, burst: u32, lanes: usize, max_wait_s: u64) -> AdmissionConfig {
        AdmissionConfig {
            rate_per_sec: rate,
            burst,
            arrival_spacing: Duration::from_millis(100),
            lanes,
            max_queue_wait: Duration::from_secs(max_wait_s),
        }
    }

    #[test]
    fn burst_overflow_is_shed_immediately_with_a_hint() {
        let mut ctl = AdmissionController::new(config(0.1, 2, 4, 600));
        let cost = Duration::from_secs(1);
        assert!(matches!(ctl.admit(cost), Admission::Admitted { .. }));
        assert!(matches!(ctl.admit(cost), Admission::Admitted { .. }));
        match ctl.admit(cost) {
            Admission::Shed {
                reason,
                retry_after,
                ..
            } => {
                assert_eq!(reason, ShedReason::RateLimited);
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected rate-limit shed, got {other:?}"),
        }
    }

    #[test]
    fn queue_wait_grows_once_lanes_are_busy() {
        // 1 lane, 10s jobs, arrivals 100ms apart: request i waits about
        // i*10s - i*100ms.
        let mut ctl = AdmissionController::new(config(1000.0, 1000, 1, 600));
        let cost = Duration::from_secs(10);
        let waits: Vec<u64> = (0..3)
            .map(|_| match ctl.admit(cost) {
                Admission::Admitted { queue_wait, .. } => queue_wait.as_micros(),
                other => panic!("unexpected shed: {other:?}"),
            })
            .collect();
        assert_eq!(waits[0], 0);
        assert_eq!(waits[1], 9_900_000);
        assert_eq!(waits[2], 19_800_000);
    }

    #[test]
    fn excessive_modeled_wait_sheds_as_queue_full() {
        let mut ctl = AdmissionController::new(config(1000.0, 1000, 1, 5));
        let cost = Duration::from_secs(10);
        assert!(matches!(ctl.admit(cost), Admission::Admitted { .. }));
        match ctl.admit(cost) {
            Admission::Shed { reason, .. } => assert_eq!(reason, ShedReason::QueueFull),
            other => panic!("expected queue-full shed, got {other:?}"),
        }
    }

    #[test]
    fn observe_arrival_advances_the_clock_without_spending_tokens() {
        // burst 1: a second billable admit would normally be shed, so
        // interleaving observations must not consume the only token.
        let mut ctl = AdmissionController::new(config(0.1, 1, 4, 600));
        assert_eq!(ctl.observe_arrival(), Instant::EPOCH);
        assert_eq!(
            ctl.observe_arrival(),
            Instant::EPOCH + Duration::from_millis(100)
        );
        match ctl.admit(Duration::from_secs(1)) {
            Admission::Admitted { arrival, .. } => {
                assert_eq!(arrival, Instant::EPOCH + Duration::from_millis(200));
            }
            other => panic!("token must still be available, got {other:?}"),
        }
    }

    #[test]
    fn decisions_are_reproducible() {
        let run = || {
            let mut ctl = AdmissionController::new(config(2.0, 4, 2, 30));
            (0..20)
                .map(|i| ctl.admit(Duration::from_secs(if i % 3 == 0 { 20 } else { 5 })))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
