//! # ira-serve
//!
//! The resilient multi-tenant serve layer: a long-running front-end
//! that accepts investigation requests as JSONL and multiplexes them
//! across a bounded worker pool fed by the [`ira_engine::Engine`]'s
//! shared corpus cache.
//!
//! The paper's vision is an *interactive* agent investigators query
//! during a live incident, so the contract here is robustness first:
//!
//! - [`admission`] — deterministic admission control: a
//!   [`TokenBucket`](ira_simnet::ratelimit::TokenBucket) over a
//!   synthetic arrival clock plus a fixed-lane queue model. Overload
//!   produces typed `serve.overloaded` rejections within one virtual
//!   tick, never unbounded queueing.
//! - [`server`] — per-request virtual-time deadlines with cooperative
//!   cancellation (partial, `degraded: true` results), `catch_unwind`
//!   panic isolation, and seeded full-jitter retry of transient
//!   session faults.
//! - [`protocol`] — the JSONL request/response wire format.
//!
//! Determinism carries over from the rest of the workspace: identical
//! request batches produce byte-identical response transcripts and
//! traces regardless of worker count or interleaving, and every
//! request lands in the causal trace tree as a `serve.request` span
//! enclosing admission, queue wait, and session execution.
//!
//! Live telemetry rides the same contract: the server keeps a
//! sliding-window SLO ledger ([`ira_obs::LiveStats`]) fed at intake
//! and merge time — both single-threaded, in request order — so the
//! snapshot returned by a [`RequestKind::Stats`] control-plane request
//! (or [`Server::live_snapshot`]) is byte-identical at any worker
//! count; and an always-on [`ira_obs::FlightRecorder`] sink captures a
//! bounded per-session window of recent events, frozen to a JSONL
//! post-mortem dump whenever a request panics, sheds, or misses its
//! deadline.

pub mod admission;
pub mod protocol;
pub mod server;

pub use admission::{Admission, AdmissionConfig, AdmissionController, ShedReason};
pub use protocol::{
    parse_requests, parse_responses, render_responses, QuizConclusion, RequestKind,
    ResponsePayload, ResponseStatus, ServeRequest, ServeResponse,
};
pub use server::{nominal_cost, slo_sample, RetrySpec, ServeConfig, Server};
