//! The serve loop: admission → bounded worker pool → typed responses.
//!
//! Robustness contract:
//! - **Bounded and typed overload**: admission decisions happen at
//!   intake in request order; shed requests get a `serve.overloaded`
//!   response immediately, never a hang ([`crate::admission`]).
//! - **Deadlines with graceful degradation**: a session that exhausts
//!   its virtual-time budget stops cooperatively and returns the
//!   conclusions reached so far with `degraded: true`.
//! - **Panic isolation**: every attempt runs under `catch_unwind`; a
//!   poisoned request becomes a `serve.session_panicked` response while
//!   the worker returns to the pool.
//! - **Retry with seeded jitter**: transient faults (a panicked
//!   session) are retried on a re-provisioned session with full-jitter
//!   backoff; the jitter stream is derived from the request index, so
//!   retries are deterministic too.
//!
//! Determinism: each request's session runs on exactly one worker
//! thread with its own virtual clock, admission is single-threaded,
//! and responses are merged back in request order by [`try_sweep`] —
//! so the response transcript (and the trace) is byte-identical across
//! worker counts, interleavings, and repeated runs.

use crate::admission::{Admission, AdmissionConfig, AdmissionController};
use crate::protocol::{
    parse_requests, render_responses, QuizConclusion, RequestKind, ResponsePayload, ResponseStatus,
    ServeRequest, ServeResponse,
};
use ira_core::{AgentConfig, RoleDefinition};
use ira_engine::{Engine, FaultSpec, Session, SessionConfig};
use ira_evalkit::runner::{panic_message, try_sweep};
use ira_evalkit::{ConsistencyReport, QuizBank};
use ira_obs::{stage, LiveSnapshot, LiveStats, ObsHandle, SharedCollector, SloSample, TraceEvent};
use ira_services::{IraError, TimeSource, WireError};
use ira_simnet::clock::Duration;
use ira_simnet::retry::Backoff;
use ira_webcorpus::CorpusConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Retry policy for transient session faults.
#[derive(Debug, Clone, Copy)]
pub struct RetrySpec {
    /// Maximum retries per request (total attempts = retries + 1).
    pub max_retries: u32,
    /// Backoff schedule; the per-request jitter stream is seeded from
    /// `backoff.jitter_seed` mixed with the request index.
    pub backoff: Backoff,
}

impl Default for RetrySpec {
    fn default() -> Self {
        RetrySpec {
            max_retries: 2,
            backoff: Backoff {
                initial: Duration::from_millis(200),
                factor: 2.0,
                max: Duration::from_secs(5),
                jitter: true,
                jitter_seed: 0x5E21,
            },
        }
    }
}

/// Static server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Real worker threads executing admitted sessions. Affects wall
    /// time only — responses and traces are invariant under it.
    pub workers: usize,
    pub admission: AdmissionConfig,
    pub retry: RetrySpec,
    /// Deadline applied when a request carries none.
    pub default_deadline_us: Option<u64>,
    /// Corpus seed shared by every session (the cache key's first
    /// half), so all tenants at one distractor count share one corpus.
    pub corpus_seed: u64,
    /// Run every session's memory in graph-retrieval mode (the claim
    /// graph's corroboration term joins the retrieval score). Off by
    /// default: legacy-parity answers, byte-identical to earlier
    /// releases. A runtime toggle only — it never changes what is
    /// persisted.
    pub graph_retrieval: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            admission: AdmissionConfig::default(),
            retry: RetrySpec::default(),
            default_deadline_us: None,
            corpus_seed: 0xC0FFEE,
            graph_retrieval: false,
        }
    }
}

/// Nominal virtual service cost per request kind, used only by the
/// admission queue model (real execution is measured, not assumed).
pub fn nominal_cost(kind: RequestKind) -> Duration {
    match kind {
        RequestKind::Train => Duration::from_secs(10),
        RequestKind::Quiz => Duration::from_secs(60),
        RequestKind::Ask => Duration::from_secs(20),
        RequestKind::PanicProbe => Duration::from_secs(1),
        // Control plane: answered at intake, never holds a lane.
        RequestKind::Stats => Duration::ZERO,
    }
}

/// Derive the combined [`SloSample`] for one `(request, response)`
/// pair — the replay form used by `ira serve --stats-every` and the
/// load generator's SLO summary. Folding these samples into a
/// [`LiveStats`] in request order reproduces exactly what the server's
/// own live ledger recorded for the batch.
pub fn slo_sample(request: &ServeRequest, response: &ServeResponse) -> SloSample {
    let mut sample = SloSample::new(
        response.arrival_us,
        request.scenario.clone(),
        request.kind.as_str(),
    );
    match response.status {
        ResponseStatus::Rejected => sample.shed = true,
        // attempts == 0 means no session ever ran: validation failure
        // (stats responses are Ok and land in the admitted arm).
        ResponseStatus::Failed if response.attempts == 0 => sample.invalid = true,
        _ => sample.admitted = true,
    }
    let executed = response.attempts > 0;
    sample.ok = executed && response.status == ResponseStatus::Ok;
    sample.degraded = response.status == ResponseStatus::Degraded;
    sample.failed = executed && response.status == ResponseStatus::Failed;
    sample.deadline_miss = response
        .error
        .as_ref()
        .is_some_and(|e| e.kind == "serve.deadline_exceeded");
    sample.retries = u64::from(response.attempts.saturating_sub(1));
    if executed {
        sample.queue_us = Some(response.queue_us);
        sample.exec_us = Some(response.exec_virtual_us);
    }
    sample
}

/// Seed strides mixed into per-attempt session provisioning. A retry
/// re-provisions the session with a shifted network seed — otherwise a
/// fully deterministic session would reproduce the identical fault.
const NET_SEED_BASE: u64 = 0xBEEF;
const LLM_SEED_BASE: u64 = 0xB0B;
const ATTEMPT_NET_STRIDE: u64 = 0x51F5_0000_0001;

struct Job {
    index: usize,
    request: ServeRequest,
    arrival_us: u64,
    queue_us: u64,
}

/// A blank intake-phase sample; the caller sets exactly one of the
/// admission-decision flags.
fn intake_sample(request: &ServeRequest, at_us: u64) -> SloSample {
    SloSample::new(at_us, request.scenario.clone(), request.kind.as_str())
}

struct Execution {
    payload: ResponsePayload,
    degraded: bool,
}

struct AttemptOk {
    payload: ResponsePayload,
    degraded: bool,
    end_us: u64,
}

struct AttemptFault {
    error: IraError,
    end_us: u64,
}

/// The long-running service: one shared [`Engine`] (world + corpus
/// cache) plus the static [`ServeConfig`]. The engine is behind an
/// [`Arc`] so several servers (say, the same workload at different
/// worker counts) can share one corpus cache.
pub struct Server {
    engine: Arc<Engine>,
    config: ServeConfig,
    /// Live SLO ledger, persistent across batches. Only ever touched
    /// from single-threaded phases (intake, post-merge) in request
    /// order, which keeps snapshots worker-invariant.
    live: Mutex<LiveStats>,
}

impl Server {
    pub fn new(config: ServeConfig) -> Self {
        Server {
            engine: Arc::new(Engine::new()),
            config,
            live: Mutex::new(LiveStats::default()),
        }
    }

    /// A server over a caller-supplied engine (shared corpus cache).
    pub fn with_engine(engine: Arc<Engine>, config: ServeConfig) -> Self {
        Server {
            engine,
            config,
            live: Mutex::new(LiveStats::default()),
        }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The server's live telemetry at virtual instant `at_us` — the
    /// same snapshot a `stats` request arriving then would observe.
    pub fn live_snapshot(&self, at_us: u64) -> LiveSnapshot {
        self.live.lock().expect("live stats lock").snapshot(at_us)
    }

    fn record_live(&self, sample: &SloSample) {
        self.live.lock().expect("live stats lock").record(sample);
    }

    /// Serve one JSONL batch end to end: parse, handle, render.
    pub fn serve_jsonl(
        &self,
        input: &str,
        sink: Option<SharedCollector>,
    ) -> Result<String, IraError> {
        let requests = parse_requests(input)?;
        let responses = self.handle_batch(&requests, sink);
        Ok(render_responses(&responses))
    }

    /// Handle a request batch: admission at intake (single-threaded, in
    /// request order), execution on `workers` threads, responses merged
    /// back in request order. Every request gets exactly one response.
    pub fn handle_batch(
        &self,
        requests: &[ServeRequest],
        sink: Option<SharedCollector>,
    ) -> Vec<ServeResponse> {
        let mut admission = AdmissionController::new(self.config.admission.clone());
        let mut slots: Vec<Option<ServeResponse>> = requests.iter().map(|_| None).collect();
        let mut jobs: Vec<Job> = Vec::new();

        for (index, request) in requests.iter().enumerate() {
            let session_id = index as u32;
            if let Err(error) = request.validate() {
                // Invalid before admission: typed failure, no token spent.
                self.emit_intake_reject(&sink, session_id, request, "invalid", &error);
                slots[index] = Some(ServeResponse::invalid(request, 0, &error));
                // Still consumes an arrival slot on the synthetic clock.
                let _ = admission.admit(Duration::ZERO);
                let mut sample = intake_sample(request, 0);
                sample.invalid = true;
                self.record_live(&sample);
                continue;
            }
            if request.kind == RequestKind::Stats {
                // Control plane: answered here at intake, where every
                // prior request's admission decision (and every prior
                // batch's outcomes) are already in the ledger — so the
                // snapshot is worker-invariant by construction. Spends
                // an arrival slot but no token; can never be shed.
                let arrival_us = admission.observe_arrival().as_micros();
                let snapshot = self
                    .live
                    .lock()
                    .expect("live stats lock")
                    .snapshot(arrival_us);
                self.emit_stats(&sink, session_id, request, arrival_us);
                slots[index] = Some(ServeResponse {
                    id: request.id.clone(),
                    status: ResponseStatus::Ok,
                    degraded: false,
                    error: None,
                    arrival_us,
                    queue_us: 0,
                    retry_wait_us: 0,
                    exec_virtual_us: 0,
                    attempts: 0,
                    result: Some(ResponsePayload::Stats { snapshot }),
                });
                // The probe itself is counted *after* it answered, so a
                // lone stats request reports an empty window rather
                // than observing itself.
                let mut sample = intake_sample(request, arrival_us);
                sample.admitted = true;
                self.record_live(&sample);
                continue;
            }
            match admission.admit(nominal_cost(request.kind)) {
                Admission::Admitted {
                    arrival,
                    queue_wait,
                } => {
                    let mut sample = intake_sample(request, arrival.as_micros());
                    sample.admitted = true;
                    self.record_live(&sample);
                    jobs.push(Job {
                        index,
                        request: request.clone(),
                        arrival_us: arrival.as_micros(),
                        queue_us: queue_wait.as_micros(),
                    });
                }
                Admission::Shed {
                    arrival,
                    reason,
                    retry_after,
                } => {
                    let error = IraError::overloaded(reason.as_str(), retry_after.as_micros());
                    self.emit_intake_reject(&sink, session_id, request, "shed", &error);
                    slots[index] = Some(ServeResponse::rejected(
                        request,
                        arrival.as_micros(),
                        &error,
                    ));
                    let mut sample = intake_sample(request, arrival.as_micros());
                    sample.shed = true;
                    self.record_live(&sample);
                }
            }
        }

        // Supervisor-level double-fault guard: run_job already catches
        // session panics, so a SweepPanic here means the serve plumbing
        // itself panicked — still answer the request instead of dying.
        let meta: Vec<(usize, String)> = jobs
            .iter()
            .map(|job| (job.index, job.request.id.clone()))
            .collect();
        let outcomes = try_sweep(jobs, self.config.workers, |_, job| {
            (job.index, self.run_job(job, &sink))
        });
        for (job_pos, outcome) in outcomes.into_iter().enumerate() {
            let (index, id) = &meta[job_pos];
            slots[*index] = Some(match outcome {
                Ok((_, response)) => response,
                Err(sweep_panic) => {
                    let error = IraError::session_panicked(&sweep_panic.message);
                    ServeResponse {
                        id: id.clone(),
                        status: ResponseStatus::Failed,
                        degraded: false,
                        error: Some(WireError::from(&error)),
                        arrival_us: 0,
                        queue_us: 0,
                        retry_wait_us: 0,
                        exec_virtual_us: 0,
                        attempts: 0,
                        result: None,
                    }
                }
            });
        }

        let responses: Vec<ServeResponse> = slots
            .into_iter()
            .map(|slot| slot.expect("every request produced exactly one response"))
            .collect();

        // Fold execution outcomes into the live ledger, single-threaded
        // in request order (the intake flags were recorded at admission
        // time, so they are zeroed here to avoid double counting).
        for (request, response) in requests.iter().zip(&responses) {
            if response.attempts > 0 {
                let mut sample = slo_sample(request, response);
                sample.admitted = false;
                sample.shed = false;
                sample.invalid = false;
                self.record_live(&sample);
            }
        }
        responses
    }

    fn emit_intake_reject(
        &self,
        sink: &Option<SharedCollector>,
        session_id: u32,
        request: &ServeRequest,
        name: &'static str,
        error: &IraError,
    ) {
        if let Some(sink) = sink {
            let obs = ObsHandle::new(sink.clone(), session_id);
            let scope = obs.scope(0, stage::SERVE, "request");
            let kind = error.kind();
            obs.emit(|| {
                TraceEvent::point(
                    session_id,
                    0,
                    stage::SERVE,
                    name,
                    format!("id={} kind={}", request.id, kind),
                )
            });
            scope.finish_as(0, "rejected", || format!("id={}", request.id));
        }
    }

    fn emit_stats(
        &self,
        sink: &Option<SharedCollector>,
        session_id: u32,
        request: &ServeRequest,
        arrival_us: u64,
    ) {
        if let Some(sink) = sink {
            let obs = ObsHandle::new(sink.clone(), session_id);
            let scope = obs.scope(0, stage::SERVE, "request");
            obs.emit(|| {
                TraceEvent::point(
                    session_id,
                    0,
                    stage::SERVE,
                    "stats",
                    format!("id={} arrival_us={arrival_us}", request.id),
                )
            });
            scope.finish_as(0, "stats", || format!("id={}", request.id));
        }
    }

    /// One admitted request: the `serve.request` root span encloses the
    /// admission point, queue-wait span, every attempt's `serve.exec`
    /// span (which in turn parents the session's own cycle/fetch/LLM
    /// tree), and any retry points.
    fn run_job(&self, job: Job, sink: &Option<SharedCollector>) -> ServeResponse {
        let session_id = job.index as u32;
        let obs = match sink {
            Some(sink) => ObsHandle::new(sink.clone(), session_id),
            None => ObsHandle::disabled(),
        };
        let scope = obs.scope(0, stage::SERVE, "request");
        let request_id = job.request.id.clone();
        let queue_us = job.queue_us;
        obs.emit(|| {
            TraceEvent::point(
                session_id,
                0,
                stage::SERVE,
                "admitted",
                format!("id={request_id} queue_us={queue_us}"),
            )
        });
        if job.queue_us > 0 {
            obs.emit(|| {
                TraceEvent::span(
                    session_id,
                    0,
                    stage::SERVE,
                    "queue",
                    format!("id={request_id}"),
                    queue_us,
                )
            });
        }

        let deadline_us = job
            .request
            .deadline_us
            .or(self.config.default_deadline_us)
            .unwrap_or(u64::MAX);
        // Per-request jitter stream: deterministic, but decorrelated
        // across requests (golden-ratio mix of the request index).
        let backoff = Backoff {
            jitter_seed: self
                .config
                .retry
                .backoff
                .jitter_seed
                .wrapping_add((job.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..self.config.retry.backoff
        };
        let mut rng = backoff.jitter_rng();
        let mut timeline_us = job.queue_us;
        let mut retry_wait_us: u64 = 0;
        let mut attempts: u32 = 0;

        loop {
            let attempt = attempts;
            attempts += 1;
            match self.run_attempt(&job.request, timeline_us, attempt, deadline_us, &obs) {
                Ok(done) => {
                    let status = if done.degraded {
                        ResponseStatus::Degraded
                    } else {
                        ResponseStatus::Ok
                    };
                    let error = done.degraded.then(|| {
                        WireError::from(&IraError::deadline_exceeded(deadline_us, done.end_us))
                    });
                    let outcome = if done.degraded { "degraded" } else { "ok" };
                    scope.finish(done.end_us, || {
                        format!("id={request_id} outcome={outcome} attempts={attempts}")
                    });
                    return ServeResponse {
                        id: job.request.id.clone(),
                        status,
                        degraded: done.degraded,
                        error,
                        arrival_us: job.arrival_us,
                        queue_us: job.queue_us,
                        retry_wait_us,
                        exec_virtual_us: done.end_us.saturating_sub(timeline_us),
                        attempts,
                        result: Some(done.payload),
                    };
                }
                Err(fault) => {
                    let transient = fault.error.kind() == "serve.session_panicked";
                    if transient && attempt < self.config.retry.max_retries {
                        let delay = backoff.delay_with(attempt, &mut rng);
                        let delay_us = delay.as_micros();
                        let end_us = fault.end_us;
                        obs.emit(|| {
                            TraceEvent::point(
                                session_id,
                                end_us,
                                stage::SERVE,
                                "retry",
                                format!("id={request_id} attempt={attempt} backoff_us={delay_us}"),
                            )
                        });
                        retry_wait_us += delay_us;
                        timeline_us = fault.end_us + delay_us;
                        continue;
                    }
                    scope.finish_as(fault.end_us, "failed", || {
                        format!("id={request_id} attempts={attempts}")
                    });
                    return ServeResponse {
                        id: job.request.id.clone(),
                        status: ResponseStatus::Failed,
                        degraded: false,
                        error: Some(WireError::from(&fault.error)),
                        arrival_us: job.arrival_us,
                        queue_us: job.queue_us,
                        retry_wait_us,
                        exec_virtual_us: fault.end_us.saturating_sub(timeline_us),
                        attempts,
                        result: None,
                    };
                }
            }
        }
    }

    /// One attempt on a freshly provisioned session. The session's
    /// virtual clock is pre-advanced to `start_us` (queue wait plus any
    /// accumulated retry backoff), so serve spans and the session's own
    /// spans share one per-request timeline with 0 = admission.
    fn run_attempt(
        &self,
        request: &ServeRequest,
        start_us: u64,
        attempt: u32,
        deadline_us: u64,
        obs: &ObsHandle,
    ) -> Result<AttemptOk, AttemptFault> {
        let session_config = SessionConfig {
            role: RoleDefinition::bob(),
            agent: AgentConfig {
                graph_retrieval: self.config.graph_retrieval,
                ..AgentConfig::default()
            },
            corpus: CorpusConfig {
                seed: self.config.corpus_seed,
                distractor_count: request.distractors,
                // Admission control rejects unknown scenario names, so
                // interning cannot fail here.
                scenario: ira_worldmodel::scenario::static_name(&request.scenario)
                    .expect("scenario validated at admission"),
            },
            net_seed: NET_SEED_BASE
                .wrapping_add(request.seed)
                .wrapping_add(attempt as u64 * ATTEMPT_NET_STRIDE),
            llm_seed: LLM_SEED_BASE.wrapping_add(request.seed),
            faults: (request.fault_intensity > 0.0).then(|| FaultSpec {
                intensity: request.fault_intensity,
                horizon: Duration::from_secs(60),
                seed: request.fault_seed.wrapping_add(attempt as u64),
            }),
        };
        let mut session = self
            .engine
            .spawn_session_with_handle(session_config, obs.clone());
        session.env.client.advance_us(start_us);

        let scope = obs.scope(start_us, stage::SERVE, "exec");
        let session_id = obs.session();
        let request_id = request.id.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.execute(request, &mut session, attempt, deadline_us)
        }));
        match outcome {
            Ok(execution) => {
                let end_us = session.now_us();
                if execution.degraded {
                    obs.emit(|| {
                        TraceEvent::point(
                            session_id,
                            end_us,
                            stage::SERVE,
                            "deadline",
                            format!("id={request_id} deadline_us={deadline_us}"),
                        )
                    });
                }
                scope.finish_as(
                    end_us,
                    if execution.degraded {
                        "degraded"
                    } else {
                        "exec"
                    },
                    || format!("id={request_id} attempt={attempt}"),
                );
                Ok(AttemptOk {
                    payload: execution.payload,
                    degraded: execution.degraded,
                    end_us,
                })
            }
            Err(payload) => {
                // The session is discarded wholesale; its clock is
                // still readable (parking_lot mutexes don't poison),
                // and the panic point is deterministic, so `end_us` is
                // too.
                let end_us = session.now_us();
                let message = panic_message(payload);
                let detail_message = message.clone();
                obs.emit(|| {
                    TraceEvent::point(
                        session_id,
                        end_us,
                        stage::SERVE,
                        "panic",
                        format!("id={request_id} attempt={attempt} message={detail_message}"),
                    )
                });
                scope.finish_as(end_us, "panicked", || {
                    format!("id={request_id} attempt={attempt}")
                });
                Err(AttemptFault {
                    error: IraError::session_panicked(message),
                    end_us,
                })
            }
        }
    }

    /// The session body per kind. Runs under the attempt's
    /// `catch_unwind`; cooperative deadline checks happen at goal and
    /// quiz-item granularity.
    fn execute(
        &self,
        request: &ServeRequest,
        session: &mut Session,
        attempt: u32,
        deadline_us: u64,
    ) -> Execution {
        match request.kind {
            RequestKind::Stats => {
                unreachable!("stats requests are answered at intake and never become jobs")
            }
            RequestKind::PanicProbe => {
                let threshold = request.probe_panics.unwrap_or(u32::MAX);
                if attempt < threshold {
                    panic!("panic probe {} detonated (attempt {attempt})", request.id);
                }
                Execution {
                    payload: ResponsePayload::Probe {
                        survived_attempt: attempt,
                    },
                    degraded: false,
                }
            }
            RequestKind::Train => {
                let report = session.agent.train_until(deadline_us);
                let goals_total = session.agent.role.goals.len();
                let goals_completed = report.per_goal.len();
                Execution {
                    payload: ResponsePayload::Train {
                        goals_completed,
                        goals_total,
                        memory_entries: report.memory_entries,
                    },
                    degraded: goals_completed < goals_total,
                }
            }
            RequestKind::Ask => {
                let question = request.question.as_deref().unwrap_or_default();
                let report = session.agent.train_until(deadline_us);
                let mut degraded = report.per_goal.len() < session.agent.role.goals.len();
                if session.now_us() < deadline_us {
                    session.agent.self_learn(question);
                } else {
                    degraded = true;
                }
                let answer = session.agent.ask(question);
                Execution {
                    payload: ResponsePayload::Ask {
                        text: answer.text,
                        verdict: answer.verdict,
                        confidence: answer.confidence,
                    },
                    degraded,
                }
            }
            RequestKind::Quiz => {
                let report = session.agent.train_until(deadline_us);
                let train_truncated = report.per_goal.len() < session.agent.role.goals.len();
                let quiz = if request.scenario == ira_worldmodel::scenario::SOLAR_SUPERSTORM {
                    // Legacy hot path, byte-for-byte untouched (the
                    // scenario quiz is pinned identical by evalkit
                    // tests, but the baseline traces are sacred).
                    QuizBank::from_world(session.world())
                } else {
                    let scenario = ira_worldmodel::scenario::lookup(&request.scenario)
                        .expect("scenario validated at admission");
                    QuizBank::for_scenario(session.world(), scenario.as_ref())
                };
                let total = quiz.len();
                let mut consistency = ConsistencyReport::new(&request.id);
                let mut answered = 0usize;
                for item in quiz.iter() {
                    if session.now_us() >= deadline_us {
                        break;
                    }
                    session.agent.self_learn(&item.question);
                    let answer = session.agent.ask(&item.question);
                    consistency.add(item, &answer);
                    answered += 1;
                }
                let conclusions = consistency
                    .per_item
                    .iter()
                    .map(|item| QuizConclusion {
                        id: item.id.clone(),
                        verdict: item.verdict.clone(),
                        confidence: item.confidence,
                        consistent: item.matched.consistent,
                    })
                    .collect();
                Execution {
                    payload: ResponsePayload::Quiz {
                        answered,
                        total,
                        consistent: consistency.consistent_count(),
                        conclusions,
                    },
                    degraded: train_truncated || answered < total,
                }
            }
        }
    }
}
