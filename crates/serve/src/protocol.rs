//! The serve layer's JSONL wire protocol.
//!
//! One request per line in, one response per line out, in request
//! order. Responses are a pure function of the request line (plus the
//! server's static [`ServeConfig`]), so transcripts are byte-identical
//! across worker counts and repeated runs — the serve determinism
//! contract that CI enforces.
//!
//! [`ServeConfig`]: crate::ServeConfig

use ira_services::{IraError, WireError};
use serde::{Deserialize, Serialize, Value};

/// What kind of investigation a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Train the session's agent through its role goals.
    Train,
    /// Train, then self-learn and answer the full incident quiz.
    Quiz,
    /// Train, then self-learn and answer one caller-supplied question.
    Ask,
    /// A deliberately poisoned request that panics inside the session —
    /// a chaos probe for the supervisor (tests, load generator).
    PanicProbe,
    /// Control-plane probe: returns the server's live telemetry
    /// snapshot ([`ira_obs::LiveSnapshot`]) as of this request's
    /// arrival. Never admitted against the token bucket, never shed,
    /// never runs a session.
    Stats,
}

impl RequestKind {
    /// Stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Train => "train",
            RequestKind::Quiz => "quiz",
            RequestKind::Ask => "ask",
            RequestKind::PanicProbe => "panic_probe",
            RequestKind::Stats => "stats",
        }
    }
}

// The wire spellings are part of the protocol, so the enums get manual
// serde impls (the derive would use the Rust variant names).
impl Serialize for RequestKind {
    fn serialize_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for RequestKind {
    fn deserialize_value(value: &Value) -> Result<Self, serde::Error> {
        match value.as_str() {
            Some("train") => Ok(RequestKind::Train),
            Some("quiz") => Ok(RequestKind::Quiz),
            Some("ask") => Ok(RequestKind::Ask),
            Some("panic_probe") => Ok(RequestKind::PanicProbe),
            Some("stats") => Ok(RequestKind::Stats),
            _ => Err(serde::Error::type_mismatch(
                "one of train|quiz|ask|panic_probe|stats",
                value,
            )),
        }
    }
}

fn default_distractors() -> usize {
    ira_webcorpus::CorpusConfig::default().distractor_count
}

fn default_scenario() -> String {
    ira_worldmodel::scenario::SOLAR_SUPERSTORM.to_string()
}

/// One investigation request, as parsed from a JSONL line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-chosen identifier, echoed on the response.
    pub id: String,
    pub kind: RequestKind,
    /// The question for [`RequestKind::Ask`]; ignored otherwise.
    #[serde(default)]
    pub question: Option<String>,
    /// Tenant seed: perturbs the session's network/model streams so
    /// distinct tenants get distinct (but each deterministic) runs.
    #[serde(default)]
    pub seed: u64,
    /// Corpus distractor count (part of the corpus cache key).
    #[serde(default = "default_distractors")]
    pub distractors: usize,
    /// Registered scenario to investigate; the corpus and the quiz both
    /// follow it. Defaults to the canonical `solar-superstorm`.
    #[serde(default = "default_scenario")]
    pub scenario: String,
    /// `> 0` runs the session against a chaotic network with this
    /// fault intensity (seeded blackouts/brownouts mid-flight).
    #[serde(default)]
    pub fault_intensity: f64,
    /// Seed for the fault plan when `fault_intensity > 0`.
    #[serde(default)]
    pub fault_seed: u64,
    /// Virtual-time budget for the session, microseconds. Expiry
    /// returns a partial `degraded: true` response, not an error.
    /// `None` falls back to the server's default deadline (if any).
    #[serde(default)]
    pub deadline_us: Option<u64>,
    /// For [`RequestKind::PanicProbe`]: panic while the retry attempt
    /// index is below this value. `None` means every attempt panics.
    #[serde(default)]
    pub probe_panics: Option<u32>,
}

impl ServeRequest {
    /// A minimal request of the given kind.
    pub fn new(id: impl Into<String>, kind: RequestKind) -> Self {
        ServeRequest {
            id: id.into(),
            kind,
            question: None,
            seed: 0,
            distractors: default_distractors(),
            scenario: default_scenario(),
            fault_intensity: 0.0,
            fault_seed: 0,
            deadline_us: None,
            probe_panics: None,
        }
    }

    /// Structural validation before admission: errors here are the
    /// caller's fault and are never charged against the token bucket.
    pub fn validate(&self) -> Result<(), IraError> {
        if self.id.is_empty() {
            return Err(IraError::config("request id must be non-empty"));
        }
        if self.kind == RequestKind::Ask && self.question.as_deref().unwrap_or("").is_empty() {
            return Err(IraError::config("ask request needs a question"));
        }
        if !(0.0..=1.0).contains(&self.fault_intensity) {
            return Err(IraError::config("fault_intensity must be in [0, 1]"));
        }
        if ira_worldmodel::scenario::static_name(&self.scenario).is_none() {
            return Err(IraError::config(format!(
                "unknown scenario `{}`",
                self.scenario
            )));
        }
        Ok(())
    }
}

/// Terminal state of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseStatus {
    /// Completed within budget.
    Ok,
    /// Deadline expired mid-flight; `result` holds the partial work.
    Degraded,
    /// Shed by admission control before any session ran.
    Rejected,
    /// Session error (panic, invalid request) after retries.
    Failed,
}

impl ResponseStatus {
    /// Stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ResponseStatus::Ok => "ok",
            ResponseStatus::Degraded => "degraded",
            ResponseStatus::Rejected => "rejected",
            ResponseStatus::Failed => "failed",
        }
    }
}

impl Serialize for ResponseStatus {
    fn serialize_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for ResponseStatus {
    fn deserialize_value(value: &Value) -> Result<Self, serde::Error> {
        match value.as_str() {
            Some("ok") => Ok(ResponseStatus::Ok),
            Some("degraded") => Ok(ResponseStatus::Degraded),
            Some("rejected") => Ok(ResponseStatus::Rejected),
            Some("failed") => Ok(ResponseStatus::Failed),
            _ => Err(serde::Error::type_mismatch(
                "one of ok|degraded|rejected|failed",
                value,
            )),
        }
    }
}

/// Per-conclusion outcome inside a quiz payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuizConclusion {
    pub id: String,
    pub verdict: Option<String>,
    pub confidence: u8,
    pub consistent: bool,
}

/// Kind-specific result payload. On the wire this is internally
/// tagged: an object with a `"kind"` field naming the variant.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponsePayload {
    Train {
        goals_completed: usize,
        goals_total: usize,
        memory_entries: usize,
    },
    Quiz {
        answered: usize,
        total: usize,
        consistent: usize,
        conclusions: Vec<QuizConclusion>,
    },
    Ask {
        text: String,
        verdict: Option<String>,
        confidence: u8,
    },
    /// A panic probe that survived (after `probe_panics` retries).
    Probe { survived_attempt: u32 },
    /// Live telemetry as of the stats request's arrival.
    Stats { snapshot: ira_obs::LiveSnapshot },
}

impl Serialize for ResponsePayload {
    fn serialize_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        let tag = |map: &mut std::collections::BTreeMap<String, Value>, name: &str| {
            map.insert("kind".to_string(), Value::String(name.to_string()));
        };
        match self {
            ResponsePayload::Train {
                goals_completed,
                goals_total,
                memory_entries,
            } => {
                tag(&mut map, "train");
                map.insert(
                    "goals_completed".to_string(),
                    goals_completed.serialize_value(),
                );
                map.insert("goals_total".to_string(), goals_total.serialize_value());
                map.insert(
                    "memory_entries".to_string(),
                    memory_entries.serialize_value(),
                );
            }
            ResponsePayload::Quiz {
                answered,
                total,
                consistent,
                conclusions,
            } => {
                tag(&mut map, "quiz");
                map.insert("answered".to_string(), answered.serialize_value());
                map.insert("total".to_string(), total.serialize_value());
                map.insert("consistent".to_string(), consistent.serialize_value());
                map.insert("conclusions".to_string(), conclusions.serialize_value());
            }
            ResponsePayload::Ask {
                text,
                verdict,
                confidence,
            } => {
                tag(&mut map, "ask");
                map.insert("text".to_string(), text.serialize_value());
                map.insert("verdict".to_string(), verdict.serialize_value());
                map.insert("confidence".to_string(), confidence.serialize_value());
            }
            ResponsePayload::Probe { survived_attempt } => {
                tag(&mut map, "probe");
                map.insert(
                    "survived_attempt".to_string(),
                    survived_attempt.serialize_value(),
                );
            }
            ResponsePayload::Stats { snapshot } => {
                tag(&mut map, "stats");
                map.insert("snapshot".to_string(), snapshot.serialize_value());
            }
        }
        Value::Object(map)
    }
}

impl Deserialize for ResponsePayload {
    fn deserialize_value(value: &Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::type_mismatch("object for ResponsePayload", value))?;
        fn field<T: Deserialize>(
            obj: &std::collections::BTreeMap<String, Value>,
            name: &str,
        ) -> Result<T, serde::Error> {
            let value = obj
                .get(name)
                .ok_or_else(|| serde::Error::custom(format!("payload missing field `{name}`")))?;
            T::deserialize_value(value)
        }
        let kind = obj
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| serde::Error::custom("payload missing `kind` tag"))?;
        match kind {
            "train" => Ok(ResponsePayload::Train {
                goals_completed: field(obj, "goals_completed")?,
                goals_total: field(obj, "goals_total")?,
                memory_entries: field(obj, "memory_entries")?,
            }),
            "quiz" => Ok(ResponsePayload::Quiz {
                answered: field(obj, "answered")?,
                total: field(obj, "total")?,
                consistent: field(obj, "consistent")?,
                conclusions: field(obj, "conclusions")?,
            }),
            "ask" => Ok(ResponsePayload::Ask {
                text: field(obj, "text")?,
                verdict: match obj.get("verdict") {
                    Some(v) => Option::deserialize_value(v)?,
                    None => None,
                },
                confidence: field(obj, "confidence")?,
            }),
            "probe" => Ok(ResponsePayload::Probe {
                survived_attempt: field(obj, "survived_attempt")?,
            }),
            "stats" => Ok(ResponsePayload::Stats {
                snapshot: field(obj, "snapshot")?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown payload kind `{other}`"
            ))),
        }
    }
}

/// One response line. All `*_us` fields are virtual time on the
/// request's own timeline (0 = the instant the request was admitted);
/// `arrival_us` alone is on the batch's synthetic arrival clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeResponse {
    pub id: String,
    pub status: ResponseStatus,
    /// Redundant with `status == Degraded`, kept as an explicit marker
    /// so stream consumers can filter without matching the enum.
    pub degraded: bool,
    /// `null` on the wire when absent.
    #[serde(default)]
    pub error: Option<WireError>,
    /// When the request arrived, on the batch arrival clock.
    pub arrival_us: u64,
    /// Modeled queue wait between admission and execution start.
    pub queue_us: u64,
    /// Total backoff spent between retry attempts.
    pub retry_wait_us: u64,
    /// Virtual time the final attempt's session execution took.
    pub exec_virtual_us: u64,
    /// Attempts made (1 = no retries).
    pub attempts: u32,
    /// `null` on the wire for rejected/failed requests.
    #[serde(default)]
    pub result: Option<ResponsePayload>,
}

impl ServeResponse {
    /// An admission-control rejection (typed, within one virtual tick).
    pub fn rejected(request: &ServeRequest, arrival_us: u64, error: &IraError) -> Self {
        ServeResponse {
            id: request.id.clone(),
            status: ResponseStatus::Rejected,
            degraded: false,
            error: Some(WireError::from(error)),
            arrival_us,
            queue_us: 0,
            retry_wait_us: 0,
            exec_virtual_us: 0,
            attempts: 0,
            result: None,
        }
    }

    /// A request that failed validation before admission.
    pub fn invalid(request: &ServeRequest, arrival_us: u64, error: &IraError) -> Self {
        ServeResponse {
            id: request.id.clone(),
            status: ResponseStatus::Failed,
            degraded: false,
            error: Some(WireError::from(error)),
            arrival_us,
            queue_us: 0,
            retry_wait_us: 0,
            exec_virtual_us: 0,
            attempts: 0,
            result: None,
        }
    }
}

/// Parse a JSONL request stream. Blank lines are skipped; the first
/// malformed line aborts the whole parse with its line number.
pub fn parse_requests(input: &str) -> Result<Vec<ServeRequest>, IraError> {
    let mut requests = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let request: ServeRequest = serde_json::from_str(line)
            .map_err(|e| IraError::parse(format!("request line {}: {e}", lineno + 1)))?;
        requests.push(request);
    }
    Ok(requests)
}

/// Render responses as JSONL, one per line, in the given order.
pub fn render_responses(responses: &[ServeResponse]) -> String {
    let mut out = String::new();
    for response in responses {
        out.push_str(&serde_json::to_string(response).expect("response serializes"));
        out.push('\n');
    }
    out
}

/// Parse a JSONL response transcript (the inverse of
/// [`render_responses`], used by tests and the load generator).
pub fn parse_responses(input: &str) -> Result<Vec<ServeResponse>, IraError> {
    let mut responses = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let response: ServeResponse = serde_json::from_str(line)
            .map_err(|e| IraError::parse(format!("response line {}: {e}", lineno + 1)))?;
        responses.push(response);
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_defaults_fill_in() {
        let parsed = parse_requests(r#"{"id":"r1","kind":"train"}"#).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].kind, RequestKind::Train);
        assert_eq!(parsed[0].seed, 0);
        assert_eq!(parsed[0].distractors, default_distractors());
        assert_eq!(parsed[0].scenario, "solar-superstorm");
        assert_eq!(parsed[0].deadline_us, None);
    }

    #[test]
    fn validation_rejects_unknown_scenarios() {
        let mut req = ServeRequest::new("a", RequestKind::Quiz);
        assert!(req.validate().is_ok());
        req.scenario = "route-leak".into();
        assert!(req.validate().is_ok());
        req.scenario = "alien-invasion".into();
        let err = req.validate().unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(err.to_string().contains("alien-invasion"), "{err}");
    }

    #[test]
    fn malformed_line_reports_its_number() {
        let err = parse_requests("{\"id\":\"a\",\"kind\":\"train\"}\n\nnot json\n").unwrap_err();
        assert_eq!(err.kind(), "parse");
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn validation_rejects_questionless_ask_and_bad_intensity() {
        let mut req = ServeRequest::new("a", RequestKind::Ask);
        assert_eq!(req.validate().unwrap_err().kind(), "config");
        req.question = Some("why did the route flap?".into());
        assert!(req.validate().is_ok());
        req.fault_intensity = 1.5;
        assert_eq!(req.validate().unwrap_err().kind(), "config");
    }

    #[test]
    fn responses_round_trip_through_jsonl() {
        let responses = vec![
            ServeResponse {
                id: "r1".into(),
                status: ResponseStatus::Ok,
                degraded: false,
                error: None,
                arrival_us: 0,
                queue_us: 10,
                retry_wait_us: 0,
                exec_virtual_us: 123,
                attempts: 1,
                result: Some(ResponsePayload::Ask {
                    text: "yes".into(),
                    verdict: Some("solar storm".into()),
                    confidence: 8,
                }),
            },
            ServeResponse::rejected(
                &ServeRequest::new("r2", RequestKind::Quiz),
                77,
                &ira_services::IraError::overloaded("rate limited", 500_000),
            ),
        ];
        let text = render_responses(&responses);
        assert_eq!(text.lines().count(), 2);
        let back = parse_responses(&text).unwrap();
        assert_eq!(back, responses);
        assert_eq!(back[1].error.as_ref().unwrap().kind, "serve.overloaded");
    }

    #[test]
    fn kind_spellings_match_serde() {
        for kind in [
            RequestKind::Train,
            RequestKind::Quiz,
            RequestKind::Ask,
            RequestKind::PanicProbe,
            RequestKind::Stats,
        ] {
            let json = serde_json::to_string(&kind).unwrap();
            assert_eq!(json, format!("\"{}\"", kind.as_str()));
        }
    }

    #[test]
    fn stats_payload_round_trips_with_its_snapshot() {
        let mut live = ira_obs::LiveStats::default();
        let mut sample = ira_obs::SloSample::new(250_000, "solar-superstorm", "train");
        sample.admitted = true;
        sample.ok = true;
        sample.queue_us = Some(0);
        sample.exec_us = Some(10_000_000);
        live.record(&sample);
        let response = ServeResponse {
            id: "s1".into(),
            status: ResponseStatus::Ok,
            degraded: false,
            error: None,
            arrival_us: 500_000,
            queue_us: 0,
            retry_wait_us: 0,
            exec_virtual_us: 0,
            attempts: 0,
            result: Some(ResponsePayload::Stats {
                snapshot: live.snapshot(500_000),
            }),
        };
        let text = render_responses(std::slice::from_ref(&response));
        let back = parse_responses(&text).unwrap();
        assert_eq!(back, vec![response.clone()]);
        match back[0].result.as_ref().unwrap() {
            ResponsePayload::Stats { snapshot } => {
                assert_eq!(snapshot.total["solar-superstorm/train"].admitted, 1);
                assert_eq!(snapshot.at_us, 500_000);
            }
            other => panic!("expected stats payload, got {other:?}"),
        }
    }
}
