//! Library surface of the `ira` CLI, exposed for integration testing.
//! The binary (`src/main.rs`) is a thin wrapper over [`args::parse`]
//! and [`commands::run`].

pub mod args;
pub mod commands;
