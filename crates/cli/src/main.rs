//! `ira` — the command-line interface to the interactive research
//! agent. See `ira help` for the command set.

use ira_cli::{args, commands};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match args::parse(&argv) {
        Ok(cmd) => commands::run(cmd),
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("run `ira help` for usage");
            2
        }
    };
    std::process::exit(code);
}
