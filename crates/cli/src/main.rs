//! `ira` — the command-line interface to the interactive research
//! agent. See `ira help` for the command set.

use ira_cli::{args, commands};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (argv, opstats) = args::split_opstats(&argv);
    let code = match args::parse(&argv) {
        Ok(cmd) => {
            let code = commands::run(cmd);
            if opstats {
                commands::print_opstats();
            }
            code
        }
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("run `ira help` for usage");
            2
        }
    };
    std::process::exit(code);
}
