//! Command implementations for the `ira` CLI.

use crate::args::{Command, MemAction, RoleChoice, ScenarioAction, SimChoice};
use ira_agentmem::KnowledgeStore;
use ira_autogpt::AutoGptConfig;
use ira_core::{questions, AgentConfig, Environment, ResearchAgent, RoleDefinition};
use ira_engine::{Engine, FaultSpec, SessionConfig};
use ira_evalkit::plancov::PlanCoverage;
use ira_evalkit::quiz::QuizBank;
use ira_evalkit::report::table;
use ira_evalkit::runner::{evaluate_agent, evaluate_baseline, sweep};
use ira_evalkit::trajectory::render_table;
use ira_obs::{Fanout, JsonlCollector, SharedCollector, SummaryCollector};
use ira_simllm::Llm;
use ira_simnet::{Duration, FaultPlan};
use ira_webcorpus::CorpusConfig;
use std::path::Path;
use std::path::PathBuf;
use std::sync::Arc;

/// Fault horizon for CLI training runs. Training alone spans roughly
/// ten virtual seconds; thirty gives headroom for `--crawl` while
/// keeping scheduled windows inside the run.
fn train_horizon() -> Duration {
    Duration::from_secs(30)
}

/// Fault seed for `--faults` runs (shared with experiment X13 so the
/// CLI reproduces the same plans).
const FAULT_SEED: u64 = 0xC4A0;

/// Run one parsed command; returns a process exit code.
pub fn run(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            print!("{}", crate::args::USAGE);
            0
        }
        Command::Train {
            role,
            out,
            crawl_links,
            distractors,
            faults,
            resume,
            parallel,
            trace,
            metrics,
        } => {
            let obs = ObsSinks::new(trace.as_deref(), metrics);
            if parallel > 1 {
                train_parallel(
                    role,
                    &out,
                    crawl_links,
                    distractors,
                    faults,
                    resume,
                    parallel,
                    &obs,
                )
            } else {
                train(role, &out, crawl_links, distractors, faults, resume, &obs)
            }
        }
        Command::Ask {
            knowledge,
            question,
        } => ask(&knowledge, &question),
        Command::Learn {
            knowledge,
            question,
            threshold,
        } => learn(&knowledge, &question, threshold),
        Command::Quiz {
            incidents,
            threshold,
            report,
            parallel,
            trace,
            metrics,
        } => {
            let obs = ObsSinks::new(trace.as_deref(), metrics);
            if parallel > 1 {
                quiz_parallel(incidents, threshold, report.as_deref(), parallel, &obs)
            } else {
                quiz(incidents, threshold, report.as_deref(), &obs)
            }
        }
        Command::Plan => plan(),
        Command::Questions { knowledge, max } => questions_cmd(&knowledge, max),
        Command::Corpus {
            distractors,
            faults,
        } => corpus_stats(distractors, faults),
        Command::Simulate { what } => simulate(what),
        Command::Scenario { action } => scenario_cmd(action),
        Command::TraceSummarize { file } => trace_summarize(&file),
        Command::TraceProfile { file, json, top } => trace_profile(&file, json, top),
        Command::TraceDiff {
            base,
            current,
            max_regress,
        } => trace_diff(&base, &current, max_regress),
        Command::TraceQuery {
            file,
            stage,
            session,
            slower_than,
        } => trace_query(&file, stage.as_deref(), session, slower_than),
        Command::Serve {
            input,
            workers,
            rate,
            burst,
            deadline_us,
            trace,
            graph,
            example,
            stats_every,
            flight,
        } => serve_cmd(
            input.as_deref(),
            workers,
            rate,
            burst,
            deadline_us,
            trace.as_deref(),
            graph,
            example,
            stats_every,
            flight.as_deref(),
        ),
        Command::ObsRender { file, prom } => obs_render(&file, prom),
        Command::BenchDiff {
            base,
            current,
            max_regress,
        } => bench_diff(&base, &current, max_regress),
        Command::Mem { action } => match action {
            MemAction::Stats { knowledge } => mem_stats(&knowledge),
            MemAction::Query {
                knowledge,
                query,
                top,
            } => mem_query(&knowledge, &query, top),
            MemAction::Provenance { knowledge, term } => mem_provenance(&knowledge, &term),
        },
        Command::Audit => audit_cmd(),
    }
}

/// The collectors requested by `--trace` / `--metrics`: a JSONL
/// recorder, a metrics aggregator, neither, or both fanned out. One
/// `ObsSinks` is shared across every session of a run — the JSONL
/// collector buffers per session id, and metric merges are
/// commutative, so the outputs are identical at any `--parallel`.
struct ObsSinks {
    trace_path: Option<String>,
    jsonl: Option<Arc<JsonlCollector>>,
    summary: Option<Arc<SummaryCollector>>,
}

impl ObsSinks {
    fn new(trace: Option<&str>, metrics: bool) -> Self {
        ObsSinks {
            trace_path: trace.map(str::to_string),
            jsonl: trace.map(|_| Arc::new(JsonlCollector::new())),
            summary: metrics.then(|| Arc::new(SummaryCollector::new())),
        }
    }

    /// The shared sink sessions emit into, if any was requested.
    fn sink(&self) -> Option<SharedCollector> {
        let mut children: Vec<SharedCollector> = Vec::new();
        if let Some(jsonl) = &self.jsonl {
            children.push(Arc::clone(jsonl) as SharedCollector);
        }
        if let Some(summary) = &self.summary {
            children.push(Arc::clone(summary) as SharedCollector);
        }
        match children.len() {
            0 => None,
            1 => children.pop(),
            _ => Some(Arc::new(Fanout::new(children))),
        }
    }

    /// Write the trace file and print the metrics table. Returns a
    /// process exit code: non-zero only if the trace file could not be
    /// written.
    fn finish(&self) -> i32 {
        if let (Some(jsonl), Some(path)) = (&self.jsonl, self.trace_path.as_deref()) {
            if let Err(e) = jsonl.write_to(Path::new(path)) {
                eprintln!("error: could not write trace {path}: {e}");
                return 1;
            }
            println!("trace written to {path}");
        }
        if let Some(summary) = &self.summary {
            print!("{}", summary.snapshot().render());
        }
        0
    }
}

/// Spawn session `id`, attaching the run's collectors when any were
/// requested.
fn spawn_maybe_observed(
    engine: &Engine,
    config: SessionConfig,
    obs: &ObsSinks,
    id: u32,
) -> ira_engine::Session {
    match obs.sink() {
        Some(sink) => engine.spawn_session_observed(config, sink, id),
        None => engine.spawn_session(config),
    }
}

fn role_definition(choice: RoleChoice) -> RoleDefinition {
    match choice {
        RoleChoice::Bob => RoleDefinition::bob(),
        RoleChoice::Alice => RoleDefinition::outage_analyst(),
    }
}

/// The CLI's canonical corpus: the fixed seed at the requested
/// distractor load.
fn cli_corpus(distractors: usize) -> CorpusConfig {
    CorpusConfig {
        seed: 0xC0FFEE,
        distractor_count: distractors,
        ..CorpusConfig::default()
    }
}

fn env_with(distractors: usize) -> Environment {
    let world = ira_worldmodel::World::standard();
    let corpus = Arc::new(ira_webcorpus::Corpus::generate(
        &world,
        cli_corpus(distractors),
    ));
    Environment::from_parts(world, corpus, 0xBEEF, None)
}

/// The training checkpoint lives next to the knowledge file.
fn checkpoint_path(out: &str) -> PathBuf {
    PathBuf::from(format!("{out}.ckpt"))
}

fn train(
    role: RoleChoice,
    out: &str,
    crawl_links: usize,
    distractors: usize,
    faults: f64,
    resume: bool,
    obs: &ObsSinks,
) -> i32 {
    // The serial path is the parallel path at one session: the engine
    // spawns session 0 on the very seeds the legacy builders used, so
    // `--parallel 1` output (and any trace) is byte-identical to
    // session 0 of a wider run.
    let engine = Engine::new();
    let config = AgentConfig {
        autogpt: AutoGptConfig {
            crawl_links,
            ..AutoGptConfig::default()
        },
        ..AgentConfig::default()
    };
    let session_config = SessionConfig {
        role: role_definition(role),
        agent: config,
        corpus: cli_corpus(distractors),
        net_seed: 0xBEEF,
        llm_seed: 0xB0B,
        faults: (faults > 0.0).then(|| FaultSpec {
            intensity: faults,
            horizon: train_horizon(),
            seed: FAULT_SEED,
        }),
    };
    let mut session = spawn_maybe_observed(&engine, session_config, obs, 0);
    let env = &session.env;
    if faults > 0.0 {
        println!(
            "fault injection: intensity {:.0}%, {} scheduled windows (seed {FAULT_SEED:#x})",
            faults * 100.0,
            env.client.network().fault_plan_window_count()
        );
    }
    let agent = &mut session.agent;
    println!("{}", agent.role);
    // Training always checkpoints after each goal so a killed run can
    // be picked up with `--resume`; without the flag any stale
    // checkpoint is discarded and training starts fresh.
    let ckpt_path = checkpoint_path(out);
    if !resume {
        ira_core::TrainingCheckpoint::remove(&ckpt_path);
    } else if ira_core::TrainingCheckpoint::load(&ckpt_path).is_some() {
        println!("resuming from checkpoint {}", ckpt_path.display());
    } else {
        println!(
            "no checkpoint at {}; training from scratch",
            ckpt_path.display()
        );
    }
    let report = match agent.train_with_checkpoint(&ckpt_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: checkpointed training failed: {e}");
            return 1;
        }
    };
    println!(
        "trained: {} searches, {} fetches, {} entries memorised in {:.1} virtual seconds",
        report.total_searches(),
        report.total_fetches(),
        report.memory_entries,
        report.virtual_elapsed_us as f64 / 1e6
    );
    if faults > 0.0 {
        let breaker = env.client.breaker_totals();
        let fault_stats = env.client.network().fault_stats();
        println!(
            "faults charged: {} events; breaker: {} transitions, {} fast failures; \
             {} sources rerouted",
            fault_stats.total(),
            breaker.transitions(),
            breaker.fast_failures,
            report
                .per_goal
                .iter()
                .map(|g| g.source_unavailable)
                .sum::<u32>()
        );
    }
    if let Err(e) = agent.save_knowledge(Path::new(out)) {
        eprintln!("error: could not write {out}: {e}");
        return 1;
    }
    println!("knowledge written to {out}");
    obs.finish()
}

/// `ira train --parallel N`: N independently seeded training sessions
/// (session *i* shifts the network and model seeds by *i*; session 0
/// uses exactly the serial seeds) fan out over worker threads sharing
/// one engine-cached corpus. Session 0's knowledge is written to
/// `out`, so the file is identical to a serial `ira train` run; the
/// extra sessions report seed robustness of the training itself.
#[allow(clippy::too_many_arguments)] // mirrors the parsed `train` flags one-to-one
fn train_parallel(
    role: RoleChoice,
    out: &str,
    crawl_links: usize,
    distractors: usize,
    faults: f64,
    resume: bool,
    sessions: usize,
    obs: &ObsSinks,
) -> i32 {
    if resume {
        println!("note: --resume only applies to serial training; ignoring it");
    }
    let config = AgentConfig {
        autogpt: AutoGptConfig {
            crawl_links,
            ..AutoGptConfig::default()
        },
        ..AgentConfig::default()
    };
    println!("{}", role_definition(role));
    println!("training {sessions} seeded sessions in parallel");

    let engine = Engine::new();
    let start = std::time::Instant::now();
    let seeds: Vec<u64> = (0..sessions as u64).collect();
    let mut results = sweep(seeds, sessions, |_, s| {
        let session_config = SessionConfig {
            role: role_definition(role),
            agent: config,
            corpus: cli_corpus(distractors),
            net_seed: 0xBEEF + s,
            llm_seed: 0xB0B + s,
            faults: (faults > 0.0).then(|| FaultSpec {
                intensity: faults,
                horizon: train_horizon(),
                seed: FAULT_SEED.wrapping_add(s),
            }),
        };
        let mut session = spawn_maybe_observed(&engine, session_config, obs, s as u32);
        let report = session.agent.train();
        (session, report)
    });

    let rows: Vec<Vec<String>> = results
        .iter()
        .enumerate()
        .map(|(i, (_, report))| {
            vec![
                i.to_string(),
                report.total_searches().to_string(),
                report.total_fetches().to_string(),
                report.memory_entries.to_string(),
                format!("{:.1}", report.virtual_elapsed_us as f64 / 1e6),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["session", "searches", "fetches", "entries", "virt-s"],
            &rows
        )
    );
    eprintln!(
        "[timing] sessions={sessions} wall={:.2}s corpus-builds={}",
        start.elapsed().as_secs_f64(),
        engine.corpus_builds()
    );

    let (session0, _) = &mut results[0];
    if let Err(e) = session0.agent.save_knowledge(Path::new(out)) {
        eprintln!("error: could not write {out}: {e}");
        return 1;
    }
    println!("knowledge from session 0 written to {out}");
    obs.finish()
}

/// `ira quiz --parallel N`: N independently seeded agents take the
/// quiz on worker threads; the per-agent scores and the across-agent
/// aggregate quantify how seed-robust the result is.
fn quiz_parallel(
    incidents: bool,
    threshold: u8,
    report_path: Option<&str>,
    agents: usize,
    obs: &ObsSinks,
) -> i32 {
    if report_path.is_some() {
        println!("note: --report only applies to the single-agent quiz; ignoring it");
    }
    let engine = Engine::new();
    let quiz = if incidents {
        QuizBank::incidents(&engine.world().incidents)
    } else {
        QuizBank::from_world(engine.world())
    };
    let conclusions = engine.world().conclusions();
    let role = if incidents {
        RoleDefinition::outage_analyst()
    } else {
        RoleDefinition::bob()
    };
    let config = AgentConfig {
        confidence_threshold: threshold,
        ..AgentConfig::default()
    };

    println!("evaluating {agents} seeded agents in parallel");
    let start = std::time::Instant::now();
    let seeds: Vec<u64> = (0..agents as u64).collect();
    let runs = sweep(seeds, agents, |_, s| {
        let session_config = SessionConfig {
            role: role.clone(),
            agent: config,
            corpus: cli_corpus(150),
            net_seed: 0xBEEF + s,
            llm_seed: 0xB0B + s,
            faults: None,
        };
        let mut session = spawn_maybe_observed(&engine, session_config, obs, s as u32);
        session.agent.train();
        evaluate_agent(&mut session.agent, &quiz, &conclusions)
    });

    let rows: Vec<Vec<String>> = runs
        .iter()
        .enumerate()
        .map(|(i, run)| {
            vec![
                i.to_string(),
                format!(
                    "{}/{}",
                    run.consistency.consistent_count(),
                    run.consistency.total()
                ),
                format!("{:.1}", run.consistency.mean_confidence()),
                run.total_learning_rounds().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["agent", "consistent", "mean-conf", "learn-rounds"], &rows)
    );
    let mean_consistent = runs
        .iter()
        .map(|r| r.consistency.consistent_count())
        .sum::<usize>() as f64
        / runs.len() as f64;
    println!(
        "across {} agents: mean {:.1}/{} conclusions consistent",
        runs.len(),
        mean_consistent,
        runs[0].consistency.total()
    );
    let baseline = evaluate_baseline(&Llm::gpt4(999), &quiz);
    println!("{}", baseline.summary());
    eprintln!(
        "[timing] agents={agents} wall={:.2}s corpus-builds={}",
        start.elapsed().as_secs_f64(),
        engine.corpus_builds()
    );
    obs.finish()
}

/// Load a knowledge file into a fresh agent (no training).
fn agent_from_knowledge(env: &Environment, path: &str) -> Result<ResearchAgent, i32> {
    let store = match KnowledgeStore::load(Path::new(path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not load {path}: {e}");
            eprintln!("hint: run `ira train --out {path}` first");
            return Err(1);
        }
    };
    Ok(ResearchAgent::with_memory(
        RoleDefinition::bob(),
        env,
        AgentConfig::default(),
        0xB0B,
        store,
    ))
}

fn ask(knowledge: &str, question: &str) -> i32 {
    let env = env_with(150);
    let mut agent = match agent_from_knowledge(&env, knowledge) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let (answer, citations) = agent.ask_cited(question);
    println!("Q: {question}\n");
    println!("{}\n", answer.text);
    println!("confidence: {}/10", answer.confidence);
    if let Some(v) = &answer.verdict {
        println!("verdict: {v}");
    }
    if !answer.reasoning.is_empty() {
        println!("\nreasoning:");
        for step in &answer.reasoning {
            println!("  - {step}");
        }
    }
    if !citations.is_empty() {
        println!("\ngrounded in:");
        for (url, kind) in citations {
            println!("  [{kind}] {url}");
        }
    }
    0
}

fn learn(knowledge: &str, question: &str, threshold: u8) -> i32 {
    let env = env_with(150);
    let store = match KnowledgeStore::load(Path::new(knowledge)) {
        Ok(s) => s,
        Err(_) => {
            println!("no knowledge file at {knowledge}; starting fresh");
            KnowledgeStore::with_defaults()
        }
    };
    let config = AgentConfig {
        confidence_threshold: threshold,
        ..AgentConfig::default()
    };
    let mut agent = ResearchAgent::with_memory(RoleDefinition::bob(), &env, config, 0xB0B, store);
    let trajectory = agent.self_learn(question);
    println!("{}", render_table(&trajectory));
    let answer = agent.ask(question);
    println!("final answer:\n{}", answer.text);
    if let Err(e) = agent.save_knowledge(Path::new(knowledge)) {
        eprintln!("error: could not write {knowledge}: {e}");
        return 1;
    }
    println!("\nknowledge updated in {knowledge}");
    0
}

fn quiz(incidents: bool, threshold: u8, report_path: Option<&str>, obs: &ObsSinks) -> i32 {
    // Like serial train: spawn session 0 through the engine so the
    // single-agent quiz (and its trace) matches session 0 of
    // `--parallel N` exactly.
    let engine = Engine::new();
    let quiz = if incidents {
        QuizBank::incidents(&engine.world().incidents)
    } else {
        QuizBank::from_world(engine.world())
    };
    let conclusions = engine.world().conclusions();
    let role = if incidents {
        RoleDefinition::outage_analyst()
    } else {
        RoleDefinition::bob()
    };
    let config = AgentConfig {
        confidence_threshold: threshold,
        ..AgentConfig::default()
    };
    let session_config = SessionConfig {
        role,
        agent: config,
        corpus: cli_corpus(150),
        net_seed: 0xBEEF,
        llm_seed: 0xB0B,
        faults: None,
    };
    let mut session = spawn_maybe_observed(&engine, session_config, obs, 0);
    let agent = &mut session.agent;
    agent.train();
    let run = evaluate_agent(agent, &quiz, &conclusions);

    let rows: Vec<Vec<String>> = run
        .consistency
        .per_item
        .iter()
        .map(|r| {
            vec![
                r.id.clone(),
                r.verdict.clone().unwrap_or_else(|| "(hedge)".into()),
                r.confidence.to_string(),
                if r.matched.consistent { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["item", "verdict", "conf", "consistent"], &rows)
    );
    println!("{}", run.consistency.summary());
    let baseline = evaluate_baseline(&Llm::gpt4(999), &quiz);
    println!("{}", baseline.summary());
    if let Some(path) = report_path {
        let md = ira_evalkit::report::markdown_report(
            &format!(
                "Investigation report ({})",
                if incidents {
                    "incidents"
                } else {
                    "solar superstorms"
                }
            ),
            &run,
            &baseline,
        );
        if let Err(e) = std::fs::write(path, md) {
            eprintln!("error: could not write {path}: {e}");
            return 1;
        }
        println!("report written to {path}");
    }
    obs.finish()
}

/// The sample batch printed by `ira serve --example`: one of each
/// request kind, exercising a deadline and a blackout. Questions come
/// from the incident quiz bank so the agent's verdict matching has
/// something to latch onto.
fn serve_example() -> String {
    [
        r#"{"id":"train-bob","kind":"train"}"#,
        r#"{"id":"ask-solar","kind":"ask","seed":1,"question":"Which is more vulnerable to solar activity? The fiber optic cable that connects Brazil to Europe or the one that connects the US to Europe?"}"#,
        r#"{"id":"quiz-quick","kind":"quiz","deadline_us":120000000}"#,
        r#"{"id":"quiz-blackout","kind":"quiz","fault_intensity":0.25,"fault_seed":7,"deadline_us":110000000}"#,
        r#"{"id":"stats-tail","kind":"stats"}"#,
    ]
    .map(|line| format!("{line}\n"))
    .concat()
}

/// `ira serve`: one JSONL batch through the resilient serve layer —
/// requests on stdin (or `--input`), responses on stdout in request
/// order, diagnostics on stderr so the response stream stays clean.
/// `--flight <dir>` fans the always-on flight recorder into the trace
/// sink and writes its post-mortem dumps after the batch;
/// `--stats-every <n>` prints a live-telemetry snapshot to stderr
/// after every n responses.
#[allow(clippy::too_many_arguments)] // mirrors the parsed `serve` flags one-to-one
fn serve_cmd(
    input: Option<&str>,
    workers: usize,
    rate: f64,
    burst: u32,
    deadline_us: Option<u64>,
    trace: Option<&str>,
    graph: bool,
    example: bool,
    stats_every: Option<usize>,
    flight: Option<&str>,
) -> i32 {
    use ira_obs::FlightRecorder;
    use ira_serve::{AdmissionConfig, ServeConfig, Server};

    if example {
        print!("{}", serve_example());
        return 0;
    }
    let text = match read_trace_input(input.unwrap_or("-")) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let config = ServeConfig {
        workers,
        admission: AdmissionConfig {
            rate_per_sec: rate,
            burst,
            ..AdmissionConfig::default()
        },
        default_deadline_us: deadline_us,
        graph_retrieval: graph,
        ..ServeConfig::default()
    };
    let server = Server::new(config);
    let collector = trace.map(|_| Arc::new(JsonlCollector::new()));
    let recorder = flight.map(|_| Arc::new(FlightRecorder::default()));
    let mut children: Vec<SharedCollector> = Vec::new();
    if let Some(c) = &collector {
        children.push(Arc::clone(c) as SharedCollector);
    }
    if let Some(r) = &recorder {
        children.push(Arc::clone(r) as SharedCollector);
    }
    let sink: Option<SharedCollector> = match children.len() {
        0 => None,
        1 => children.pop(),
        _ => Some(Arc::new(Fanout::new(children))),
    };
    match server.serve_jsonl(&text, sink) {
        Ok(responses) => {
            print!("{responses}");
            if let Some(every) = stats_every {
                print_stats_snapshots(&text, &responses, every);
            }
            if let (Some(collector), Some(path)) = (&collector, trace) {
                if let Err(e) = collector.write_to(Path::new(path)) {
                    eprintln!("error: could not write trace {path}: {e}");
                    return 1;
                }
                eprintln!("trace written to {path}");
            }
            if let (Some(recorder), Some(dir)) = (&recorder, flight) {
                match recorder.write_dumps(Path::new(dir)) {
                    Ok(paths) if paths.is_empty() => {
                        eprintln!("flight recorder: clean run, no dumps");
                    }
                    Ok(paths) => {
                        eprintln!("flight recorder: {} dump(s) in {dir}", paths.len());
                        for p in &paths {
                            eprintln!("  {}", p.display());
                        }
                    }
                    Err(e) => {
                        eprintln!("error: could not write flight dumps to {dir}: {e}");
                        return 1;
                    }
                }
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// The `--stats-every` replay: fold the request/response pairs through
/// the public [`ira_serve::slo_sample`] derivation — which reproduces
/// the server's own ledger exactly — and print a snapshot to stderr
/// after every `every` responses (and after the last, if it didn't
/// land on a boundary). Post-hoc replay keeps the response stream and
/// the worker pool untouched.
fn print_stats_snapshots(input: &str, output: &str, every: usize) {
    let (requests, responses) = match (
        ira_serve::parse_requests(input),
        ira_serve::parse_responses(output),
    ) {
        (Ok(req), Ok(resp)) => (req, resp),
        _ => return, // a malformed batch already produced error lines
    };
    let mut live = ira_obs::LiveStats::default();
    let mut printed_at = 0usize;
    for (i, (request, response)) in requests.iter().zip(&responses).enumerate() {
        live.record(&ira_serve::slo_sample(request, response));
        if (i + 1) % every == 0 {
            eprint!("{}", live.snapshot(response.arrival_us).render_text());
            printed_at = i + 1;
        }
    }
    if printed_at < responses.len() {
        if let Some(last) = responses.last() {
            eprint!("{}", live.snapshot(last.arrival_us).render_text());
        }
    }
}

/// `ira obs render <file|->`: render a live-telemetry snapshot as the
/// stable text view or (`--prom`) Prometheus exposition format. The
/// input is either a snapshot JSON (e.g. saved from a `stats` response
/// payload) or a serve response transcript, in which case the *last*
/// `stats` payload in the stream is rendered.
fn obs_render(file: &str, prom: bool) -> i32 {
    let text = match read_trace_input(file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let snapshot = match serde_json::from_str::<ira_obs::LiveSnapshot>(text.trim()) {
        Ok(snapshot) => snapshot,
        Err(_) => {
            let responses = match ira_serve::parse_responses(&text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!(
                        "error: {} is neither a snapshot JSON nor a response transcript: {e}",
                        input_name(file)
                    );
                    return 1;
                }
            };
            let last_stats = responses.iter().rev().find_map(|r| match &r.result {
                Some(ira_serve::ResponsePayload::Stats { snapshot }) => Some(snapshot.clone()),
                _ => None,
            });
            match last_stats {
                Some(snapshot) => snapshot,
                None => {
                    eprintln!(
                        "error: {} holds no stats payload — send a {{\"kind\":\"stats\"}} request",
                        input_name(file)
                    );
                    return 1;
                }
            }
        }
    };
    if prom {
        print!("{}", snapshot.render_prometheus());
    } else {
        print!("{}", snapshot.render_text());
    }
    0
}

/// `ira bench diff <base> <current>`: compare two benchmark reports
/// (`BENCH_*.json` or any JSON document) field by field under a
/// uniform relative tolerance. Only integer-valued fields are
/// compared — floats are host timing and drift run to run. Exits
/// non-zero when any field moves out of tolerance.
fn bench_diff(base: &str, current: &str, max_regress_pct: f64) -> i32 {
    if base == "-" && current == "-" {
        eprintln!("error: only one diff input may come from stdin");
        return 1;
    }
    let load = |file: &str| -> Result<std::collections::BTreeMap<String, u64>, String> {
        let text = read_trace_input(file)?;
        let value = serde_json::parse(&text)
            .map_err(|e| format!("{} is not valid JSON: {e}", input_name(file)))?;
        Ok(ira_obs::flatten_json(&value))
    };
    let base_flat = match load(base) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let current_flat = match load(current) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let tol = ira_obs::Tolerances::uniform(max_regress_pct / 100.0);
    let report = ira_obs::diff::diff_flat(&base_flat, &current_flat, &tol);
    print!("{}", report.render());
    i32::from(!report.is_clean())
}

/// The name used for `-` inputs in diagnostics.
fn input_name(file: &str) -> &str {
    if file == "-" {
        "stdin"
    } else {
        file
    }
}

/// Read a trace document from a file, or from stdin when `file` is `-`.
fn read_trace_input(file: &str) -> Result<String, String> {
    if file == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("could not read stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(file).map_err(|e| format!("could not read {file}: {e}"))
    }
}

/// Read and parse a JSONL trace (file or `-`). The error is a single
/// line naming the input and the offending trace line.
fn load_trace_events(file: &str) -> Result<Vec<ira_obs::TraceEvent>, String> {
    let text = read_trace_input(file)?;
    ira_obs::parse_jsonl(&text)
        .map_err(|e| format!("{} is not a valid trace: {e}", input_name(file)))
}

/// `ira trace summarize <file|->`: replay a recorded JSONL trace
/// through the summary collector and print the metrics table. Pure
/// function of the input, so the output is as deterministic as the
/// trace.
fn trace_summarize(file: &str) -> i32 {
    let events = match load_trace_events(file) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    print!("{}", ira_obs::summarize_events(&events).render());
    0
}

/// `ira trace profile <file|->`: fold the trace into causal span
/// trees and print the profile — text flame view with hotspots and
/// critical paths, or the JSON profile with `--json`.
fn trace_profile(file: &str, json: bool, top: usize) -> i32 {
    let events = match load_trace_events(file) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let profile = ira_obs::fold_trace(&events);
    if json {
        match serde_json::to_string(&profile) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("error: could not serialize profile: {e}");
                return 1;
            }
        }
    } else {
        print!("{}", profile.render(top));
    }
    0
}

/// Load one `trace diff` input as a flattened key→value map. Accepts
/// (and auto-detects) a JSON profile (`trace profile --json` output or
/// a checked-in baseline), a JSON metrics snapshot, or a raw JSONL
/// trace, which is folded into a profile first.
fn load_diff_input(file: &str) -> Result<std::collections::BTreeMap<String, u64>, String> {
    let text = read_trace_input(file)?;
    let trimmed = text.trim_start();
    if trimmed.starts_with('{') {
        if let Ok(profile) = serde_json::from_str::<ira_obs::Profile>(trimmed) {
            return Ok(ira_obs::diff::flatten_profile(&profile));
        }
        if let Ok(snap) = serde_json::from_str::<ira_obs::MetricsSnapshot>(trimmed) {
            return Ok(ira_obs::diff::flatten_snapshot(&snap));
        }
        // Fall through: a one-line JSONL trace also starts with '{'.
    }
    let events = ira_obs::parse_jsonl(&text).map_err(|e| {
        format!(
            "{} is neither a profile, a metrics snapshot, nor a trace: {e}",
            input_name(file)
        )
    })?;
    Ok(ira_obs::diff::flatten_profile(&ira_obs::fold_trace(
        &events,
    )))
}

/// `ira trace diff <base> <current>`: compare two recorded inputs
/// under a uniform relative tolerance (percent; 0 = byte-exact
/// virtual-time equality). Exits non-zero when any key drifts out of
/// tolerance, naming every offending key.
fn trace_diff(base: &str, current: &str, max_regress_pct: f64) -> i32 {
    if base == "-" && current == "-" {
        eprintln!("error: only one diff input may come from stdin");
        return 1;
    }
    let base_flat = match load_diff_input(base) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let current_flat = match load_diff_input(current) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let tol = ira_obs::Tolerances::uniform(max_regress_pct / 100.0);
    let report = ira_obs::diff::diff_flat(&base_flat, &current_flat, &tol);
    print!("{}", report.render());
    i32::from(!report.is_clean())
}

/// `ira trace query <file|->`: filter a trace by stage, session, and
/// minimum span duration. Matching events are printed as JSONL — the
/// output is itself a valid trace, so it pipes back into
/// `trace summarize -` or `trace profile -`. The match count goes to
/// stderr to keep stdout replayable.
fn trace_query(
    file: &str,
    stage: Option<&str>,
    session: Option<u32>,
    slower_than: Option<u64>,
) -> i32 {
    let events = match load_trace_events(file) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let total = events.len();
    let mut matched = 0usize;
    for ev in &events {
        if let Some(s) = stage {
            if ev.stage != s {
                continue;
            }
        }
        if let Some(id) = session {
            if ev.session != id {
                continue;
            }
        }
        if let Some(floor) = slower_than {
            // Duration filters select spans; points and gauges have no
            // duration to compare.
            if ev.class != ira_obs::EventClass::Span || ev.value < floor {
                continue;
            }
        }
        println!("{}", ev.to_jsonl());
        matched += 1;
    }
    eprintln!("matched {matched} of {total} events");
    0
}

fn plan() -> i32 {
    let env = env_with(150);
    let mut bob = ResearchAgent::bob(&env);
    bob.train();
    let answer = bob.respond_plan();
    println!("{}\n", answer.text);
    let coverage = PlanCoverage::of(&answer.text);
    println!(
        "covers {:.0}% of the expert reference components (confidence {}/10)",
        coverage.coverage() * 100.0,
        answer.confidence
    );
    0
}

fn questions_cmd(knowledge: &str, max: usize) -> i32 {
    let env = env_with(150);
    let mut agent = match agent_from_knowledge(&env, knowledge) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let generated = questions::generate(&mut agent, max);
    if generated.is_empty() {
        println!("no questions could be generated — the knowledge file holds no entity facts");
        return 0;
    }
    let rows: Vec<Vec<String>> = generated
        .iter()
        .map(|q| {
            vec![
                q.novelty.to_string(),
                q.confidence.to_string(),
                q.question.clone(),
            ]
        })
        .collect();
    println!("{}", table(&["novelty", "conf", "question"], &rows));
    0
}

fn simulate(what: SimChoice) -> i32 {
    use ira_worldmodel::{storm::StormScenario, World};
    match what {
        SimChoice::Storms => {
            let world = World::standard();
            println!(
                "storm impact sweep ({} cables, Monte Carlo 200 trials):\n",
                world.cables.len()
            );
            let rows: Vec<Vec<String>> = StormScenario::catalog()
                .into_iter()
                .map(|storm| {
                    let report = world.graph.storm_report(
                        &world.cables,
                        &world.storm_model,
                        &storm,
                        200,
                        0xC11,
                    );
                    vec![
                        storm.name.clone(),
                        format!("{:.0}", storm.dst_nt),
                        format!("{:.1}", report.mean_cables_down),
                        format!("{:.3}", report.mean_pair_connectivity),
                    ]
                })
                .collect();
            println!(
                "{}",
                table(
                    &["scenario", "dst-nT", "cables-down", "pair-connectivity"],
                    &rows
                )
            );
        }
        SimChoice::Outage => {
            use ira_worldmodel::bgp::RoutingSystem;
            let mut sys = RoutingSystem::standard();
            let (before, during, after) = sys.facebook_outage_replay();
            println!(
                "facebook.com availability across edge networks:\n  pre-incident {:.0}%  ->  \
                 DNS prefixes withdrawn {:.0}%  ->  restored {:.0}%",
                before * 100.0,
                during * 100.0,
                after * 100.0
            );
            println!(
                "google.com stays at {:.0}% throughout.",
                sys.availability("google.com") * 100.0
            );
        }
        SimChoice::Economics => {
            use ira_worldmodel::econ::storm_impact;
            let world = World::standard();
            let rows: Vec<Vec<String>> = StormScenario::catalog()
                .into_iter()
                .map(|storm| {
                    let impact = storm_impact(&world, &storm, 200, 0xEC0);
                    vec![
                        storm.name.clone(),
                        format!("{:.1}", impact.grid_losses_busd),
                        format!("{:.1}", impact.connectivity_losses_busd),
                        format!("{:.1}", impact.total_busd),
                    ]
                })
                .collect();
            println!(
                "{}",
                table(
                    &["scenario", "grid-$B", "connectivity-$B", "total-$B"],
                    &rows
                )
            );
        }
    }
    0
}

/// Print the deterministic virtual-op counters (the `--opstats` global
/// flag) to stderr, so stdout stays the command's own report. Counters
/// are process-wide totals since program start.
pub fn print_opstats() {
    let llm = ira_simllm::lexicon::ops::snapshot();
    let lookups = ira_webcorpus::index::opstats::snapshot();
    eprintln!("[opstats] tokenize_chars={}", llm.tokenize_chars);
    eprintln!("[opstats] absorb_calls={}", llm.absorb_calls);
    eprintln!("[opstats] classify_calls={}", llm.classify_calls);
    eprintln!(
        "[opstats] extract_cache hits={} misses={}",
        llm.extract_hits, llm.extract_misses
    );
    eprintln!(
        "[opstats] answer_cache hits={} misses={}",
        llm.answer_hits, llm.answer_misses
    );
    eprintln!(
        "[opstats] corpus_lookups={} docs_scanned={}",
        lookups.lookup_calls, lookups.docs_scanned
    );
}

/// Load a knowledge store for `ira mem` inspection (graph rebuilt or
/// restored from the sidecar snapshot by [`KnowledgeStore::load`]).
fn load_store(path: &str) -> Result<KnowledgeStore, i32> {
    KnowledgeStore::load(Path::new(path)).map_err(|e| {
        eprintln!("error: could not load {path}: {e}");
        eprintln!("hint: run `ira train --out {path}` first");
        1
    })
}

/// `ira mem stats`: the claim graph behind a knowledge file — node and
/// edge counts, the corroboration histogram, and the per-host trust
/// table the poisoning detector votes with.
fn mem_stats(knowledge: &str) -> i32 {
    let store = match load_store(knowledge) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let stats = store.graph_stats();
    println!("entries: {}", store.len());
    println!(
        "claim graph: {} nodes ({} live), {} co-occurrence edges",
        stats.nodes, stats.live_nodes, stats.edges
    );
    println!(
        "corroborated claims (≥2 hosts): {}",
        stats.corroborated_nodes
    );
    let hist: Vec<String> = stats
        .corroboration_histogram
        .iter()
        .map(u64::to_string)
        .collect();
    println!(
        "corroboration histogram [1, 2, 3, 4+ hosts]: {}",
        hist.join(" / ")
    );
    if stats.decay_evictions > 0 {
        println!("decay evictions: {}", stats.decay_evictions);
    }
    let rows: Vec<Vec<String>> = store
        .graph_host_stats()
        .into_iter()
        .map(|(host, s)| {
            vec![
                host,
                s.claims.to_string(),
                s.corroborated.to_string(),
                s.exclusive.to_string(),
            ]
        })
        .collect();
    if !rows.is_empty() {
        println!();
        println!(
            "{}",
            table(&["host", "claims", "corroborated", "exclusive"], &rows)
        );
    }
    0
}

/// `ira mem query`: preview retrieval for a query — which claim nodes
/// the query activates (matches plus co-occurrence expansions), and the
/// top entries under flat vs graph-mode scoring.
fn mem_query(knowledge: &str, query: &str, top: usize) -> i32 {
    let store = match load_store(knowledge) {
        Ok(s) => s,
        Err(code) => return code,
    };
    // Retrieval needs a "now"; the newest entry's timestamp keeps the
    // recency term meaningful without a live clock.
    let now = store
        .entries()
        .iter()
        .map(|e| e.learned_at)
        .max()
        .unwrap_or(0);

    let activation = store.with_graph(|g| g.activate(query));
    let mut node_rows: Vec<(f64, Vec<String>)> = store.with_graph(|g| {
        activation
            .iter()
            .map(|(&id, &act)| {
                let node = &g.nodes()[id as usize];
                let row = vec![
                    g.term_text(id).unwrap_or("?").to_string(),
                    format!("{act:.2}"),
                    node.corroboration().to_string(),
                    node.occurrences.to_string(),
                ];
                (act, row)
            })
            .collect()
    });
    node_rows.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1[0].cmp(&b.1[0])));
    println!("query: {query:?}");
    if node_rows.is_empty() {
        println!("no claim nodes activated — the graph has no matching terms");
    } else {
        println!(
            "{}",
            table(
                &["claim node", "activation", "corroboration", "occurrences"],
                &node_rows.into_iter().map(|(_, r)| r).collect::<Vec<_>>()
            )
        );
    }

    let was_on = store.graph_retrieval();
    store.set_graph_retrieval(false);
    let flat: Vec<u64> = store
        .retrieve(query, top, now)
        .into_iter()
        .map(|e| e.id)
        .collect();
    store.set_graph_retrieval(true);
    let graph_top = store.retrieve(query, top, now);
    store.set_graph_retrieval(was_on);

    let rows: Vec<Vec<String>> = graph_top
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let support = store.with_graph(|g| g.entry_support(e.id, &activation));
            let flat_rank = flat
                .iter()
                .position(|&id| id == e.id)
                .map(|p| (p + 1).to_string())
                .unwrap_or_else(|| "-".into());
            vec![
                (i + 1).to_string(),
                flat_rank,
                format!("{support:.2}"),
                e.source_url.clone(),
                e.topic.clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["graph-rank", "flat-rank", "support", "source", "topic"],
            &rows
        )
    );
    0
}

/// `ira mem provenance`: every source that asserted a claim term, plus
/// its strongest co-occurrence neighbors — where a belief came from.
fn mem_provenance(knowledge: &str, term: &str) -> i32 {
    let store = match load_store(knowledge) {
        Ok(s) => s,
        Err(code) => return code,
    };
    store.with_graph(|g| match g.node_by_text(term) {
        None => {
            println!("no claim node for {term:?}");
            1
        }
        Some(node) => {
            println!(
                "claim {:?}: {} occurrences, corroborated by {} host(s){}",
                term,
                node.occurrences,
                node.corroboration(),
                if node.decayed { ", decayed" } else { "" }
            );
            println!(
                "first seen {:.1}s, last seen {:.1}s (virtual)",
                node.first_seen_us as f64 / 1e6,
                node.last_seen_us as f64 / 1e6
            );
            let rows: Vec<Vec<String>> = node
                .sources
                .iter()
                .map(|s| {
                    vec![
                        s.host.clone(),
                        s.path.clone(),
                        format!("{:.1}", s.fetched_at_us as f64 / 1e6),
                        s.session.to_string(),
                        s.entry_id.to_string(),
                    ]
                })
                .collect();
            if rows.is_empty() {
                println!("no live provenance (every asserting entry was evicted)");
            } else {
                println!(
                    "{}",
                    table(&["host", "path", "fetched-s", "session", "entry"], &rows)
                );
            }
            let neighbors = g.neighbors(node.id);
            if !neighbors.is_empty() {
                println!("strongest co-occurrences:");
                for &(w, n) in neighbors.iter().take(8) {
                    println!("  {:<24} weight {}", g.term_text(n).unwrap_or("?"), w);
                }
            }
            0
        }
    })
}

/// `ira scenario list|describe|quiz`. The output is intentionally
/// stable and diff-friendly: registry order, fixed column widths, and
/// JSONL quiz items, so CI and scripts can pin it byte-for-byte.
fn scenario_cmd(action: ScenarioAction) -> i32 {
    use ira_worldmodel::scenario::{lookup, ScenarioRegistry};
    let world = ira_worldmodel::World::standard();
    let resolve = |name: &str| {
        lookup(name).ok_or_else(|| {
            let known = ScenarioRegistry::standard().names().join(", ");
            format!("unknown scenario {name:?}; registered: {known}")
        })
    };
    match action {
        ScenarioAction::List => {
            println!(
                "{:<24} {:<18} {:>11} {:>10}",
                "name", "class", "conclusions", "event-docs"
            );
            for name in ScenarioRegistry::standard().names() {
                let s = lookup(name).expect("registry names resolve");
                println!(
                    "{:<24} {:<18} {:>11} {:>10}",
                    s.name(),
                    s.class().label(),
                    s.conclusions(&world).len(),
                    s.docs(&world).event_count()
                );
            }
            0
        }
        ScenarioAction::Describe { name } => {
            let s = match resolve(&name) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            println!("name:  {}", s.name());
            println!("class: {}", s.class().label());
            println!("{}", s.description());
            let conclusions = s.conclusions(&world);
            println!("\nconclusions ({}):", conclusions.len());
            for c in &conclusions {
                println!("  [{}] {}", c.id, c.statement);
                println!("      question: {}", c.question);
                println!("      expected: {}", c.expected_answer);
                println!("      rationale: {}", c.rationale_terms.join(", "));
                if !c.wrong_terms.is_empty() {
                    println!("      wrong-side: {}", c.wrong_terms.join(", "));
                }
            }
            let docs = s.docs(&world);
            println!("\nevent documents ({}):", docs.event_count());
            for d in &docs.events {
                println!("  [{:?}] {}", d.channel, d.title);
                for sentence in &d.sentences {
                    println!("      {sentence}");
                }
            }
            0
        }
        ScenarioAction::Quiz { name } => {
            let s = match resolve(&name) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            let quiz = QuizBank::for_scenario(&world, s.as_ref());
            for item in quiz.iter() {
                println!(
                    "{}",
                    serde_json::to_string(item).expect("quiz item serializes")
                );
            }
            0
        }
    }
}

fn audit_cmd() -> i32 {
    let world = ira_worldmodel::World::standard();
    let report = ira_worldmodel::audit(&world);
    if report.clean() {
        println!(
            "clean: {} cables, {}+{} data centers, {} grids, {} incidents pass every check",
            world.cables.len(),
            world.google.len(),
            world.facebook.len(),
            world.grids.len(),
            world.incidents.len()
        );
        0
    } else {
        for f in &report.findings {
            eprintln!("[{}] {}", f.dataset, f.message);
        }
        1
    }
}

fn corpus_stats(distractors: usize, faults: f64) -> i32 {
    let env = env_with(distractors);
    println!("documents: {}", env.corpus.len());
    println!("\nby topic:");
    for (topic, count) in env.corpus.topic_counts() {
        println!("  {:<26} {count}", topic.label());
    }
    println!("\nby source:");
    for (source, count) in env.corpus.source_counts() {
        println!(
            "  {:<26} {count}  (sim://{})",
            source.label(),
            source.host()
        );
    }
    if faults > 0.0 {
        let hosts = env.client.network().host_names();
        let plan = FaultPlan::random(&hosts, faults, train_horizon(), FAULT_SEED);
        println!(
            "\nfault plan at {:.0}% intensity (seed {FAULT_SEED:#x}, horizon {}s):",
            faults * 100.0,
            train_horizon().as_secs_f64()
        );
        for (host, host_plan) in &plan.hosts {
            for w in &host_plan.windows {
                println!(
                    "  {:<26} {:>6.1}s - {:>6.1}s  {:?}",
                    host,
                    w.from.as_micros() as f64 / 1e6,
                    w.until.as_micros() as f64 / 1e6,
                    w.kind
                );
            }
        }
    }
    0
}
