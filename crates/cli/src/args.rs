//! Hand-rolled argument parsing for the `ira` CLI.
//!
//! Deliberately dependency-free: the grammar is small (one subcommand,
//! a handful of `--flag value` options, one positional), and keeping it
//! in-tree means the whole workspace builds from the offline
//! dependency set.

use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Train an agent and write its knowledge file.
    Train {
        role: RoleChoice,
        out: String,
        crawl_links: usize,
        distractors: usize,
        /// Fault intensity in [0, 1]: fraction of hosts given seeded
        /// fault windows (0 disables fault injection).
        faults: f64,
        /// Resume from the training checkpoint next to `out`.
        resume: bool,
        /// Train this many independently seeded sessions on worker
        /// threads (1 = the classic serial path).
        parallel: usize,
        /// Write a replayable JSONL trace of every session here.
        trace: Option<String>,
        /// Print the metrics summary table after the run.
        metrics: bool,
    },
    /// Answer one question from a knowledge file.
    Ask { knowledge: String, question: String },
    /// Self-learn a question (updates the knowledge file).
    Learn {
        knowledge: String,
        question: String,
        threshold: u8,
    },
    /// Run the full quiz evaluation.
    Quiz {
        incidents: bool,
        threshold: u8,
        report: Option<String>,
        /// Evaluate this many independently seeded agents on worker
        /// threads and report each (1 = single agent, classic output).
        parallel: usize,
        /// Write a replayable JSONL trace of every session here.
        trace: Option<String>,
        /// Print the metrics summary table after the run.
        metrics: bool,
    },
    /// Generate a storm response plan.
    Plan,
    /// Generate research questions from a knowledge file.
    Questions { knowledge: String, max: usize },
    /// Print corpus statistics.
    Corpus { distractors: usize, faults: f64 },
    /// Run a world-model simulation.
    Simulate { what: SimChoice },
    /// Inspect the registered incident scenarios.
    Scenario { action: ScenarioAction },
    /// Summarize a JSONL trace file into the metrics table.
    TraceSummarize { file: String },
    /// Fold a JSONL trace into causal span trees and print the
    /// profile (flame view, hotspots, critical paths).
    TraceProfile {
        file: String,
        /// Emit the JSON profile instead of the text view.
        json: bool,
        /// Hotspot table size.
        top: usize,
    },
    /// Diff two traces/profiles/snapshots and report regressions.
    TraceDiff {
        base: String,
        current: String,
        /// Allowed relative drift, in percent (0 = exact).
        max_regress: f64,
    },
    /// Filter a trace's events by stage, session, or duration.
    TraceQuery {
        file: String,
        stage: Option<String>,
        session: Option<u32>,
        slower_than: Option<u64>,
    },
    /// Serve investigation requests (JSONL in, JSONL out) through the
    /// resilient multi-tenant serve layer.
    Serve {
        /// Read requests from this file instead of stdin.
        input: Option<String>,
        /// Worker threads. Responses are byte-identical across values.
        workers: usize,
        /// Admission token-bucket refill rate, requests per second.
        rate: f64,
        /// Admission token-bucket burst capacity.
        burst: u32,
        /// Default virtual deadline (µs) for requests that carry none.
        deadline_us: Option<u64>,
        /// Write the serve trace (a `serve.request` span per request).
        trace: Option<String>,
        /// Run every session's memory in graph-retrieval mode (claim
        /// graph corroboration joins the retrieval score).
        graph: bool,
        /// Print a sample request batch and exit.
        example: bool,
        /// Print a live-telemetry snapshot to stderr every N requests.
        stats_every: Option<usize>,
        /// Write flight-recorder post-mortem dumps into this directory.
        flight: Option<String>,
    },
    /// Render a live-telemetry snapshot (stats text or Prometheus
    /// exposition) from a snapshot JSON or a serve response transcript.
    ObsRender {
        file: String,
        /// Emit Prometheus exposition format instead of the text view.
        prom: bool,
    },
    /// Diff two BENCH_*.json reports and flag integer-field drift.
    BenchDiff {
        base: String,
        current: String,
        /// Allowed relative drift, in percent (0 = exact).
        max_regress: f64,
    },
    /// Inspect the claim graph behind a knowledge file.
    Mem { action: MemAction },
    /// Audit the built-in databases.
    Audit,
    /// Print usage.
    Help,
}

/// What `ira mem` does.
#[derive(Debug, Clone, PartialEq)]
pub enum MemAction {
    /// Print graph statistics: nodes, edges, corroboration histogram,
    /// per-host trust table.
    Stats { knowledge: String },
    /// Preview retrieval for a query with graph activation: matched
    /// claim nodes, their expansions, and the top entries with flat
    /// vs graph-mode scores.
    Query {
        knowledge: String,
        query: String,
        top: usize,
    },
    /// Show the provenance of a claim term: every source that asserted
    /// it, with host, path, fetch time, and session.
    Provenance { knowledge: String, term: String },
}

/// What `ira scenario` does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioAction {
    /// One line per registered scenario: name, class, counts.
    List,
    /// Full spec of one scenario: conclusions and event documents.
    Describe { name: String },
    /// The scenario's derived quiz as JSONL, one item per line.
    Quiz { name: String },
}

/// What `ira simulate` runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimChoice {
    /// Storm impact sweep over the scenario catalog.
    Storms,
    /// The 2021 Facebook outage replay on the BGP substrate.
    Outage,
    /// Economic impact per scenario.
    Economics,
}

/// Which built-in role to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoleChoice {
    Bob,
    Alice,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

pub const USAGE: &str = "\
ira — interactive research agent for Internet incident investigation

USAGE:
    ira <command> [options]

COMMANDS:
    train       Train an agent and save its knowledge
                  --role bob|alice        (default bob)
                  --out <file>            (default knowledge.json)
                  --crawl <n>             related links to follow (default 0)
                  --distractors <n>       corpus distractor count (default 150)
                  --faults <0..1>         fault-injection intensity (default 0)
                  --resume                resume from the training checkpoint
                  --parallel <n>          train n seeded sessions on worker threads
                                          (default 1; session 0 writes --out)
                  --trace <file>          write a replayable JSONL trace
                  --metrics               print the metrics summary table
    ask         Answer a question from saved knowledge
                  --knowledge <file>      (default knowledge.json)
                  \"<question>\"
    learn       Self-learn a question, updating the knowledge file
                  --knowledge <file>      (default knowledge.json)
                  --threshold <0-10>      confidence threshold (default 7)
                  \"<question>\"
    quiz        Train + evaluate against the expert conclusions
                  --incidents             use the incident quiz instead
                  --threshold <0-10>      (default 7)
                  --report <file>         write a markdown report
                  --parallel <n>          evaluate n seeded agents on worker threads
                                          (default 1; classic single-agent output)
                  --trace <file>          write a replayable JSONL trace
                  --metrics               print the metrics summary table
    serve       Serve investigation requests through the resilient
                multi-tenant serve layer: JSONL requests on stdin (or
                --input), one JSONL response per line on stdout, in
                request order. Admission control sheds overload with
                typed `serve.overloaded` responses; per-request virtual
                deadlines degrade gracefully (`degraded: true` with
                partial results); panicking sessions are isolated and
                retried with seeded backoff. Responses and traces are
                byte-identical for any --workers value.
                  --input <file>          read requests from a file
                  --workers <n>           worker threads (default 4)
                  --rate <per-sec>        admission refill rate (default 2)
                  --burst <n>             admission burst size (default 8)
                  --deadline-us <µs>      default virtual deadline
                  --trace <file>          write the serve trace
                  --graph                 graph-retrieval memory mode
                  --example               print a sample request batch
                  --stats-every <n>       print a live-telemetry snapshot
                                          to stderr every n requests
                  --flight <dir>          write flight-recorder post-mortem
                                          dumps (one JSONL per trigger)
                                          into this directory
    plan        Train + produce a storm response plan
    questions   Propose research questions from saved knowledge
                  --knowledge <file>      (default knowledge.json)
                  --max <n>               (default 10)
    corpus      Print synthetic-web statistics
                  --distractors <n>       (default 150)
                  --faults <0..1>         report the fault plan at this intensity
    simulate    Run a world-model simulation
                  storms | outage | economics   (default storms)
    scenario    Inspect the registered incident scenarios (stable,
                diff-friendly output; each scenario derives its own
                corpus slice and ground-truth quiz from the world model)
                  list                    one line per scenario: name,
                                          class, conclusion and event-doc
                                          counts
                  describe <name>         the full spec: every conclusion
                                          with its question, expected
                                          answer and rationale terms, and
                                          the event documents the
                                          scenario injects into the corpus
                  quiz <name>             the derived quiz as JSONL, one
                                          item per line
    trace       Inspect a recorded trace (every action accepts `-`
                to read the trace from stdin)
                  summarize <file>        print the deterministic
                                          per-stage latency/count table
                  profile <file>          fold the trace into causal span
                                          trees: inclusive/exclusive
                                          virtual time, hotspots,
                                          per-session critical paths
                    --json                emit the JSON profile instead
                    --top <n>             hotspot table size (default 10)
                  diff <base> <current>   compare two traces, profiles
                                          (--json output), or metrics
                                          snapshots; non-zero exit and
                                          a sorted report on drift
                    --max-regress <pct>   allowed relative drift in
                                          percent (default 0 = exact)
                  query <file>            grep the causal tree
                    --stage <stage>       keep events of this stage
                    --session <n>         keep one session
                    --slower-than <µs>    keep spans at least this long
    mem         Inspect the claim graph behind a knowledge file (all
                actions accept --knowledge <file>, default
                knowledge.json)
                  stats                   node/edge counts, corroboration
                                          histogram, per-host trust table
                  query \"<terms>\"         preview retrieval: matched claim
                                          nodes, expansions, and top
                                          entries with flat vs graph-mode
                                          scores
                    --top <n>             entries to show (default 5)
                  provenance \"<term>\"     every source that asserted a
                                          claim term: host, path, fetch
                                          time, session
    obs         Observability utilities
                  render <file>           render a live-telemetry snapshot
                                          (a snapshot JSON, or a serve
                                          response transcript — the last
                                          stats payload is used; `-` reads
                                          stdin)
                    --prom                Prometheus exposition format
                                          instead of the text view
    bench       Benchmark report utilities
                  diff <base> <current>   compare two BENCH_*.json reports
                                          field by field (integer fields
                                          only — floats are host timing);
                                          non-zero exit on drift
                    --max-regress <pct>   allowed relative drift in
                                          percent (default 0 = exact)
    audit       Integrity-check the built-in databases
    help        Show this message

GLOBAL OPTIONS:
    --opstats   After the command, print the deterministic virtual-op
                counters (characters tokenized, cache hits, documents
                scanned) to stderr — the counters behind the
                p1_hotpath perf baseline
";

/// Strip the global `--opstats` flag from an argument list. Returns
/// the remaining arguments and whether the flag was present. Global
/// flags are removed before command parsing so they never collide with
/// positionals.
pub fn split_opstats(args: &[String]) -> (Vec<String>, bool) {
    let mut present = false;
    let rest = args
        .iter()
        .filter(|a| {
            if *a == "--opstats" {
                present = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    (rest, present)
}

/// Parse `args` (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter().map(String::as_str);
    let cmd = it.next().unwrap_or("help");
    let rest: Vec<&str> = it.collect();

    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "train" => {
            let role = match flag(&rest, "--role")?.unwrap_or("bob") {
                "bob" => RoleChoice::Bob,
                "alice" => RoleChoice::Alice,
                other => return Err(ParseError(format!("unknown role {other:?}"))),
            };
            Ok(Command::Train {
                role,
                out: flag(&rest, "--out")?
                    .unwrap_or("knowledge.json")
                    .to_string(),
                crawl_links: num_flag(&rest, "--crawl", 0)?,
                distractors: num_flag(&rest, "--distractors", 150)?,
                faults: float_flag(&rest, "--faults", 0.0)?,
                resume: rest.contains(&"--resume"),
                parallel: num_flag(&rest, "--parallel", 1)?.max(1),
                trace: flag(&rest, "--trace")?.map(str::to_string),
                metrics: rest.contains(&"--metrics"),
            })
        }
        "ask" => Ok(Command::Ask {
            knowledge: flag(&rest, "--knowledge")?
                .unwrap_or("knowledge.json")
                .to_string(),
            question: positional(&rest).ok_or_else(|| ParseError("ask needs a question".into()))?,
        }),
        "learn" => Ok(Command::Learn {
            knowledge: flag(&rest, "--knowledge")?
                .unwrap_or("knowledge.json")
                .to_string(),
            threshold: num_flag(&rest, "--threshold", 7)? as u8,
            question: positional(&rest)
                .ok_or_else(|| ParseError("learn needs a question".into()))?,
        }),
        "quiz" => Ok(Command::Quiz {
            incidents: rest.contains(&"--incidents"),
            threshold: num_flag(&rest, "--threshold", 7)? as u8,
            report: flag(&rest, "--report")?.map(str::to_string),
            parallel: num_flag(&rest, "--parallel", 1)?.max(1),
            trace: flag(&rest, "--trace")?.map(str::to_string),
            metrics: rest.contains(&"--metrics"),
        }),
        "serve" => {
            let rate = match flag(&rest, "--rate")? {
                Some(v) => v.parse::<f64>().map_err(|_| {
                    ParseError(format!("--rate expects requests per second, got {v:?}"))
                })?,
                None => 2.0,
            };
            if rate.is_nan() || rate <= 0.0 {
                return Err(ParseError(format!("--rate must be positive, got {rate}")));
            }
            let deadline_us = match flag(&rest, "--deadline-us")? {
                Some(v) => Some(v.parse::<u64>().map_err(|_| {
                    ParseError(format!("--deadline-us expects microseconds, got {v:?}"))
                })?),
                None => None,
            };
            Ok(Command::Serve {
                input: flag(&rest, "--input")?.map(str::to_string),
                workers: num_flag(&rest, "--workers", 4)?.max(1),
                rate,
                burst: num_flag(&rest, "--burst", 8)?.max(1) as u32,
                deadline_us,
                trace: flag(&rest, "--trace")?.map(str::to_string),
                graph: rest.contains(&"--graph"),
                example: rest.contains(&"--example"),
                stats_every: match flag(&rest, "--stats-every")? {
                    Some(v) => Some(v.parse::<usize>().map_err(|_| {
                        ParseError(format!("--stats-every expects a request count, got {v:?}"))
                    })?)
                    .filter(|n| *n > 0),
                    None => None,
                },
                flight: flag(&rest, "--flight")?.map(str::to_string),
            })
        }
        "obs" => match rest.first().copied() {
            Some("render") => {
                let sub = &rest[1..];
                let file = positional(sub).ok_or_else(|| {
                    ParseError("obs render needs a snapshot or transcript file (or -)".into())
                })?;
                Ok(Command::ObsRender {
                    file,
                    prom: sub.contains(&"--prom"),
                })
            }
            Some(other) => Err(ParseError(format!(
                "unknown obs action {other:?}; expected render"
            ))),
            None => Err(ParseError("obs needs an action: render".into())),
        },
        "bench" => match rest.first().copied() {
            Some("diff") => {
                let sub = &rest[1..];
                let positionals: Vec<&str> = {
                    let mut skip = false;
                    sub.iter()
                        .filter(|a| {
                            if skip {
                                skip = false;
                                return false;
                            }
                            if a.starts_with("--") {
                                skip = **a == "--max-regress";
                                return false;
                            }
                            true
                        })
                        .copied()
                        .collect()
                };
                let [base, current] = positionals[..] else {
                    return Err(ParseError(
                        "bench diff needs two inputs: <base> <current> (either may be -)".into(),
                    ));
                };
                let max_regress = match flag(sub, "--max-regress")? {
                    Some(v) => v.parse::<f64>().map_err(|_| {
                        ParseError(format!("--max-regress expects a percentage, got {v:?}"))
                    })?,
                    None => 0.0,
                };
                if !(0.0..=100.0).contains(&max_regress) {
                    return Err(ParseError(format!(
                        "--max-regress must be in [0, 100], got {max_regress}"
                    )));
                }
                Ok(Command::BenchDiff {
                    base: base.to_string(),
                    current: current.to_string(),
                    max_regress,
                })
            }
            Some(other) => Err(ParseError(format!(
                "unknown bench action {other:?}; expected diff"
            ))),
            None => Err(ParseError("bench needs an action: diff".into())),
        },
        "plan" => Ok(Command::Plan),
        "mem" => {
            let sub = rest.get(1..).unwrap_or(&[]);
            let knowledge = flag(sub, "--knowledge")?
                .unwrap_or("knowledge.json")
                .to_string();
            match rest.first().copied() {
                Some("stats") => Ok(Command::Mem {
                    action: MemAction::Stats { knowledge },
                }),
                Some("query") => Ok(Command::Mem {
                    action: MemAction::Query {
                        knowledge,
                        query: positional(sub)
                            .ok_or_else(|| ParseError("mem query needs a query string".into()))?,
                        top: num_flag(sub, "--top", 5)?.max(1),
                    },
                }),
                Some("provenance") => Ok(Command::Mem {
                    action: MemAction::Provenance {
                        knowledge,
                        term: positional(sub)
                            .ok_or_else(|| ParseError("mem provenance needs a term".into()))?,
                    },
                }),
                Some(other) => Err(ParseError(format!(
                    "unknown mem action {other:?}; expected stats|query|provenance"
                ))),
                None => Err(ParseError(
                    "mem needs an action: stats|query|provenance".into(),
                )),
            }
        }
        "audit" => Ok(Command::Audit),
        "questions" => Ok(Command::Questions {
            knowledge: flag(&rest, "--knowledge")?
                .unwrap_or("knowledge.json")
                .to_string(),
            max: num_flag(&rest, "--max", 10)?,
        }),
        "corpus" => Ok(Command::Corpus {
            distractors: num_flag(&rest, "--distractors", 150)?,
            faults: float_flag(&rest, "--faults", 0.0)?,
        }),
        "simulate" => {
            let what = match positional(&rest).as_deref() {
                Some("storms") | None => SimChoice::Storms,
                Some("outage") => SimChoice::Outage,
                Some("economics") => SimChoice::Economics,
                Some(other) => {
                    return Err(ParseError(format!(
                        "unknown simulation {other:?}; expected storms|outage|economics"
                    )))
                }
            };
            Ok(Command::Simulate { what })
        }
        "scenario" => {
            let sub = rest.get(1..).unwrap_or(&[]);
            let name = || {
                positional(sub)
                    .ok_or_else(|| ParseError("scenario action needs a scenario name".into()))
            };
            match rest.first().copied() {
                Some("list") => Ok(Command::Scenario {
                    action: ScenarioAction::List,
                }),
                Some("describe") => Ok(Command::Scenario {
                    action: ScenarioAction::Describe { name: name()? },
                }),
                Some("quiz") => Ok(Command::Scenario {
                    action: ScenarioAction::Quiz { name: name()? },
                }),
                Some(other) => Err(ParseError(format!(
                    "unknown scenario action {other:?}; expected list|describe|quiz"
                ))),
                None => Err(ParseError(
                    "scenario needs an action: list|describe|quiz".into(),
                )),
            }
        }
        "trace" => match rest.first().copied() {
            Some("summarize") => {
                let file = rest.get(1).copied().ok_or_else(|| {
                    ParseError("trace summarize needs a trace file (or -)".into())
                })?;
                Ok(Command::TraceSummarize {
                    file: file.to_string(),
                })
            }
            Some("profile") => {
                let sub = &rest[1..];
                let file = positional(sub)
                    .ok_or_else(|| ParseError("trace profile needs a trace file (or -)".into()))?;
                Ok(Command::TraceProfile {
                    file,
                    json: sub.contains(&"--json"),
                    top: num_flag(sub, "--top", 10)?,
                })
            }
            Some("diff") => {
                let sub = &rest[1..];
                let positionals: Vec<&str> = {
                    let mut skip = false;
                    sub.iter()
                        .filter(|a| {
                            if skip {
                                skip = false;
                                return false;
                            }
                            if a.starts_with("--") {
                                skip = **a == "--max-regress";
                                return false;
                            }
                            true
                        })
                        .copied()
                        .collect()
                };
                let [base, current] = positionals[..] else {
                    return Err(ParseError(
                        "trace diff needs two inputs: <base> <current> (either may be -)".into(),
                    ));
                };
                let max_regress = match flag(sub, "--max-regress")? {
                    Some(v) => v.parse::<f64>().map_err(|_| {
                        ParseError(format!("--max-regress expects a percentage, got {v:?}"))
                    })?,
                    None => 0.0,
                };
                if !(0.0..=100.0).contains(&max_regress) {
                    return Err(ParseError(format!(
                        "--max-regress must be in [0, 100], got {max_regress}"
                    )));
                }
                Ok(Command::TraceDiff {
                    base: base.to_string(),
                    current: current.to_string(),
                    max_regress,
                })
            }
            Some("query") => {
                let sub = &rest[1..];
                let file = positional(sub)
                    .ok_or_else(|| ParseError("trace query needs a trace file (or -)".into()))?;
                let session = match flag(sub, "--session")? {
                    Some(v) => Some(v.parse::<u32>().map_err(|_| {
                        ParseError(format!("--session expects a number, got {v:?}"))
                    })?),
                    None => None,
                };
                let slower_than = match flag(sub, "--slower-than")? {
                    Some(v) => Some(v.parse::<u64>().map_err(|_| {
                        ParseError(format!("--slower-than expects microseconds, got {v:?}"))
                    })?),
                    None => None,
                };
                Ok(Command::TraceQuery {
                    file,
                    stage: flag(sub, "--stage")?.map(str::to_string),
                    session,
                    slower_than,
                })
            }
            Some(other) => Err(ParseError(format!(
                "unknown trace action {other:?}; expected summarize|profile|diff|query"
            ))),
            None => Err(ParseError(
                "trace needs an action: summarize|profile|diff|query".into(),
            )),
        },
        other => Err(ParseError(format!(
            "unknown command {other:?}; run `ira help` for usage"
        ))),
    }
}

/// Value of `--name` if present.
fn flag<'a>(rest: &[&'a str], name: &str) -> Result<Option<&'a str>, ParseError> {
    match rest.iter().position(|a| *a == name) {
        Some(i) => rest
            .get(i + 1)
            .copied()
            .map(Some)
            .ok_or_else(|| ParseError(format!("{name} needs a value"))),
        None => Ok(None),
    }
}

/// Numeric flag with default.
fn num_flag(rest: &[&str], name: &str, default: usize) -> Result<usize, ParseError> {
    match flag(rest, name)? {
        Some(v) => v
            .parse()
            .map_err(|_| ParseError(format!("{name} expects a number, got {v:?}"))),
        None => Ok(default),
    }
}

/// Float flag with default, clamped to [0, 1].
fn float_flag(rest: &[&str], name: &str, default: f64) -> Result<f64, ParseError> {
    match flag(rest, name)? {
        Some(v) => v
            .parse::<f64>()
            .map(|f| f.clamp(0.0, 1.0))
            .map_err(|_| ParseError(format!("{name} expects a number in [0, 1], got {v:?}"))),
        None => Ok(default),
    }
}

/// The first argument that is neither a flag name nor a flag value.
fn positional(rest: &[&str]) -> Option<String> {
    let mut skip_next = false;
    for (i, a) in rest.iter().enumerate() {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            // Boolean flags take no value.
            skip_next = !matches!(
                *a,
                "--incidents"
                    | "--resume"
                    | "--metrics"
                    | "--json"
                    | "--example"
                    | "--graph"
                    | "--prom"
            );
            let _ = i;
            continue;
        }
        return Some(a.to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, ParseError> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(p(&[]), Ok(Command::Help));
        assert_eq!(p(&["help"]), Ok(Command::Help));
        assert_eq!(p(&["--help"]), Ok(Command::Help));
    }

    #[test]
    fn train_defaults_and_overrides() {
        assert_eq!(
            p(&["train"]),
            Ok(Command::Train {
                role: RoleChoice::Bob,
                out: "knowledge.json".into(),
                crawl_links: 0,
                distractors: 150,
                faults: 0.0,
                resume: false,
                parallel: 1,
                trace: None,
                metrics: false,
            })
        );
        assert_eq!(
            p(&["train", "--role", "alice", "--out", "a.json", "--crawl", "2"]),
            Ok(Command::Train {
                role: RoleChoice::Alice,
                out: "a.json".into(),
                crawl_links: 2,
                distractors: 150,
                faults: 0.0,
                resume: false,
                parallel: 1,
                trace: None,
                metrics: false,
            })
        );
        assert!(p(&["train", "--role", "mallory"]).is_err());
    }

    #[test]
    fn serve_defaults_and_overrides() {
        assert_eq!(
            p(&["serve"]),
            Ok(Command::Serve {
                input: None,
                workers: 4,
                rate: 2.0,
                burst: 8,
                deadline_us: None,
                trace: None,
                graph: false,
                example: false,
                stats_every: None,
                flight: None,
            })
        );
        assert_eq!(
            p(&[
                "serve",
                "--input",
                "reqs.jsonl",
                "--workers",
                "8",
                "--rate",
                "0.5",
                "--burst",
                "3",
                "--deadline-us",
                "120000000",
                "--trace",
                "serve.jsonl",
                "--stats-every",
                "4",
                "--flight",
                "dumps/",
            ]),
            Ok(Command::Serve {
                input: Some("reqs.jsonl".into()),
                workers: 8,
                rate: 0.5,
                burst: 3,
                deadline_us: Some(120_000_000),
                trace: Some("serve.jsonl".into()),
                graph: false,
                example: false,
                stats_every: Some(4),
                flight: Some("dumps/".into()),
            })
        );
        assert!(matches!(
            p(&["serve", "--example"]),
            Ok(Command::Serve { example: true, .. })
        ));
        // --stats-every 0 means "never": it normalizes to None.
        assert!(matches!(
            p(&["serve", "--stats-every", "0"]),
            Ok(Command::Serve {
                stats_every: None,
                ..
            })
        ));
        assert!(p(&["serve", "--rate", "0"]).is_err());
        assert!(p(&["serve", "--deadline-us", "soon"]).is_err());
        assert!(p(&["serve", "--stats-every", "often"]).is_err());
    }

    #[test]
    fn obs_render_parses() {
        assert_eq!(
            p(&["obs", "render", "snap.json"]),
            Ok(Command::ObsRender {
                file: "snap.json".into(),
                prom: false,
            })
        );
        assert_eq!(
            p(&["obs", "render", "--prom", "-"]),
            Ok(Command::ObsRender {
                file: "-".into(),
                prom: true,
            })
        );
        assert!(p(&["obs"]).is_err());
        assert!(p(&["obs", "render"]).is_err());
        assert!(p(&["obs", "export", "snap.json"]).is_err());
    }

    #[test]
    fn bench_diff_parses() {
        assert_eq!(
            p(&["bench", "diff", "base.json", "fresh.json"]),
            Ok(Command::BenchDiff {
                base: "base.json".into(),
                current: "fresh.json".into(),
                max_regress: 0.0,
            })
        );
        assert_eq!(
            p(&["bench", "diff", "--max-regress", "5", "a.json", "-"]),
            Ok(Command::BenchDiff {
                base: "a.json".into(),
                current: "-".into(),
                max_regress: 5.0,
            })
        );
        assert!(p(&["bench"]).is_err());
        assert!(p(&["bench", "diff", "only-one"]).is_err());
        assert!(p(&["bench", "diff", "a", "b", "--max-regress", "999"]).is_err());
        assert!(p(&["bench", "run"]).is_err());
    }

    #[test]
    fn train_faults_and_resume_flags() {
        assert_eq!(
            p(&["train", "--faults", "0.25", "--resume"]),
            Ok(Command::Train {
                role: RoleChoice::Bob,
                out: "knowledge.json".into(),
                crawl_links: 0,
                distractors: 150,
                faults: 0.25,
                resume: true,
                parallel: 1,
                trace: None,
                metrics: false,
            })
        );
        // Intensity clamps into [0, 1]; junk is an error.
        assert_eq!(
            p(&["train", "--faults", "7"]),
            Ok(Command::Train {
                role: RoleChoice::Bob,
                out: "knowledge.json".into(),
                crawl_links: 0,
                distractors: 150,
                faults: 1.0,
                resume: false,
                parallel: 1,
                trace: None,
                metrics: false,
            })
        );
        assert!(p(&["train", "--faults", "many"]).is_err());
        assert_eq!(
            p(&["corpus", "--faults", "0.5"]),
            Ok(Command::Corpus {
                distractors: 150,
                faults: 0.5
            })
        );
    }

    #[test]
    fn ask_requires_a_question() {
        assert!(p(&["ask"]).is_err());
        assert_eq!(
            p(&["ask", "--knowledge", "k.json", "what is a CME?"]),
            Ok(Command::Ask {
                knowledge: "k.json".into(),
                question: "what is a CME?".into()
            })
        );
        // Positional before flags also works.
        assert_eq!(
            p(&["ask", "what is a CME?", "--knowledge", "k.json"]),
            Ok(Command::Ask {
                knowledge: "k.json".into(),
                question: "what is a CME?".into()
            })
        );
    }

    #[test]
    fn quiz_flags() {
        assert_eq!(
            p(&["quiz"]),
            Ok(Command::Quiz {
                incidents: false,
                threshold: 7,
                report: None,
                parallel: 1,
                trace: None,
                metrics: false,
            })
        );
        assert_eq!(
            p(&[
                "quiz",
                "--incidents",
                "--threshold",
                "9",
                "--report",
                "r.md"
            ]),
            Ok(Command::Quiz {
                incidents: true,
                threshold: 9,
                report: Some("r.md".into()),
                parallel: 1,
                trace: None,
                metrics: false,
            })
        );
    }

    #[test]
    fn parallel_flag_parses_and_clamps() {
        assert_eq!(
            p(&["train", "--parallel", "4"]),
            Ok(Command::Train {
                role: RoleChoice::Bob,
                out: "knowledge.json".into(),
                crawl_links: 0,
                distractors: 150,
                faults: 0.0,
                resume: false,
                parallel: 4,
                trace: None,
                metrics: false,
            })
        );
        // 0 would mean "no sessions"; it clamps up to serial.
        assert_eq!(
            p(&["quiz", "--parallel", "0"]),
            Ok(Command::Quiz {
                incidents: false,
                threshold: 7,
                report: None,
                parallel: 1,
                trace: None,
                metrics: false,
            })
        );
        assert_eq!(
            p(&["quiz", "--parallel", "8"]),
            Ok(Command::Quiz {
                incidents: false,
                threshold: 7,
                report: None,
                parallel: 8,
                trace: None,
                metrics: false,
            })
        );
        assert!(p(&["quiz", "--parallel", "several"]).is_err());
    }

    #[test]
    fn bad_numbers_are_reported() {
        let err = p(&["quiz", "--threshold", "lots"]).unwrap_err();
        assert!(err.0.contains("--threshold"));
    }

    #[test]
    fn missing_flag_value_is_reported() {
        assert!(p(&["train", "--out"]).is_err());
    }

    #[test]
    fn simulate_choices_parse() {
        assert_eq!(
            p(&["simulate"]),
            Ok(Command::Simulate {
                what: SimChoice::Storms
            })
        );
        assert_eq!(
            p(&["simulate", "outage"]),
            Ok(Command::Simulate {
                what: SimChoice::Outage
            })
        );
        assert_eq!(
            p(&["simulate", "economics"]),
            Ok(Command::Simulate {
                what: SimChoice::Economics
            })
        );
        assert!(p(&["simulate", "weather"]).is_err());
    }

    #[test]
    fn unknown_command_is_reported() {
        let err = p(&["frobnicate"]).unwrap_err();
        assert!(err.0.contains("frobnicate"));
    }

    #[test]
    fn trace_and_metrics_flags_parse() {
        assert_eq!(
            p(&["train", "--trace", "out.jsonl", "--metrics"]),
            Ok(Command::Train {
                role: RoleChoice::Bob,
                out: "knowledge.json".into(),
                crawl_links: 0,
                distractors: 150,
                faults: 0.0,
                resume: false,
                parallel: 1,
                trace: Some("out.jsonl".into()),
                metrics: true,
            })
        );
        assert_eq!(
            p(&["quiz", "--metrics", "--trace", "t.jsonl"]),
            Ok(Command::Quiz {
                incidents: false,
                threshold: 7,
                report: None,
                parallel: 1,
                trace: Some("t.jsonl".into()),
                metrics: true,
            })
        );
        assert!(p(&["train", "--trace"]).is_err());
        // --metrics is a boolean flag: it must not swallow a positional.
        assert_eq!(
            p(&["learn", "--metrics", "what is a CME?"]).map(|c| match c {
                Command::Learn { question, .. } => question,
                _ => unreachable!(),
            }),
            Ok("what is a CME?".to_string())
        );
    }

    #[test]
    fn opstats_is_stripped_before_parsing() {
        let argv: Vec<String> = ["ask", "--opstats", "what is a CME?"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (rest, opstats) = split_opstats(&argv);
        assert!(opstats);
        assert_eq!(
            parse(&rest),
            Ok(Command::Ask {
                knowledge: "knowledge.json".into(),
                question: "what is a CME?".into()
            })
        );
        let (rest, opstats) = split_opstats(&rest);
        assert!(!opstats);
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn mem_actions_parse() {
        assert_eq!(
            p(&["mem", "stats"]),
            Ok(Command::Mem {
                action: MemAction::Stats {
                    knowledge: "knowledge.json".into()
                }
            })
        );
        assert_eq!(
            p(&["mem", "stats", "--knowledge", "k.json"]),
            Ok(Command::Mem {
                action: MemAction::Stats {
                    knowledge: "k.json".into()
                }
            })
        );
        assert_eq!(
            p(&["mem", "query", "geomagnetic latitude", "--top", "3"]),
            Ok(Command::Mem {
                action: MemAction::Query {
                    knowledge: "knowledge.json".into(),
                    query: "geomagnetic latitude".into(),
                    top: 3,
                }
            })
        );
        assert_eq!(
            p(&["mem", "provenance", "--knowledge", "k.json", "ellalink"]),
            Ok(Command::Mem {
                action: MemAction::Provenance {
                    knowledge: "k.json".into(),
                    term: "ellalink".into(),
                }
            })
        );
        assert!(p(&["mem"]).is_err());
        assert!(p(&["mem", "query"]).is_err());
        assert!(p(&["mem", "provenance"]).is_err());
        assert!(p(&["mem", "forget", "everything"]).is_err());
    }

    #[test]
    fn scenario_actions_parse() {
        assert_eq!(
            p(&["scenario", "list"]),
            Ok(Command::Scenario {
                action: ScenarioAction::List
            })
        );
        assert_eq!(
            p(&["scenario", "describe", "route-leak"]),
            Ok(Command::Scenario {
                action: ScenarioAction::Describe {
                    name: "route-leak".into()
                }
            })
        );
        assert_eq!(
            p(&["scenario", "quiz", "cable-cut"]),
            Ok(Command::Scenario {
                action: ScenarioAction::Quiz {
                    name: "cable-cut".into()
                }
            })
        );
        assert!(p(&["scenario"]).is_err());
        assert!(p(&["scenario", "describe"]).is_err());
        assert!(p(&["scenario", "invent", "new-one"]).is_err());
    }

    #[test]
    fn trace_summarize_parses() {
        assert_eq!(
            p(&["trace", "summarize", "out.jsonl"]),
            Ok(Command::TraceSummarize {
                file: "out.jsonl".into()
            })
        );
        assert!(p(&["trace"]).is_err());
        assert!(p(&["trace", "summarize"]).is_err());
        assert!(p(&["trace", "replay", "out.jsonl"]).is_err());
    }

    #[test]
    fn trace_profile_parses() {
        assert_eq!(
            p(&["trace", "profile", "t.jsonl"]),
            Ok(Command::TraceProfile {
                file: "t.jsonl".into(),
                json: false,
                top: 10,
            })
        );
        assert_eq!(
            p(&["trace", "profile", "--json", "--top", "3", "-"]),
            Ok(Command::TraceProfile {
                file: "-".into(),
                json: true,
                top: 3,
            })
        );
        assert!(p(&["trace", "profile"]).is_err());
    }

    #[test]
    fn trace_diff_parses() {
        assert_eq!(
            p(&["trace", "diff", "base.json", "fresh.jsonl"]),
            Ok(Command::TraceDiff {
                base: "base.json".into(),
                current: "fresh.jsonl".into(),
                max_regress: 0.0,
            })
        );
        assert_eq!(
            p(&["trace", "diff", "--max-regress", "10", "a", "-"]),
            Ok(Command::TraceDiff {
                base: "a".into(),
                current: "-".into(),
                max_regress: 10.0,
            })
        );
        assert!(p(&["trace", "diff", "only-one"]).is_err());
        assert!(p(&["trace", "diff", "a", "b", "--max-regress", "oops"]).is_err());
        assert!(p(&["trace", "diff", "a", "b", "--max-regress", "250"]).is_err());
    }

    #[test]
    fn trace_query_parses() {
        assert_eq!(
            p(&["trace", "query", "t.jsonl", "--stage", "fetch"]),
            Ok(Command::TraceQuery {
                file: "t.jsonl".into(),
                stage: Some("fetch".into()),
                session: None,
                slower_than: None,
            })
        );
        assert_eq!(
            p(&[
                "trace",
                "query",
                "--session",
                "2",
                "--slower-than",
                "5000",
                "-"
            ]),
            Ok(Command::TraceQuery {
                file: "-".into(),
                stage: None,
                session: Some(2),
                slower_than: Some(5000),
            })
        );
        assert!(p(&["trace", "query"]).is_err());
        assert!(p(&["trace", "query", "t.jsonl", "--session", "x"]).is_err());
    }
}
