//! End-to-end CLI flows through the library surface: train writes a
//! knowledge file, ask/learn/questions consume it.

use ira_cli::args::{parse, Command, RoleChoice};
use ira_cli::commands::run;

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("ira-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn train_then_ask_then_learn_round_trip() {
    let knowledge = tmp("flow-knowledge.json");
    let _ = std::fs::remove_file(&knowledge);

    // train
    let code = run(Command::Train {
        role: RoleChoice::Bob,
        out: knowledge.clone(),
        crawl_links: 0,
        distractors: 50,
        faults: 0.0,
        resume: false,
        parallel: 1,
        trace: None,
        metrics: false,
    });
    assert_eq!(code, 0);
    assert!(std::path::Path::new(&knowledge).exists());

    // ask (pre-learning: should succeed, typically a hedge)
    let code = run(Command::Ask {
        knowledge: knowledge.clone(),
        question: "Which is more vulnerable to solar activity? The fiber optic cable that \
                   connects Brazil to Europe or the one that connects the US to Europe?"
            .into(),
    });
    assert_eq!(code, 0);

    // learn (updates the file)
    let before = std::fs::read_to_string(&knowledge).unwrap();
    let code = run(Command::Learn {
        knowledge: knowledge.clone(),
        question: "Which is more vulnerable to solar activity? The fiber optic cable that \
                   connects Brazil to Europe or the one that connects the US to Europe?"
            .into(),
        threshold: 7,
    });
    assert_eq!(code, 0);
    let after = std::fs::read_to_string(&knowledge).unwrap();
    assert!(
        after.len() > before.len(),
        "learning must grow the knowledge file"
    );

    // questions from the grown knowledge
    let code = run(Command::Questions {
        knowledge: knowledge.clone(),
        max: 5,
    });
    assert_eq!(code, 0);

    std::fs::remove_file(&knowledge).ok();
}

#[test]
fn faulted_train_still_writes_knowledge_and_cleans_its_checkpoint() {
    let knowledge = tmp("chaos-knowledge.json");
    let _ = std::fs::remove_file(&knowledge);

    let code = run(Command::Train {
        role: RoleChoice::Bob,
        out: knowledge.clone(),
        crawl_links: 0,
        distractors: 50,
        faults: 0.25,
        resume: false,
        parallel: 1,
        trace: None,
        metrics: false,
    });
    assert_eq!(code, 0);
    assert!(std::path::Path::new(&knowledge).exists());
    // Completed training removes its checkpoint; --resume on a clean
    // slate then just trains from scratch.
    let ckpt = format!("{knowledge}.ckpt");
    assert!(!std::path::Path::new(&ckpt).exists());
    let code = run(Command::Train {
        role: RoleChoice::Bob,
        out: knowledge.clone(),
        crawl_links: 0,
        distractors: 50,
        faults: 0.0,
        resume: true,
        parallel: 1,
        trace: None,
        metrics: false,
    });
    assert_eq!(code, 0);

    std::fs::remove_file(&knowledge).ok();
    std::fs::remove_file(format!("{knowledge}.bak")).ok();
}

#[test]
fn parallel_train_writes_the_same_knowledge_as_serial() {
    let serial = tmp("serial-knowledge.json");
    let parallel = tmp("parallel-knowledge.json");
    let _ = std::fs::remove_file(&serial);
    let _ = std::fs::remove_file(&parallel);

    let code = run(Command::Train {
        role: RoleChoice::Bob,
        out: serial.clone(),
        crawl_links: 0,
        distractors: 50,
        faults: 0.0,
        resume: false,
        parallel: 1,
        trace: None,
        metrics: false,
    });
    assert_eq!(code, 0);

    // Session 0 of a parallel run uses the serial seeds, so the file
    // it writes must match the serial run byte for byte.
    let code = run(parse(&[
        "train".to_string(),
        "--out".to_string(),
        parallel.clone(),
        "--distractors".to_string(),
        "50".to_string(),
        "--parallel".to_string(),
        "3".to_string(),
    ])
    .unwrap());
    assert_eq!(code, 0);

    let serial_bytes = std::fs::read(&serial).unwrap();
    let parallel_bytes = std::fs::read(&parallel).unwrap();
    assert_eq!(serial_bytes, parallel_bytes);

    std::fs::remove_file(&serial).ok();
    std::fs::remove_file(&parallel).ok();
}

#[test]
fn parallel_quiz_reports_all_agents() {
    let code = run(Command::Quiz {
        incidents: false,
        threshold: 7,
        report: None,
        parallel: 2,
        trace: None,
        metrics: false,
    });
    assert_eq!(code, 0);
}

#[test]
fn ask_with_missing_knowledge_file_fails_cleanly() {
    let code = run(Command::Ask {
        knowledge: tmp("definitely-missing.json"),
        question: "anything".into(),
    });
    assert_eq!(code, 1);
}

#[test]
fn corpus_and_help_commands_succeed() {
    assert_eq!(
        run(Command::Corpus {
            distractors: 10,
            faults: 0.0
        }),
        0
    );
    assert_eq!(run(Command::Help), 0);
    assert_eq!(run(parse(&["help".to_string()]).unwrap()), 0);
}

#[test]
fn traced_train_is_thread_count_invariant_and_summarizable() {
    let knowledge = tmp("trace-knowledge.json");
    let trace1 = tmp("train-p1.jsonl");
    let trace4 = tmp("train-p4.jsonl");
    for f in [&knowledge, &trace1, &trace4] {
        let _ = std::fs::remove_file(f);
    }

    let base = |out: &str, trace: &str, parallel: usize| Command::Train {
        role: RoleChoice::Bob,
        out: out.to_string(),
        crawl_links: 0,
        distractors: 50,
        faults: 0.0,
        resume: false,
        parallel,
        trace: Some(trace.to_string()),
        metrics: false,
    };
    assert_eq!(run(base(&knowledge, &trace1, 1)), 0);
    assert_eq!(run(base(&knowledge, &trace4, 4)), 0);

    let one = std::fs::read_to_string(&trace1).unwrap();
    let four = std::fs::read_to_string(&trace4).unwrap();
    assert!(!one.is_empty(), "serial trace must record events");
    assert!(
        four.len() > one.len(),
        "four sessions must record more than one"
    );
    // Per-session determinism: the serial run IS session 0, and the
    // JSONL file is rendered in session order, so the parallel trace
    // must start with the serial trace byte for byte.
    assert!(
        four.starts_with(&one),
        "session 0 of --parallel 4 must match --parallel 1 exactly"
    );
    // Every line of the wider trace belongs to a session in 0..4.
    for line in four.lines() {
        assert!(
            line.contains("\"session\":"),
            "line missing session: {line}"
        );
    }

    assert_eq!(
        run(Command::TraceSummarize {
            file: trace4.clone()
        }),
        0
    );
    // Summarizing garbage fails cleanly.
    let junk = tmp("junk.jsonl");
    std::fs::write(&junk, "not json\n").unwrap();
    assert_eq!(run(Command::TraceSummarize { file: junk.clone() }), 1);
    assert_eq!(
        run(Command::TraceSummarize {
            file: tmp("missing.jsonl")
        }),
        1
    );

    for f in [&knowledge, &trace1, &trace4, &junk] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn trace_profile_diff_and_query_flows() {
    let knowledge = tmp("profile-knowledge.json");
    let trace = tmp("profile-trace.jsonl");
    for f in [&knowledge, &trace] {
        let _ = std::fs::remove_file(f);
    }
    assert_eq!(
        run(Command::Train {
            role: RoleChoice::Bob,
            out: knowledge.clone(),
            crawl_links: 0,
            distractors: 50,
            faults: 0.0,
            resume: false,
            parallel: 1,
            trace: Some(trace.clone()),
            metrics: false,
        }),
        0
    );

    // Profile the recorded trace, text and JSON renderings.
    assert_eq!(
        run(Command::TraceProfile {
            file: trace.clone(),
            json: false,
            top: 5,
        }),
        0
    );
    assert_eq!(
        run(Command::TraceProfile {
            file: trace.clone(),
            json: true,
            top: 10,
        }),
        0
    );

    // A trace diffed against itself is clean at zero tolerance.
    assert_eq!(
        run(Command::TraceDiff {
            base: trace.clone(),
            current: trace.clone(),
            max_regress: 0.0,
        }),
        0
    );

    // Query filters compose and exit 0 even when nothing matches.
    assert_eq!(
        run(Command::TraceQuery {
            file: trace.clone(),
            stage: Some("llm".into()),
            session: Some(0),
            slower_than: Some(1),
        }),
        0
    );
    assert_eq!(
        run(Command::TraceQuery {
            file: trace.clone(),
            stage: Some("no-such-stage".into()),
            session: None,
            slower_than: None,
        }),
        0
    );

    for f in [&knowledge, &trace] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn trace_diff_catches_a_regression_and_respects_tolerance() {
    // Two handmade single-span traces: the llm call got 10% slower.
    let base = tmp("diff-base.jsonl");
    let current = tmp("diff-current.jsonl");
    let span = |value: u64| {
        format!(
            "{{\"at_us\":0,\"class\":\"Span\",\"detail\":\"\",\"name\":\"call\",\
             \"parent_id\":0,\"session\":0,\"span_id\":1,\"stage\":\"llm\",\"value\":{value}}}\n"
        )
    };
    std::fs::write(&base, span(1000)).unwrap();
    std::fs::write(&current, span(1100)).unwrap();

    // Zero tolerance: the 10% slowdown is a failure.
    assert_eq!(
        run(Command::TraceDiff {
            base: base.clone(),
            current: current.clone(),
            max_regress: 0.0,
        }),
        1
    );
    // A 15% budget forgives it.
    assert_eq!(
        run(Command::TraceDiff {
            base: base.clone(),
            current: current.clone(),
            max_regress: 15.0,
        }),
        0
    );

    std::fs::remove_file(&base).ok();
    std::fs::remove_file(&current).ok();
}

#[test]
fn malformed_trace_inputs_fail_with_exit_one() {
    let junk = tmp("profile-junk.jsonl");
    std::fs::write(&junk, "{\"at_us\":0}\nnot json\n").unwrap();
    let missing = tmp("profile-missing.jsonl");
    let _ = std::fs::remove_file(&missing);

    assert_eq!(
        run(Command::TraceProfile {
            file: junk.clone(),
            json: false,
            top: 10,
        }),
        1
    );
    assert_eq!(
        run(Command::TraceProfile {
            file: missing.clone(),
            json: true,
            top: 10,
        }),
        1
    );
    assert_eq!(
        run(Command::TraceDiff {
            base: junk.clone(),
            current: junk.clone(),
            max_regress: 0.0,
        }),
        1
    );
    assert_eq!(
        run(Command::TraceQuery {
            file: junk.clone(),
            stage: None,
            session: None,
            slower_than: None,
        }),
        1
    );
    // Both diff inputs cannot come from stdin.
    assert_eq!(
        run(Command::TraceDiff {
            base: "-".into(),
            current: "-".into(),
            max_regress: 0.0,
        }),
        1
    );

    std::fs::remove_file(&junk).ok();
}

#[test]
fn quiz_with_metrics_and_trace_succeeds() {
    let trace = tmp("quiz-trace.jsonl");
    let _ = std::fs::remove_file(&trace);
    let code = run(Command::Quiz {
        incidents: false,
        threshold: 7,
        report: None,
        parallel: 1,
        trace: Some(trace.clone()),
        metrics: true,
    });
    assert_eq!(code, 0);
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(
        text.lines().all(|l| l.contains("\"session\":0")),
        "single-agent quiz trace is all session 0"
    );
    std::fs::remove_file(&trace).ok();
}
