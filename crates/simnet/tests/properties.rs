//! Property-based tests for the simulated network stack.

use ira_simnet::clock::{Duration, Instant};
use ira_simnet::ratelimit::{Acquire, TokenBucket};
use ira_simnet::retry::{Backoff, RetryPolicy};
use ira_simnet::{NetError, Url};
use proptest::prelude::*;

/// Strategy for a valid host name.
fn host_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,20}(\\.[a-z]{2,8}){1,2}"
}

/// Strategy for a path of 0..4 clean segments.
fn path_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9_-]{1,12}", 0..4)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

/// Strategy for query pairs with arbitrary printable values.
fn query_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(("[a-z]{1,8}", "[ -~]{0,24}"), 0..4)
}

proptest! {
    #[test]
    fn url_build_parse_round_trips(
        host in host_strategy(),
        path in path_strategy(),
        query in query_strategy(),
    ) {
        let pairs: Vec<(&str, &str)> =
            query.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let url = Url::build(&host, &path, &pairs);
        let reparsed = Url::parse(&url.to_string()).unwrap();
        prop_assert_eq!(reparsed.host(), host.as_str());
        prop_assert_eq!(reparsed.path(), path.as_str());
        for (k, v) in &query {
            // First value for each key must survive the round trip.
            let first = query.iter().find(|(k2, _)| k2 == k).map(|(_, v2)| v2.as_str());
            if first == Some(v.as_str()) {
                prop_assert_eq!(reparsed.query_param(k), Some(v.as_str()));
            }
        }
    }

    #[test]
    fn url_parse_never_panics(s in "\\PC*") {
        let _ = Url::parse(&s);
    }

    #[test]
    fn duration_addition_is_monotone(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let d = Duration::from_micros(a) + Duration::from_micros(b);
        prop_assert!(d >= Duration::from_micros(a));
        prop_assert!(d >= Duration::from_micros(b));
        prop_assert_eq!(d.as_micros(), a + b);
    }

    #[test]
    fn backoff_delays_are_monotone_and_capped(
        initial_ms in 1u64..10_000,
        factor in 1.0f64..4.0,
        max_ms in 1u64..100_000,
        attempt in 0u32..40,
    ) {
        let b = Backoff {
            initial: Duration::from_millis(initial_ms),
            factor,
            max: Duration::from_millis(max_ms),
            ..Backoff::default()
        };
        let d0 = b.delay(attempt);
        let d1 = b.delay(attempt + 1);
        prop_assert!(d1 >= d0, "backoff must not shrink");
        prop_assert!(d0 <= Duration::from_millis(max_ms));
    }

    #[test]
    fn retry_policy_never_exceeds_max_retries(
        max_retries in 0u32..10,
        attempt in 0u32..20,
    ) {
        let p = RetryPolicy { max_retries, backoff: Backoff::default() };
        let err = NetError::ConnectionReset { host: "h".into() };
        let decision = p.next_delay(attempt, &err);
        prop_assert_eq!(decision.is_some(), attempt < max_retries);
    }

    #[test]
    fn token_bucket_never_grants_more_than_capacity_in_a_burst(
        capacity in 1u32..50,
        refill in 0.001f64..100.0,
        extra_tries in 0usize..30,
    ) {
        let mut bucket = TokenBucket::new(capacity, refill);
        let now = Instant::EPOCH;
        let mut granted = 0u32;
        for _ in 0..(capacity as usize + extra_tries) {
            if bucket.try_acquire(now) == Acquire::Granted {
                granted += 1;
            }
        }
        prop_assert_eq!(granted, capacity, "burst at t=0 is exactly the capacity");
    }

    #[test]
    fn token_bucket_retry_after_is_actionable(
        capacity in 1u32..10,
        refill in 0.01f64..50.0,
    ) {
        let mut bucket = TokenBucket::new(capacity, refill);
        let mut now = Instant::EPOCH;
        // Drain.
        for _ in 0..capacity {
            prop_assert_eq!(bucket.try_acquire(now), Acquire::Granted);
        }
        // Denied with a hint; waiting exactly that long must succeed.
        if let Acquire::Denied { retry_after } = bucket.try_acquire(now) {
            now = now + retry_after;
            prop_assert_eq!(bucket.try_acquire(now), Acquire::Granted);
        } else {
            prop_assert!(false, "bucket should be empty");
        }
    }

    #[test]
    fn token_bucket_available_is_bounded(
        capacity in 1u32..100,
        refill in 0.001f64..1000.0,
        advance_us in 0u64..10_000_000_000,
    ) {
        let mut bucket = TokenBucket::new(capacity, refill);
        let tokens = bucket.available(Instant::EPOCH + Duration::from_micros(advance_us));
        prop_assert!(tokens >= 0.0);
        prop_assert!(tokens <= capacity as f64 + 1e-9);
    }
}

mod breaker_properties {
    use ira_simnet::breaker::{BreakerConfig, BreakerState, CircuitBreaker, FailureClass};
    use ira_simnet::clock::{Duration, Instant};
    use proptest::prelude::*;

    /// Replay a random event sequence through the breaker state
    /// machine. Events: 0 = failure, 1 = success, 2 = allow() probe;
    /// each paired with a virtual-time step.
    fn replay(threshold: u32, cooldown_s: u64, events: &[(u8, u64)]) -> (CircuitBreaker, Instant) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_secs(cooldown_s),
        });
        let mut now = Instant::EPOCH;
        for (kind, step_ms) in events {
            now = now + Duration::from_millis(*step_ms);
            match kind % 3 {
                0 => b.record_failure(FailureClass::Timeout, now),
                1 => b.record_success(),
                _ => {
                    let _ = b.allow(now);
                }
            }
        }
        (b, now)
    }

    proptest! {
        #[test]
        fn breaker_invariants_hold_for_any_event_sequence(
            threshold in 1u32..6,
            cooldown_s in 1u64..120,
            events in prop::collection::vec((0u8..3, 0u64..200_000), 0..60),
        ) {
            let (b, now) = replay(threshold, cooldown_s, &events);
            let m = b.metrics();
            // Fast failures only happen while open, so each one was
            // preceded by an open transition.
            if m.fast_failures > 0 {
                prop_assert!(m.opened > 0);
            }
            // Every half-open admission and every reclose follows an
            // open transition; a reclose needs a half-open probe first.
            prop_assert!(m.half_opened <= m.opened);
            prop_assert!(m.reclosed <= m.half_opened);
            // retry_in is zero exactly when not open.
            match b.state() {
                BreakerState::Open => {}
                _ => prop_assert_eq!(b.retry_in(now), Duration::ZERO),
            }
        }

        #[test]
        fn open_breaker_always_admits_a_probe_after_cooldown(
            threshold in 1u32..6,
            cooldown_s in 1u64..120,
            failures in 1u32..12,
        ) {
            let mut b = CircuitBreaker::new(BreakerConfig {
                failure_threshold: threshold,
                cooldown: Duration::from_secs(cooldown_s),
            });
            let now = Instant::EPOCH;
            for _ in 0..failures.max(threshold) {
                b.record_failure(FailureClass::ConnectionReset, now);
            }
            prop_assert_eq!(b.state(), BreakerState::Open);
            // Any earlier moment fails fast; the cooldown boundary
            // admits the probe.
            if cooldown_s > 1 {
                prop_assert!(!b.allow(now + Duration::from_secs(cooldown_s - 1)));
            }
            prop_assert!(b.allow(now + Duration::from_secs(cooldown_s)));
            prop_assert_eq!(b.state(), BreakerState::HalfOpen);
        }

        #[test]
        fn closed_breaker_never_rejects(
            threshold in 2u32..8,
            events in prop::collection::vec(0u64..100_000, 0..30),
        ) {
            // Interleave below-threshold failure bursts with successes:
            // the breaker must stay closed and keep admitting requests.
            let mut b = CircuitBreaker::new(BreakerConfig {
                failure_threshold: threshold,
                cooldown: Duration::from_secs(30),
            });
            let mut now = Instant::EPOCH;
            for step_ms in &events {
                now = now + Duration::from_millis(*step_ms);
                for _ in 0..threshold - 1 {
                    b.record_failure(FailureClass::Timeout, now);
                }
                b.record_success();
                prop_assert_eq!(b.state(), BreakerState::Closed);
                prop_assert!(b.allow(now));
            }
            prop_assert_eq!(b.metrics().fast_failures, 0);
        }
    }
}

mod fault_plan_properties {
    use ira_simnet::clock::{Duration, Instant};
    use ira_simnet::faults::FaultPlan;
    use proptest::prelude::*;

    fn hosts_strategy() -> impl Strategy<Value = Vec<String>> {
        prop::collection::vec("[a-z]{1,8}\\.test", 1..12).prop_map(|mut hs| {
            hs.sort();
            hs.dedup();
            hs
        })
    }

    proptest! {
        #[test]
        fn random_plans_are_reproducible_and_well_formed(
            hosts in hosts_strategy(),
            intensity in 0.0f64..1.0,
            horizon_s in 1u64..100_000,
            seed in 0u64..1_000,
        ) {
            let horizon = Duration::from_secs(horizon_s);
            let a = FaultPlan::random(&hosts, intensity, horizon, seed);
            let b = FaultPlan::random(&hosts, intensity, horizon, seed);
            prop_assert_eq!(&a, &b, "same seed must give the same plan");

            // Afflicted host count matches the rounded intensity.
            let expected = if intensity == 0.0 {
                0
            } else {
                ((hosts.len() as f64 * intensity).round() as usize).clamp(1, hosts.len())
            };
            prop_assert_eq!(a.hosts.len(), expected);

            for (host, host_plan) in &a.hosts {
                prop_assert!(hosts.contains(host), "plan must only afflict known hosts");
                prop_assert!(!host_plan.windows.is_empty());
                let mut last_from = Instant::EPOCH;
                for w in &host_plan.windows {
                    prop_assert!(w.from < w.until, "windows must be non-empty spans");
                    prop_assert!(w.from >= last_from, "windows must be sorted by start");
                    last_from = w.from;
                }
            }
        }

        #[test]
        fn active_window_agrees_with_contains(
            hosts in hosts_strategy(),
            intensity in 0.1f64..1.0,
            horizon_s in 10u64..10_000,
            seed in 0u64..1_000,
            probe_s in 0u64..12_000,
        ) {
            let plan = FaultPlan::random(&hosts, intensity, Duration::from_secs(horizon_s), seed);
            let now = Instant::EPOCH + Duration::from_secs(probe_s);
            for (host, host_plan) in &plan.hosts {
                let active = plan.active(host, now);
                let any_contains = host_plan.windows.iter().any(|w| w.contains(now));
                prop_assert_eq!(active.is_some(), any_contains);
                if let Some(w) = active {
                    prop_assert!(w.contains(now));
                }
            }
            // Unknown hosts are never faulted.
            prop_assert!(plan.active("not-a-host.test", now).is_none());
        }

        #[test]
        fn window_count_sums_per_host_windows(
            hosts in hosts_strategy(),
            intensity in 0.0f64..1.0,
            seed in 0u64..1_000,
        ) {
            let plan = FaultPlan::random(&hosts, intensity, Duration::from_secs(3_600), seed);
            let summed: usize = plan.hosts.values().map(|h| h.windows.len()).sum();
            prop_assert_eq!(plan.window_count(), summed);
        }
    }
}

mod cache_properties {
    use ira_simnet::cache::{CacheConfig, ResponseCache};
    use ira_simnet::clock::{Duration, Instant};
    use ira_simnet::server::Response;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn cache_never_exceeds_capacity(
            capacity in 0usize..16,
            puts in prop::collection::vec("[a-z]{1,6}", 0..40),
        ) {
            let mut cache = ResponseCache::new(CacheConfig {
                capacity,
                ttl: Duration::from_secs(600),
            });
            for (i, key) in puts.iter().enumerate() {
                cache.put(
                    &format!("sim://h.test/{key}"),
                    Response::ok(format!("body {i}")),
                    Instant::from_micros(i as u64),
                );
                prop_assert!(cache.len() <= capacity);
            }
        }

        #[test]
        fn a_get_hit_always_follows_a_put_of_the_same_url(
            keys in prop::collection::vec("[a-z]{1,4}", 1..20),
            probe in "[a-z]{1,4}",
        ) {
            let mut cache = ResponseCache::new(CacheConfig {
                capacity: 64,
                ttl: Duration::from_secs(600),
            });
            for key in &keys {
                cache.put(&format!("sim://h.test/{key}"), Response::ok("x"), Instant::EPOCH);
            }
            let hit = cache.get(&format!("sim://h.test/{probe}"), Instant::EPOCH).is_some();
            prop_assert_eq!(hit, keys.contains(&probe));
        }
    }
}

/// Serve-shaped admission properties: the serve layer drives one
/// [`TokenBucket`] with a synthetic arrival clock, so these pin down
/// the behaviours admission control leans on — exact burst exhaustion,
/// monotone refill, bounded grant rate under sustained overload, and
/// bit-identical decision sequences for identical seeds.
mod serve_admission_properties {
    use ira_simnet::clock::{Duration, Instant};
    use ira_simnet::ratelimit::{Acquire, TokenBucket};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Replay a seeded arrival schedule and record each decision.
    fn replay(capacity: u32, refill: f64, seed: u64, arrivals: usize) -> Vec<Acquire> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut bucket = TokenBucket::new(capacity, refill);
        let mut now = Instant::EPOCH;
        let mut decisions = Vec::with_capacity(arrivals);
        for _ in 0..arrivals {
            now = now + Duration::from_micros(rng.gen_range(0..500_000));
            decisions.push(bucket.try_acquire(now));
        }
        decisions
    }

    proptest! {
        #[test]
        fn burst_exhaustion_denies_request_capacity_plus_one(
            capacity in 1u32..64,
            refill in 0.01f64..10.0,
        ) {
            let mut bucket = TokenBucket::new(capacity, refill);
            for i in 0..capacity {
                prop_assert_eq!(
                    bucket.try_acquire(Instant::EPOCH),
                    Acquire::Granted,
                    "request {} of a {}-burst must pass", i, capacity
                );
            }
            // The very next request at the same instant is shed with a
            // finite, positive hint — typed rejection, never a hang.
            match bucket.try_acquire(Instant::EPOCH) {
                Acquire::Denied { retry_after } => {
                    prop_assert!(retry_after > Duration::ZERO);
                    prop_assert!(retry_after <= Duration::from_secs((1.0 / refill).ceil() as u64 + 1));
                }
                Acquire::Granted => prop_assert!(false, "burst must be exactly the capacity"),
            }
        }

        #[test]
        fn refill_is_monotone_in_elapsed_time(
            capacity in 1u32..32,
            refill in 0.01f64..100.0,
            t1_us in 0u64..60_000_000,
            dt_us in 0u64..60_000_000,
        ) {
            // Drain two identical buckets, then observe them at t1 and
            // t1+dt: available tokens never decrease with more elapsed
            // time.
            let mut a = TokenBucket::new(capacity, refill);
            let mut b = TokenBucket::new(capacity, refill);
            for _ in 0..capacity {
                a.try_acquire(Instant::EPOCH);
                b.try_acquire(Instant::EPOCH);
            }
            let at_t1 = a.available(Instant::EPOCH + Duration::from_micros(t1_us));
            let later = b.available(Instant::EPOCH + Duration::from_micros(t1_us + dt_us));
            prop_assert!(later >= at_t1 - 1e-9, "refill must be monotone: {} then {}", at_t1, later);
        }

        #[test]
        fn sustained_overload_grants_at_most_burst_plus_refill(
            capacity in 1u32..16,
            refill in 0.5f64..20.0,
            horizon_s in 1u64..30,
        ) {
            // Hammer the bucket every 10ms for `horizon_s`: the grant
            // count must saturate at capacity + refill*horizon (+1 for
            // boundary effects), i.e. overload cannot extract extra
            // throughput.
            let mut bucket = TokenBucket::new(capacity, refill);
            let step = Duration::from_millis(10);
            let mut now = Instant::EPOCH;
            let end = Instant::EPOCH + Duration::from_secs(horizon_s);
            let mut granted = 0u64;
            while now < end {
                if bucket.try_acquire(now) == Acquire::Granted {
                    granted += 1;
                }
                now = now + step;
            }
            let ceiling = capacity as f64 + refill * horizon_s as f64 + 1.0;
            prop_assert!(
                (granted as f64) <= ceiling,
                "granted {} exceeds saturation ceiling {}", granted, ceiling
            );
        }

        #[test]
        fn identical_seeds_replay_identical_decision_sequences(
            capacity in 1u32..16,
            refill in 0.1f64..10.0,
            seed in 0u64..u64::MAX,
            arrivals in 1usize..200,
        ) {
            let first = replay(capacity, refill, seed, arrivals);
            let second = replay(capacity, refill, seed, arrivals);
            prop_assert_eq!(first, second, "same seed must shed the same requests");
        }

        #[test]
        fn different_seeds_eventually_diverge(
            capacity in 1u32..4,
            seed in 0u64..u64::MAX,
        ) {
            // Sanity check that the replay harness actually exercises
            // seed-dependent behaviour (otherwise the determinism
            // property above would be vacuous).
            let a = replay(capacity, 0.5, seed, 64);
            let b = replay(capacity, 0.5, seed.wrapping_add(1), 64);
            // Decision *sequences* may coincide; the grant counts over a
            // long run rarely do, but either way the harness must not
            // panic. Assert only well-formedness here.
            prop_assert_eq!(a.len(), 64);
            prop_assert_eq!(b.len(), 64);
        }
    }
}
