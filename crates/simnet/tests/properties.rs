//! Property-based tests for the simulated network stack.

use ira_simnet::clock::{Duration, Instant};
use ira_simnet::ratelimit::{Acquire, TokenBucket};
use ira_simnet::retry::{Backoff, RetryPolicy};
use ira_simnet::{NetError, Url};
use proptest::prelude::*;

/// Strategy for a valid host name.
fn host_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,20}(\\.[a-z]{2,8}){1,2}"
}

/// Strategy for a path of 0..4 clean segments.
fn path_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9_-]{1,12}", 0..4)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

/// Strategy for query pairs with arbitrary printable values.
fn query_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(("[a-z]{1,8}", "[ -~]{0,24}"), 0..4)
}

proptest! {
    #[test]
    fn url_build_parse_round_trips(
        host in host_strategy(),
        path in path_strategy(),
        query in query_strategy(),
    ) {
        let pairs: Vec<(&str, &str)> =
            query.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let url = Url::build(&host, &path, &pairs);
        let reparsed = Url::parse(&url.to_string()).unwrap();
        prop_assert_eq!(reparsed.host(), host.as_str());
        prop_assert_eq!(reparsed.path(), path.as_str());
        for (k, v) in &query {
            // First value for each key must survive the round trip.
            let first = query.iter().find(|(k2, _)| k2 == k).map(|(_, v2)| v2.as_str());
            if first == Some(v.as_str()) {
                prop_assert_eq!(reparsed.query_param(k), Some(v.as_str()));
            }
        }
    }

    #[test]
    fn url_parse_never_panics(s in "\\PC*") {
        let _ = Url::parse(&s);
    }

    #[test]
    fn duration_addition_is_monotone(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let d = Duration::from_micros(a) + Duration::from_micros(b);
        prop_assert!(d >= Duration::from_micros(a));
        prop_assert!(d >= Duration::from_micros(b));
        prop_assert_eq!(d.as_micros(), a + b);
    }

    #[test]
    fn backoff_delays_are_monotone_and_capped(
        initial_ms in 1u64..10_000,
        factor in 1.0f64..4.0,
        max_ms in 1u64..100_000,
        attempt in 0u32..40,
    ) {
        let b = Backoff {
            initial: Duration::from_millis(initial_ms),
            factor,
            max: Duration::from_millis(max_ms),
        };
        let d0 = b.delay(attempt);
        let d1 = b.delay(attempt + 1);
        prop_assert!(d1 >= d0, "backoff must not shrink");
        prop_assert!(d0 <= Duration::from_millis(max_ms));
    }

    #[test]
    fn retry_policy_never_exceeds_max_retries(
        max_retries in 0u32..10,
        attempt in 0u32..20,
    ) {
        let p = RetryPolicy { max_retries, backoff: Backoff::default() };
        let err = NetError::ConnectionReset { host: "h".into() };
        let decision = p.next_delay(attempt, &err);
        prop_assert_eq!(decision.is_some(), attempt < max_retries);
    }

    #[test]
    fn token_bucket_never_grants_more_than_capacity_in_a_burst(
        capacity in 1u32..50,
        refill in 0.001f64..100.0,
        extra_tries in 0usize..30,
    ) {
        let mut bucket = TokenBucket::new(capacity, refill);
        let now = Instant::EPOCH;
        let mut granted = 0u32;
        for _ in 0..(capacity as usize + extra_tries) {
            if bucket.try_acquire(now) == Acquire::Granted {
                granted += 1;
            }
        }
        prop_assert_eq!(granted, capacity, "burst at t=0 is exactly the capacity");
    }

    #[test]
    fn token_bucket_retry_after_is_actionable(
        capacity in 1u32..10,
        refill in 0.01f64..50.0,
    ) {
        let mut bucket = TokenBucket::new(capacity, refill);
        let mut now = Instant::EPOCH;
        // Drain.
        for _ in 0..capacity {
            prop_assert_eq!(bucket.try_acquire(now), Acquire::Granted);
        }
        // Denied with a hint; waiting exactly that long must succeed.
        if let Acquire::Denied { retry_after } = bucket.try_acquire(now) {
            now = now + retry_after;
            prop_assert_eq!(bucket.try_acquire(now), Acquire::Granted);
        } else {
            prop_assert!(false, "bucket should be empty");
        }
    }

    #[test]
    fn token_bucket_available_is_bounded(
        capacity in 1u32..100,
        refill in 0.001f64..1000.0,
        advance_us in 0u64..10_000_000_000,
    ) {
        let mut bucket = TokenBucket::new(capacity, refill);
        let tokens = bucket.available(Instant::EPOCH + Duration::from_micros(advance_us));
        prop_assert!(tokens >= 0.0);
        prop_assert!(tokens <= capacity as f64 + 1e-9);
    }
}

mod cache_properties {
    use ira_simnet::cache::{CacheConfig, ResponseCache};
    use ira_simnet::clock::{Duration, Instant};
    use ira_simnet::server::Response;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn cache_never_exceeds_capacity(
            capacity in 0usize..16,
            puts in prop::collection::vec("[a-z]{1,6}", 0..40),
        ) {
            let mut cache = ResponseCache::new(CacheConfig {
                capacity,
                ttl: Duration::from_secs(600),
            });
            for (i, key) in puts.iter().enumerate() {
                cache.put(
                    &format!("sim://h.test/{key}"),
                    Response::ok(format!("body {i}")),
                    Instant::from_micros(i as u64),
                );
                prop_assert!(cache.len() <= capacity.max(0));
            }
        }

        #[test]
        fn a_get_hit_always_follows_a_put_of_the_same_url(
            keys in prop::collection::vec("[a-z]{1,4}", 1..20),
            probe in "[a-z]{1,4}",
        ) {
            let mut cache = ResponseCache::new(CacheConfig {
                capacity: 64,
                ttl: Duration::from_secs(600),
            });
            for key in &keys {
                cache.put(&format!("sim://h.test/{key}"), Response::ok("x"), Instant::EPOCH);
            }
            let hit = cache.get(&format!("sim://h.test/{probe}"), Instant::EPOCH).is_some();
            prop_assert_eq!(hit, keys.contains(&probe));
        }
    }
}
