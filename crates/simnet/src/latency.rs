//! Seeded per-request latency and loss models.
//!
//! Real page fetches have a long-tailed latency distribution; the agent
//! training loop spends most of its virtual time here (experiment F1
//! depends on this split being realistic). We model latency as a base
//! RTT plus a log-normal-ish tail and an independent loss probability.

use crate::clock::Duration;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a host's latency behaviour.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Minimum round-trip time.
    pub base: Duration,
    /// Mean of the additional variable component.
    pub jitter_mean: Duration,
    /// Tail index: larger values produce heavier tails. Range [0, 1).
    pub tail: f64,
    /// Probability a request is lost (connection reset).
    pub loss: f64,
}

impl LatencyModel {
    /// A fast, reliable host (e.g. a search API endpoint).
    pub fn fast() -> Self {
        LatencyModel {
            base: Duration::from_millis(15),
            jitter_mean: Duration::from_millis(10),
            tail: 0.05,
            loss: 0.001,
        }
    }

    /// A typical content site.
    pub fn typical() -> Self {
        LatencyModel {
            base: Duration::from_millis(60),
            jitter_mean: Duration::from_millis(40),
            tail: 0.15,
            loss: 0.01,
        }
    }

    /// A slow or overloaded origin (e.g. a forum archive).
    pub fn slow() -> Self {
        LatencyModel {
            base: Duration::from_millis(200),
            jitter_mean: Duration::from_millis(150),
            tail: 0.30,
            loss: 0.03,
        }
    }

    /// Draw one request outcome from the model.
    ///
    /// The variable component is an exponential draw stretched by a
    /// Pareto-style tail factor with probability `tail`, which gives the
    /// p99 ≫ p50 shape seen in real fetch traces without needing a full
    /// distributions crate.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> LatencySample {
        if rng.gen::<f64>() < self.loss {
            return LatencySample::Lost;
        }
        // Exponential via inverse CDF; clamp the uniform away from 0.
        let u: f64 = rng.gen_range(1e-9..1.0f64);
        let mut extra = self.jitter_mean.mul_f64(-u.ln());
        if rng.gen::<f64>() < self.tail {
            let stretch = rng.gen_range(3.0..12.0);
            extra = extra.mul_f64(stretch);
        }
        LatencySample::Delivered(self.base + extra)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::typical()
    }
}

/// Outcome of one simulated request transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencySample {
    /// The request completes after this much virtual time.
    Delivered(Duration),
    /// The request is lost; the client sees a connection reset.
    Lost,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn draws(model: LatencyModel, n: usize, seed: u64) -> (Vec<Duration>, usize) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut delivered = Vec::new();
        let mut lost = 0;
        for _ in 0..n {
            match model.sample(&mut rng) {
                LatencySample::Delivered(d) => delivered.push(d),
                LatencySample::Lost => lost += 1,
            }
        }
        (delivered, lost)
    }

    #[test]
    fn samples_respect_base_floor() {
        let (delivered, _) = draws(LatencyModel::typical(), 2_000, 7);
        assert!(delivered.iter().all(|d| *d >= Duration::from_millis(60)));
    }

    #[test]
    fn loss_rate_matches_parameter() {
        let model = LatencyModel {
            loss: 0.2,
            ..LatencyModel::fast()
        };
        let (_, lost) = draws(model, 10_000, 11);
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn tail_produces_heavy_upper_quantiles() {
        let (mut delivered, _) = draws(LatencyModel::slow(), 5_000, 13);
        delivered.sort();
        let p50 = delivered[delivered.len() / 2];
        let p99 = delivered[delivered.len() * 99 / 100];
        assert!(
            p99.as_micros() > 3 * p50.as_micros(),
            "expected heavy tail, got p50={p50} p99={p99}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (a, _) = draws(LatencyModel::typical(), 100, 99);
        let (b, _) = draws(LatencyModel::typical(), 100, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_loss_never_drops() {
        let model = LatencyModel {
            loss: 0.0,
            ..LatencyModel::fast()
        };
        let (_, lost) = draws(model, 5_000, 3);
        assert_eq!(lost, 0);
    }
}
