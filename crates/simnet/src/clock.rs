//! Virtual time.
//!
//! All latency in the simulated network is charged against a shared
//! [`VirtualClock`] rather than the host clock. This makes experiments
//! that report "time to learn" reproducible bit-for-bit and lets the
//! benchmark harness run thousands of simulated requests per second of
//! host time.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A span of virtual time, stored in microseconds.
///
/// Microsecond resolution is enough to model sub-millisecond intra-DC
/// latencies while keeping arithmetic in `u64` overflow-safe for any
/// realistic simulation length (~584k years).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Duration(u64);

impl Duration {
    pub const ZERO: Duration = Duration(0);

    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative factor, saturating at the maximum.
    ///
    /// Used by backoff policies (`base * multiplier^attempt`).
    pub fn mul_f64(self, factor: f64) -> Duration {
        debug_assert!(factor >= 0.0, "duration scale factor must be non-negative");
        let scaled = (self.0 as f64 * factor).min(u64::MAX as f64);
        Duration(scaled as u64)
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// A point in virtual time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Instant(u64);

impl Instant {
    pub const EPOCH: Instant = Instant(0);

    pub const fn from_micros(us: u64) -> Self {
        Instant(us)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn duration_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0.saturating_add(rhs.as_micros()))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", Duration(self.0))
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// Cloning is cheap (the state is behind an `Arc`), so every layer of
/// the stack can hold a handle to the same timeline.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<Mutex<Instant>>,
}

impl VirtualClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn now(&self) -> Instant {
        *self.now.lock()
    }

    /// Advance the clock by `d` and return the new time.
    pub fn advance(&self, d: Duration) -> Instant {
        let mut now = self.now.lock();
        *now = *now + d;
        *now
    }

    /// Advance the clock to `t` if `t` is in the future (monotonic).
    pub fn advance_to(&self, t: Instant) -> Instant {
        let mut now = self.now.lock();
        if t > *now {
            *now = t;
        }
        *now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_round_trip() {
        assert_eq!(Duration::from_millis(3).as_micros(), 3_000);
        assert_eq!(Duration::from_secs(2).as_millis(), 2_000);
        assert_eq!(Duration::from_micros(999).as_millis(), 0);
    }

    #[test]
    fn duration_add_saturates() {
        let d = Duration::from_micros(u64::MAX) + Duration::from_micros(10);
        assert_eq!(d.as_micros(), u64::MAX);
    }

    #[test]
    fn duration_mul_f64_scales_and_saturates() {
        assert_eq!(Duration::from_millis(10).mul_f64(2.5).as_micros(), 25_000);
        assert_eq!(
            Duration::from_micros(u64::MAX).mul_f64(4.0).as_micros(),
            u64::MAX
        );
        assert_eq!(Duration::from_millis(7).mul_f64(0.0), Duration::ZERO);
    }

    #[test]
    fn instant_duration_since_is_saturating() {
        let a = Instant::from_micros(100);
        let b = Instant::from_micros(250);
        assert_eq!(b.duration_since(a).as_micros(), 150);
        assert_eq!(a.duration_since(b), Duration::ZERO);
    }

    #[test]
    fn clock_advances_monotonically() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Instant::EPOCH);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now().as_micros(), 5_000);
        // advance_to backwards is a no-op
        clock.advance_to(Instant::from_micros(1_000));
        assert_eq!(clock.now().as_micros(), 5_000);
        clock.advance_to(Instant::from_micros(9_000));
        assert_eq!(clock.now().as_micros(), 9_000);
    }

    #[test]
    fn clock_clones_share_timeline() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(Duration::from_secs(1));
        assert_eq!(b.now().as_micros(), 1_000_000);
    }

    #[test]
    fn display_formats_pick_sensible_units() {
        assert_eq!(Duration::from_micros(12).to_string(), "12us");
        assert_eq!(Duration::from_micros(2_500).to_string(), "2.5ms");
        assert_eq!(Duration::from_millis(1_500).to_string(), "1.500s");
    }
}
