//! Token-bucket rate limiting.
//!
//! Search engines throttle automated clients; the paper's Auto-GPT loop
//! hits this constantly in practice. Each virtual host owns a
//! [`TokenBucket`] keyed to the shared virtual clock, and the client's
//! retry policy honours the `retry_after` hint the bucket computes.

use crate::clock::{Duration, Instant};
use serde::{Deserialize, Serialize};

/// Classic token bucket: `capacity` burst size, `refill_per_sec` steady
/// rate. Time is supplied by the caller (virtual clock) rather than read
/// internally, which keeps the bucket trivially testable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    last_refill: Instant,
}

/// Outcome of a [`TokenBucket::try_acquire`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquire {
    /// A token was consumed; proceed.
    Granted,
    /// Bucket empty; earliest time a token becomes available.
    Denied { retry_after: Duration },
}

impl TokenBucket {
    /// Create a full bucket.
    ///
    /// `capacity` must be at least 1 and `refill_per_sec` positive;
    /// violations are programming errors in host configuration.
    pub fn new(capacity: u32, refill_per_sec: f64) -> Self {
        assert!(capacity >= 1, "token bucket capacity must be >= 1");
        assert!(refill_per_sec > 0.0, "token bucket refill rate must be > 0");
        TokenBucket {
            capacity: capacity as f64,
            refill_per_sec,
            tokens: capacity as f64,
            last_refill: Instant::EPOCH,
        }
    }

    /// An effectively unlimited bucket (for hosts without throttling).
    pub fn unlimited() -> Self {
        TokenBucket::new(u32::MAX, 1e9)
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now.duration_since(self.last_refill);
        self.tokens =
            (self.tokens + elapsed.as_secs_f64() * self.refill_per_sec).min(self.capacity);
        self.last_refill = now;
    }

    /// Attempt to take one token at virtual time `now`.
    pub fn try_acquire(&mut self, now: Instant) -> Acquire {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Acquire::Granted
        } else {
            let deficit = 1.0 - self.tokens;
            let wait_us = (deficit / self.refill_per_sec * 1e6).ceil() as u64;
            Acquire::Denied {
                retry_after: Duration::from_micros(wait_us),
            }
        }
    }

    /// Tokens currently available (after refill at `now`).
    pub fn available(&mut self, now: Instant) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_deny() {
        let mut b = TokenBucket::new(3, 1.0);
        let t0 = Instant::EPOCH;
        for _ in 0..3 {
            assert_eq!(b.try_acquire(t0), Acquire::Granted);
        }
        match b.try_acquire(t0) {
            Acquire::Denied { retry_after } => {
                assert_eq!(retry_after, Duration::from_secs(1));
            }
            Acquire::Granted => panic!("bucket should be empty"),
        }
    }

    #[test]
    fn refills_over_time() {
        let mut b = TokenBucket::new(2, 2.0); // 2 tokens/sec
        let t0 = Instant::EPOCH;
        assert_eq!(b.try_acquire(t0), Acquire::Granted);
        assert_eq!(b.try_acquire(t0), Acquire::Granted);
        assert!(matches!(b.try_acquire(t0), Acquire::Denied { .. }));
        // After 500ms one token has refilled.
        let t1 = t0 + Duration::from_millis(500);
        assert_eq!(b.try_acquire(t1), Acquire::Granted);
        assert!(matches!(b.try_acquire(t1), Acquire::Denied { .. }));
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut b = TokenBucket::new(5, 100.0);
        let later = Instant::EPOCH + Duration::from_secs(3600);
        assert!((b.available(later) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn retry_after_is_actionable() {
        // If we wait exactly retry_after, the next acquire must succeed.
        let mut b = TokenBucket::new(1, 0.5);
        let t0 = Instant::EPOCH;
        assert_eq!(b.try_acquire(t0), Acquire::Granted);
        let retry_after = match b.try_acquire(t0) {
            Acquire::Denied { retry_after } => retry_after,
            Acquire::Granted => panic!("should deny"),
        };
        assert_eq!(b.try_acquire(t0 + retry_after), Acquire::Granted);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_a_config_bug() {
        TokenBucket::new(0, 1.0);
    }
}
