//! A small, strict URL type for the simulated web.
//!
//! Simulated URLs use the `sim://` scheme: `sim://host/path?key=value`.
//! The type is deliberately narrower than a general-purpose URL crate —
//! no userinfo, ports, or fragments — because the simulated web never
//! produces them, and a smaller grammar means parse errors surface bugs
//! in corpus generation instead of being silently absorbed.

use serde::{Deserialize, Serialize};
use std::fmt;
use thiserror::Error;

/// URL parse failures.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum UrlError {
    #[error("missing scheme separator '://' in {0:?}")]
    MissingScheme(String),
    #[error("unsupported scheme {0:?} (expected \"sim\")")]
    UnsupportedScheme(String),
    #[error("empty host in {0:?}")]
    EmptyHost(String),
    #[error("invalid character {ch:?} in host {host:?}")]
    InvalidHostChar { host: String, ch: char },
    #[error("malformed query pair {0:?} (expected key=value)")]
    MalformedQuery(String),
}

/// A parsed `sim://` URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    host: String,
    path: String,
    query: Vec<(String, String)>,
}

impl Url {
    /// Parse a `sim://host/path?k=v&k2=v2` string.
    pub fn parse(s: &str) -> Result<Url, UrlError> {
        let rest = s
            .strip_prefix("sim://")
            .ok_or_else(|| match s.find("://") {
                Some(i) => UrlError::UnsupportedScheme(s[..i].to_string()),
                None => UrlError::MissingScheme(s.to_string()),
            })?;

        let (host_path, query_str) = match rest.split_once('?') {
            Some((hp, q)) => (hp, Some(q)),
            None => (rest, None),
        };

        let (host, path) = match host_path.split_once('/') {
            Some((h, p)) => (h, format!("/{p}")),
            None => (host_path, "/".to_string()),
        };

        if host.is_empty() {
            return Err(UrlError::EmptyHost(s.to_string()));
        }
        if let Some(ch) = host
            .chars()
            .find(|c| !(c.is_ascii_alphanumeric() || *c == '.' || *c == '-'))
        {
            return Err(UrlError::InvalidHostChar {
                host: host.to_string(),
                ch,
            });
        }

        let mut query = Vec::new();
        if let Some(q) = query_str {
            for pair in q.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| UrlError::MalformedQuery(pair.to_string()))?;
                query.push((decode(k), decode(v)));
            }
        }

        Ok(Url {
            host: host.to_string(),
            path,
            query,
        })
    }

    /// Build a URL from parts, percent-encoding query values.
    pub fn build(host: &str, path: &str, query: &[(&str, &str)]) -> Url {
        let path = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/{path}")
        };
        Url {
            host: host.to_string(),
            path,
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    pub fn host(&self) -> &str {
        &self.host
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    /// The path split into non-empty segments.
    pub fn path_segments(&self) -> impl Iterator<Item = &str> {
        self.path.split('/').filter(|s| !s.is_empty())
    }

    /// First query value for `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn query_pairs(&self) -> &[(String, String)] {
        &self.query
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sim://{}{}", self.host, self.path)?;
        for (i, (k, v)) in self.query.iter().enumerate() {
            write!(
                f,
                "{}{}={}",
                if i == 0 { "?" } else { "&" },
                encode(k),
                encode(v)
            )?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Url {
    type Err = UrlError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

/// Percent-encode spaces and reserved characters in query strings.
fn encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            ' ' => out.push('+'),
            '&' => out.push_str("%26"),
            '=' => out.push_str("%3D"),
            '%' => out.push_str("%25"),
            '+' => out.push_str("%2B"),
            '?' => out.push_str("%3F"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`encode`]; tolerant of stray `%` (passed through).
fn decode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(ch) = chars.next() {
        match ch {
            '+' => out.push(' '),
            '%' => {
                let hex: String = chars.clone().take(2).collect();
                match (hex.len() == 2)
                    .then(|| u8::from_str_radix(&hex, 16).ok())
                    .flatten()
                {
                    Some(b) => {
                        chars.next();
                        chars.next();
                        out.push(b as char);
                    }
                    None => out.push('%'),
                }
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_url() {
        let u = Url::parse("sim://search.test/q?query=solar+storm&page=2").unwrap();
        assert_eq!(u.host(), "search.test");
        assert_eq!(u.path(), "/q");
        assert_eq!(u.query_param("query"), Some("solar storm"));
        assert_eq!(u.query_param("page"), Some("2"));
        assert_eq!(u.query_param("missing"), None);
    }

    #[test]
    fn parses_bare_host() {
        let u = Url::parse("sim://news.test").unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.path_segments().count(), 0);
    }

    #[test]
    fn rejects_bad_urls() {
        assert!(
            matches!(Url::parse("http://x.test/"), Err(UrlError::UnsupportedScheme(s)) if s == "http")
        );
        assert!(matches!(
            Url::parse("no-scheme"),
            Err(UrlError::MissingScheme(_))
        ));
        assert!(matches!(
            Url::parse("sim:///path"),
            Err(UrlError::EmptyHost(_))
        ));
        assert!(matches!(
            Url::parse("sim://bad_host/x"),
            Err(UrlError::InvalidHostChar { ch: '_', .. })
        ));
        assert!(matches!(
            Url::parse("sim://h.test/p?novalue"),
            Err(UrlError::MalformedQuery(_))
        ));
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "sim://a.test/",
            "sim://a.test/x/y/z",
            "sim://a.test/q?k=v+with+spaces&n=2",
        ] {
            let u = Url::parse(s).unwrap();
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u, "round-trip of {s}");
        }
    }

    #[test]
    fn build_normalizes_path() {
        let u = Url::build("h.test", "docs/1", &[("q", "a b")]);
        assert_eq!(u.path(), "/docs/1");
        assert_eq!(u.to_string(), "sim://h.test/docs/1?q=a+b");
    }

    #[test]
    fn query_encoding_round_trips_reserved_chars() {
        let u = Url::build("h.test", "/q", &[("k", "a=b&c+d%e?f")]);
        let parsed = Url::parse(&u.to_string()).unwrap();
        assert_eq!(parsed.query_param("k"), Some("a=b&c+d%e?f"));
    }

    #[test]
    fn path_segments_skips_empties() {
        let u = Url::parse("sim://h.test//a//b/").unwrap();
        let segs: Vec<_> = u.path_segments().collect();
        assert_eq!(segs, vec!["a", "b"]);
    }
}
