//! Client-side response cache (LRU + TTL).
//!
//! A research agent re-visits hubs and reference pages constantly; a
//! real client would not pay the network round trip twice. The cache
//! stores successful text responses keyed by URL, bounded by entry
//! count with least-recently-used eviction, and expires entries after a
//! TTL measured on the virtual clock.

use crate::clock::{Duration, Instant};
use crate::server::Response;
use std::collections::HashMap;

/// Cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum cached responses; 0 disables the cache.
    pub capacity: usize,
    /// Entries older than this are refetched.
    pub ttl: Duration,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 256,
            ttl: Duration::from_secs(300),
        }
    }
}

struct CacheEntry {
    response: Response,
    stored_at: Instant,
    last_used: u64,
}

/// The cache. Not internally synchronised: the [`crate::client::Client`]
/// wraps it in a lock.
pub struct ResponseCache {
    config: CacheConfig,
    entries: HashMap<String, CacheEntry>,
    /// Logical use-counter driving LRU order.
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ResponseCache {
    pub fn new(config: CacheConfig) -> Self {
        ResponseCache {
            config,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Look up `url` at virtual time `now`.
    pub fn get(&mut self, url: &str, now: Instant) -> Option<Response> {
        if self.config.capacity == 0 {
            return None;
        }
        self.tick += 1;
        let ttl = self.config.ttl;
        let tick = self.tick;
        match self.entries.get_mut(url) {
            Some(entry) if now.duration_since(entry.stored_at) <= ttl => {
                entry.last_used = tick;
                self.hits += 1;
                Some(entry.response.clone())
            }
            Some(_) => {
                // Expired: drop it and report a miss.
                self.entries.remove(url);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a successful response fetched at `now`.
    pub fn put(&mut self, url: &str, response: Response, now: Instant) {
        if self.config.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.config.capacity && !self.entries.contains_key(url) {
            // Evict the least-recently-used entry.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            url.to_string(),
            CacheEntry {
                response,
                stored_at: now,
                last_used: self.tick,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(body: &str) -> Response {
        Response::ok(body.to_string())
    }

    fn t(secs: u64) -> Instant {
        Instant::EPOCH + Duration::from_secs(secs)
    }

    fn cache(capacity: usize, ttl_secs: u64) -> ResponseCache {
        ResponseCache::new(CacheConfig {
            capacity,
            ttl: Duration::from_secs(ttl_secs),
        })
    }

    #[test]
    fn hit_after_put() {
        let mut c = cache(4, 60);
        assert!(c.get("sim://a.test/x", t(0)).is_none());
        c.put("sim://a.test/x", resp("body"), t(0));
        let hit = c.get("sim://a.test/x", t(10)).expect("hit");
        assert_eq!(hit.text(), Some("body"));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c = cache(4, 60);
        c.put("sim://a.test/x", resp("body"), t(0));
        assert!(c.get("sim://a.test/x", t(61)).is_none(), "expired");
        assert!(c.is_empty(), "expired entry is dropped");
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let mut c = cache(2, 600);
        c.put("sim://a.test/1", resp("1"), t(0));
        c.put("sim://a.test/2", resp("2"), t(1));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get("sim://a.test/1", t(2)).is_some());
        c.put("sim://a.test/3", resp("3"), t(3));
        assert_eq!(c.len(), 2);
        assert!(c.get("sim://a.test/1", t(4)).is_some());
        assert!(
            c.get("sim://a.test/2", t(4)).is_none(),
            "LRU victim evicted"
        );
        assert!(c.get("sim://a.test/3", t(4)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = cache(0, 60);
        c.put("sim://a.test/x", resp("body"), t(0));
        assert!(c.get("sim://a.test/x", t(0)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn updating_an_entry_does_not_evict_others() {
        let mut c = cache(2, 600);
        c.put("sim://a.test/1", resp("1"), t(0));
        c.put("sim://a.test/2", resp("2"), t(1));
        c.put("sim://a.test/1", resp("1-new"), t(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("sim://a.test/1", t(3)).unwrap().text(), Some("1-new"));
        assert!(c.get("sim://a.test/2", t(3)).is_some());
    }
}
