//! The user-facing client: timeouts and retries over [`Network::transmit`].
//!
//! This is the only entry point the agent crates use to reach the
//! simulated web. It enforces a per-request timeout against the virtual
//! clock and drives the [`RetryPolicy`], sleeping (in virtual time)
//! between attempts.

use crate::breaker::{BreakerConfig, BreakerMetrics, BreakerState, CircuitBreaker, FailureClass};
use crate::cache::{CacheConfig, ResponseCache};
use crate::clock::Duration;
use crate::error::{NetError, NetResult};
use crate::retry::RetryPolicy;
use crate::server::{Network, Request, Response};
use crate::url::Url;
use ira_obs::{stage, ObsHandle, SharedCollector, TraceEvent};
use parking_lot::Mutex;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Client behaviour knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Per-attempt timeout: attempts whose simulated round trip exceeds
    /// this are reported as [`NetError::Timeout`].
    pub timeout: Duration,
    pub retry: RetryPolicy,
    /// Client-side response cache (LRU + TTL). Hits cost no virtual
    /// network time.
    pub cache: CacheConfig,
    /// Maximum redirect hops followed per request.
    pub max_redirects: u32,
    /// Per-host circuit breaker; `None` (the default) disables it and
    /// preserves the classic retry-only behaviour.
    pub breaker: Option<BreakerConfig>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            timeout: Duration::from_secs(10),
            retry: RetryPolicy::standard(),
            cache: CacheConfig::default(),
            max_redirects: 4,
            breaker: None,
        }
    }
}

impl ClientConfig {
    /// The resilient profile: default behaviour plus a per-host
    /// circuit breaker — what the agent uses under chaos testing.
    pub fn resilient() -> Self {
        ClientConfig {
            breaker: Some(BreakerConfig::default()),
            ..ClientConfig::default()
        }
    }
}

static NEXT_CLIENT_ID: AtomicU64 = AtomicU64::new(1);

/// A handle for issuing requests to a [`Network`].
#[derive(Clone)]
pub struct Client {
    net: Arc<Network>,
    config: ClientConfig,
    cache: Arc<Mutex<ResponseCache>>,
    breakers: Arc<Mutex<HashMap<String, CircuitBreaker>>>,
    retry_rng: Arc<Mutex<ChaCha8Rng>>,
    id: u64,
    obs: ObsHandle,
}

impl Client {
    pub fn new(net: Arc<Network>) -> Self {
        Client::with_config(net, ClientConfig::default())
    }

    pub fn with_config(net: Arc<Network>, config: ClientConfig) -> Self {
        Client {
            net,
            cache: Arc::new(Mutex::new(ResponseCache::new(config.cache))),
            breakers: Arc::new(Mutex::new(HashMap::new())),
            retry_rng: Arc::new(Mutex::new(config.retry.backoff.jitter_rng())),
            config,
            id: NEXT_CLIENT_ID.fetch_add(1, Ordering::Relaxed),
            obs: ObsHandle::disabled(),
        }
    }

    /// Attach a trace collector; subsequent requests emit cache,
    /// retry, breaker, and fetch-latency events tagged with `session`.
    /// Set this *before* cloning the client into agent layers so every
    /// clone shares the sink. Creates a fresh causal context; to nest
    /// client spans under agent scopes, use
    /// [`Client::set_observer_handle`] with the session's shared
    /// handle instead.
    pub fn set_observer(&mut self, sink: SharedCollector, session: u32) {
        self.obs = ObsHandle::new(sink, session);
    }

    /// Attach a shared [`ObsHandle`] so fetch/retry/breaker events are
    /// parented under whatever scope the session currently has open.
    pub fn set_observer_handle(&mut self, handle: ObsHandle) {
        self.obs = handle;
    }

    /// The collector currently attached (the shared null collector by
    /// default) and the session id requests are tagged with.
    pub fn observer(&self) -> (SharedCollector, u32) {
        (self.obs.sink(), self.obs.session())
    }

    /// The causal observation handle (disabled by default).
    pub fn observer_handle(&self) -> &ObsHandle {
        &self.obs
    }

    /// (cache hits, cache misses) so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().stats()
    }

    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// Whether a request to `host` would currently be rejected by its
    /// circuit breaker without touching the network. Non-mutating: does
    /// not count a fast failure or admit a probe, so callers can use it
    /// to reroute *before* spending any budget.
    pub fn breaker_would_fail_fast(&self, host: &str) -> bool {
        let breakers = self.breakers.lock();
        match breakers.get(host) {
            Some(b) => {
                b.state() == BreakerState::Open
                    && b.retry_in(self.net.clock().now()) > Duration::ZERO
            }
            None => false,
        }
    }

    /// Per-host breaker metrics, sorted by host name.
    pub fn breaker_metrics(&self) -> Vec<(String, BreakerMetrics)> {
        let breakers = self.breakers.lock();
        let mut out: Vec<(String, BreakerMetrics)> = breakers
            .iter()
            .map(|(h, b)| (h.clone(), b.metrics()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Breaker metrics summed across all hosts.
    pub fn breaker_totals(&self) -> BreakerMetrics {
        let mut total = BreakerMetrics::default();
        for (_, m) in self.breaker_metrics() {
            total.absorb(&m);
        }
        total
    }

    /// Fetch `url` (string form), with retries per the client config.
    pub fn get(&self, url: &str) -> NetResult<Response> {
        self.get_url(&Url::parse(url)?)
    }

    /// Fetch a parsed [`Url`], following redirects (up to the
    /// configured hop limit) and retrying per the client config.
    /// Successful responses are cached; cache hits cost no virtual time.
    pub fn get_url(&self, url: &Url) -> NetResult<Response> {
        let mut current = url.clone();
        for _ in 0..=self.config.max_redirects {
            let resp = self.fetch_one(&current)?;
            match resp.redirect_location() {
                Some(location) => {
                    current = Url::parse(location)?;
                }
                None => return Ok(resp),
            }
        }
        Err(NetError::HttpStatus {
            host: current.host().to_string(),
            code: 310,
        })
    }

    /// One fetch without redirect handling.
    fn fetch_one(&self, url: &Url) -> NetResult<Response> {
        let key = url.to_string();
        if let Some(cached) = self.cache.lock().get(&key, self.net.clock().now()) {
            self.obs.emit(|| {
                TraceEvent::point(
                    self.obs.session(),
                    self.net.clock().now().as_micros(),
                    stage::NET,
                    "cache_hit",
                    key.as_str(),
                )
            });
            return Ok(cached);
        }
        self.obs.emit(|| {
            TraceEvent::point(
                self.obs.session(),
                self.net.clock().now().as_micros(),
                stage::NET,
                "cache_miss",
                key.as_str(),
            )
        });
        let req = Request {
            url: url.clone(),
            client_id: self.id,
        };
        let host = url.host().to_string();
        let fetch_start = self.net.clock().now();
        // The whole request — retries, breaker transitions, backoff
        // waits — is one causal scope; the events emitted inside the
        // loop below become its children. Closed as `ok` or `err` at
        // every exit.
        let fetch_scope = self
            .obs
            .scope(fetch_start.as_micros(), stage::FETCH, "request");
        let mut attempt: u32 = 0;
        loop {
            if let Some(breaker_cfg) = self.config.breaker {
                let now = self.net.clock().now();
                let mut breakers = self.breakers.lock();
                let breaker = breakers
                    .entry(host.clone())
                    .or_insert_with(|| CircuitBreaker::new(breaker_cfg));
                let before = breaker.state();
                if !breaker.allow(now) {
                    let retry_in = breaker.retry_in(now);
                    drop(breakers);
                    self.emit_breaker(&host, "fast_fail", now.as_micros());
                    fetch_scope
                        .finish_as(self.net.clock().now().as_micros(), "err", || key.clone());
                    return Err(NetError::CircuitOpen { host, retry_in });
                }
                let after = breaker.state();
                drop(breakers);
                if before == BreakerState::Open && after == BreakerState::HalfOpen {
                    self.emit_breaker(&host, "half_open", now.as_micros());
                }
            }

            let start = self.net.clock().now();
            let result = self.net.transmit(&req).and_then(|resp| {
                let elapsed = self.net.clock().now().duration_since(start);
                if elapsed > self.config.timeout {
                    Err(NetError::Timeout {
                        host: url.host().to_string(),
                        elapsed,
                    })
                } else {
                    Ok(resp)
                }
            });

            let err = match result {
                Ok(resp) => {
                    if self.config.breaker.is_some() {
                        let mut breakers = self.breakers.lock();
                        if let Some(b) = breakers.get_mut(&host) {
                            let before = b.state();
                            b.record_success();
                            let reclosed = before == BreakerState::HalfOpen
                                && b.state() == BreakerState::Closed;
                            drop(breakers);
                            if reclosed {
                                self.emit_breaker(
                                    &host,
                                    "reclosed",
                                    self.net.clock().now().as_micros(),
                                );
                            }
                        }
                    }
                    self.cache
                        .lock()
                        .put(&key, resp.clone(), self.net.clock().now());
                    fetch_scope.finish_as(self.net.clock().now().as_micros(), "ok", || key.clone());
                    return Ok(resp);
                }
                Err(err) => err,
            };

            if self.config.breaker.is_some() {
                let now = self.net.clock().now();
                let mut breakers = self.breakers.lock();
                if let Some(b) = breakers.get_mut(&host) {
                    let before = b.state();
                    b.record_failure(FailureClass::of(&err), now);
                    let opened = before != BreakerState::Open && b.state() == BreakerState::Open;
                    drop(breakers);
                    if opened {
                        self.emit_breaker(&host, "open", now.as_micros());
                    }
                }
            }

            match self.next_delay(attempt, &err) {
                Some(delay) => {
                    let wait_start = self.net.clock().now();
                    self.net.clock().advance(delay);
                    self.obs.emit(|| {
                        TraceEvent::span(
                            self.obs.session(),
                            wait_start.as_micros(),
                            stage::NET,
                            "retry_wait",
                            host.as_str(),
                            delay.as_micros(),
                        )
                    });
                    attempt += 1;
                }
                None => {
                    fetch_scope
                        .finish_as(self.net.clock().now().as_micros(), "err", || key.clone());
                    return Err(if attempt > 0 {
                        NetError::RetriesExhausted {
                            attempts: attempt + 1,
                            last: Box::new(err),
                        }
                    } else {
                        err
                    });
                }
            }
        }
    }

    /// Emit a breaker state-transition point event.
    fn emit_breaker(&self, host: &str, what: &'static str, at_us: u64) {
        self.obs
            .emit(|| TraceEvent::point(self.obs.session(), at_us, stage::BREAKER, what, host));
    }

    /// Decide the wait before the next retry, applying seeded jitter
    /// when the backoff enables it (zero rng draws otherwise).
    fn next_delay(&self, attempt: u32, err: &NetError) -> Option<Duration> {
        if self.config.retry.backoff.jitter {
            self.config
                .retry
                .next_delay_with(attempt, err, &mut self.retry_rng.lock())
        } else {
            self.config.retry.next_delay(attempt, err)
        }
    }

    /// Fetch and return the body as text, treating non-text bodies as an
    /// error. Most agent code wants this form.
    pub fn get_text(&self, url: &str) -> NetResult<String> {
        let parsed = Url::parse(url)?;
        let resp = self.get_url(&parsed)?;
        resp.text()
            .map(str::to_owned)
            .ok_or_else(|| NetError::BodyNotText {
                host: parsed.host().to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::ratelimit::TokenBucket;
    use crate::retry::{Backoff, RetryPolicy};
    use crate::server::{HostConfig, NetworkConfig, Status};
    use parking_lot::Mutex;

    fn ok_host() -> Arc<dyn crate::server::Host> {
        Arc::new(|_req: &Request| Response::ok("body"))
    }

    fn cfg(loss: f64) -> HostConfig {
        HostConfig {
            latency: LatencyModel {
                loss,
                ..LatencyModel::fast()
            },
            rate_limit: TokenBucket::unlimited(),
        }
    }

    #[test]
    fn get_returns_body() {
        let mut net = Network::new(NetworkConfig::default(), 3);
        net.register_with("a.test", ok_host(), cfg(0.0));
        let client = Client::new(Arc::new(net));
        assert_eq!(client.get_text("sim://a.test/page").unwrap(), "body");
    }

    #[test]
    fn retries_recover_from_transient_loss() {
        // loss=0.5: with 5 retries the request should essentially always
        // succeed under a fixed seed.
        let mut net = Network::new(NetworkConfig::default(), 17);
        net.register_with("flaky.test", ok_host(), cfg(0.5));
        let client = Client::with_config(
            Arc::new(net),
            ClientConfig {
                timeout: Duration::from_secs(30),
                retry: RetryPolicy {
                    max_retries: 5,
                    backoff: Backoff::default(),
                },
                ..ClientConfig::default()
            },
        );
        for _ in 0..20 {
            assert!(client.get("sim://flaky.test/").is_ok());
        }
    }

    #[test]
    fn exhausted_retries_surface_final_error() {
        let mut net = Network::new(NetworkConfig::default(), 17);
        net.register_with("dead.test", ok_host(), cfg(1.0));
        let client = Client::with_config(
            Arc::new(net),
            ClientConfig {
                timeout: Duration::from_secs(30),
                retry: RetryPolicy {
                    max_retries: 2,
                    backoff: Backoff::default(),
                },
                ..ClientConfig::default()
            },
        );
        match client.get("sim://dead.test/").unwrap_err() {
            NetError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, NetError::ConnectionReset { .. }));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn timeout_fires_on_slow_host() {
        let mut net = Network::new(NetworkConfig::default(), 9);
        net.register_with(
            "slow.test",
            ok_host(),
            HostConfig {
                latency: LatencyModel {
                    base: Duration::from_secs(5),
                    jitter_mean: Duration::from_millis(1),
                    tail: 0.0,
                    loss: 0.0,
                },
                rate_limit: TokenBucket::unlimited(),
            },
        );
        let client = Client::with_config(
            Arc::new(net),
            ClientConfig {
                timeout: Duration::from_secs(1),
                retry: RetryPolicy::none(),
                ..ClientConfig::default()
            },
        );
        assert!(matches!(
            client.get("sim://slow.test/").unwrap_err(),
            NetError::Timeout { .. }
        ));
    }

    #[test]
    fn rate_limit_is_ridden_out_by_retry() {
        // Bucket of 1 token refilling at 10/sec: second request is
        // denied but the retry honours retry_after and succeeds.
        let mut net = Network::new(NetworkConfig::default(), 4);
        net.register_with(
            "lim.test",
            ok_host(),
            HostConfig {
                latency: LatencyModel {
                    loss: 0.0,
                    ..LatencyModel::fast()
                },
                rate_limit: TokenBucket::new(1, 10.0),
            },
        );
        let client = Client::new(Arc::new(net));
        assert!(client.get("sim://lim.test/").is_ok());
        assert!(
            client.get("sim://lim.test/").is_ok(),
            "retry should absorb the 429"
        );
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let counter = Arc::new(Mutex::new(0u32));
        let c2 = Arc::clone(&counter);
        let handler = move |_req: &Request| {
            *c2.lock() += 1;
            Response {
                status: Status::NotFound,
                body: bytes::Bytes::from_static(b"nope"),
                content_type: "text/plain",
            }
        };
        let mut net = Network::new(NetworkConfig::default(), 4);
        net.register_with("nf.test", Arc::new(handler), cfg(0.0));
        let client = Client::new(Arc::new(net));
        assert!(client.get("sim://nf.test/").is_err());
        assert_eq!(*counter.lock(), 1, "404 must not be retried");
    }

    #[test]
    fn cache_hits_cost_no_virtual_time() {
        let mut net = Network::new(NetworkConfig::default(), 3);
        net.register_with("c.test", ok_host(), cfg(0.0));
        let client = Client::new(Arc::new(net));
        client.get("sim://c.test/page").unwrap();
        let after_first = client.network().clock().now();
        client.get("sim://c.test/page").unwrap();
        assert_eq!(
            client.network().clock().now(),
            after_first,
            "second fetch must be served from cache"
        );
        assert_eq!(client.cache_stats().0, 1);
    }

    #[test]
    fn distinct_urls_do_not_share_cache_entries() {
        let mut net = Network::new(NetworkConfig::default(), 3);
        net.register_with("c.test", ok_host(), cfg(0.0));
        let client = Client::new(Arc::new(net));
        client.get("sim://c.test/a").unwrap();
        let before = client.network().clock().now();
        client.get("sim://c.test/b").unwrap();
        assert!(
            client.network().clock().now() > before,
            "different URL must hit the network"
        );
    }

    #[test]
    fn redirects_are_followed_to_the_target() {
        let mut net = Network::new(NetworkConfig::default(), 3);
        net.register_with(
            "old.test",
            Arc::new(|_req: &Request| Response::redirect("sim://new.test/page")),
            cfg(0.0),
        );
        net.register_with(
            "new.test",
            Arc::new(|_req: &Request| Response::ok("final content")),
            cfg(0.0),
        );
        let client = Client::new(Arc::new(net));
        assert_eq!(
            client.get_text("sim://old.test/moved").unwrap(),
            "final content"
        );
    }

    #[test]
    fn redirect_loops_are_bounded() {
        let mut net = Network::new(NetworkConfig::default(), 3);
        net.register_with(
            "loop.test",
            Arc::new(|_req: &Request| Response::redirect("sim://loop.test/again")),
            cfg(0.0),
        );
        let client = Client::new(Arc::new(net));
        match client.get("sim://loop.test/start").unwrap_err() {
            NetError::HttpStatus { code, .. } => assert_eq!(code, 310),
            other => panic!("expected redirect-loop error, got {other:?}"),
        }
    }

    #[test]
    fn clients_get_distinct_ids() {
        let net = Arc::new(Network::new(NetworkConfig::default(), 1));
        let a = Client::new(Arc::clone(&net));
        let b = Client::new(net);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn retries_exhausted_attempts_is_always_total_attempts() {
        // Regression guard: `attempts` counts every attempt made, i.e.
        // retries + the initial try, for any retry budget.
        for max_retries in [1u32, 2, 4] {
            let mut net = Network::new(NetworkConfig::default(), 17);
            net.register_with("dead.test", ok_host(), cfg(1.0));
            let client = Client::with_config(
                Arc::new(net),
                ClientConfig {
                    timeout: Duration::from_secs(60),
                    retry: RetryPolicy {
                        max_retries,
                        backoff: Backoff::default(),
                    },
                    ..ClientConfig::default()
                },
            );
            match client.get("sim://dead.test/").unwrap_err() {
                NetError::RetriesExhausted { attempts, .. } => {
                    assert_eq!(attempts, max_retries + 1);
                }
                other => panic!("expected RetriesExhausted, got {other:?}"),
            }
        }
    }

    fn breaker_client(net: Network, threshold: u32, cooldown: Duration) -> Client {
        Client::with_config(
            Arc::new(net),
            ClientConfig {
                retry: RetryPolicy::none(),
                breaker: Some(crate::breaker::BreakerConfig {
                    failure_threshold: threshold,
                    cooldown,
                }),
                ..ClientConfig::default()
            },
        )
    }

    #[test]
    fn breaker_trips_and_fails_fast_without_network_traffic() {
        let mut net = Network::new(NetworkConfig::default(), 17);
        net.register_with("dead.test", ok_host(), cfg(1.0));
        let client = breaker_client(net, 2, Duration::from_secs(60));

        for _ in 0..2 {
            assert!(matches!(
                client.get("sim://dead.test/").unwrap_err(),
                NetError::ConnectionReset { .. }
            ));
        }
        let sent_before = client.network().stats().requests;
        assert!(client.breaker_would_fail_fast("dead.test"));
        match client.get("sim://dead.test/").unwrap_err() {
            NetError::CircuitOpen { host, retry_in } => {
                assert_eq!(host, "dead.test");
                assert!(retry_in > Duration::ZERO);
            }
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        assert_eq!(
            client.network().stats().requests,
            sent_before,
            "fast failure must not touch the network"
        );
        let totals = client.breaker_totals();
        assert_eq!(totals.opened, 1);
        assert_eq!(totals.fast_failures, 1);
        assert_eq!(totals.resets, 2);
    }

    #[test]
    fn breaker_recovers_through_half_open_once_the_fault_clears() {
        use crate::clock::Instant;
        use crate::faults::FaultPlan;

        let mut net = Network::new(NetworkConfig::default(), 17);
        net.register_with("site.test", ok_host(), cfg(0.0));
        let client = breaker_client(net, 1, Duration::from_secs(5));
        let outage_end = Instant::EPOCH + Duration::from_secs(10);
        client
            .network()
            .set_fault_plan(FaultPlan::new().with_blackout(
                "site.test",
                Instant::EPOCH,
                outage_end,
            ));

        // Blackout: first request fails and trips the one-strike breaker.
        assert!(client.get("sim://site.test/a").is_err());
        // Still cooling down: fail fast.
        assert!(matches!(
            client.get("sim://site.test/a").unwrap_err(),
            NetError::CircuitOpen { .. }
        ));
        // Past both the outage window and the cooldown, the half-open
        // probe goes through and recloses the breaker.
        client
            .network()
            .clock()
            .advance_to(outage_end + Duration::from_secs(1));
        assert!(!client.breaker_would_fail_fast("site.test"));
        assert!(client.get("sim://site.test/a").is_ok());
        let metrics = client.breaker_metrics();
        assert_eq!(metrics.len(), 1);
        let m = metrics[0].1;
        assert_eq!((m.opened, m.half_opened, m.reclosed), (1, 1, 1));
        assert!(m.fast_failures >= 1);
    }

    #[test]
    fn observer_traces_cache_fetch_and_breaker_events() {
        use ira_obs::{EventClass, JsonlCollector};

        let mut net = Network::new(NetworkConfig::default(), 17);
        net.register_with("dead.test", ok_host(), cfg(1.0));
        net.register_with("ok.test", ok_host(), cfg(0.0));
        let mut client = breaker_client(net, 2, Duration::from_secs(60));
        let sink = Arc::new(JsonlCollector::new());
        client.set_observer(sink.clone(), 7);

        client.get("sim://ok.test/page").unwrap();
        client.get("sim://ok.test/page").unwrap(); // cache hit
        for _ in 0..2 {
            let _ = client.get("sim://dead.test/"); // trips the breaker
        }
        let _ = client.get("sim://dead.test/"); // fast failure

        let events = sink.events();
        assert!(events.iter().all(|e| e.session == 7));
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"cache_hit"));
        assert!(names.contains(&"cache_miss"));
        assert!(names.contains(&"open"));
        assert!(names.contains(&"fast_fail"));
        let ok_span = events
            .iter()
            .find(|e| e.stage == stage::FETCH && e.name == "ok")
            .expect("fetch ok span");
        assert_eq!(ok_span.class, EventClass::Span);
        assert!(ok_span.value > 0, "fetch span must charge virtual time");
        // Disabled by default: a fresh client with the null collector
        // reports disabled and drops everything.
        let plain = Client::new(Arc::clone(client.network()));
        assert!(!plain.observer().0.enabled());
    }

    #[test]
    fn retry_and_breaker_events_nest_under_the_fetch_span() {
        use ira_obs::JsonlCollector;

        let mut net = Network::new(NetworkConfig::default(), 17);
        net.register_with("dead.test", ok_host(), cfg(1.0));
        let mut client = Client::with_config(
            Arc::new(net),
            ClientConfig {
                timeout: Duration::from_secs(60),
                retry: RetryPolicy {
                    max_retries: 3,
                    backoff: Backoff::default(),
                },
                breaker: Some(crate::breaker::BreakerConfig {
                    failure_threshold: 2,
                    cooldown: Duration::from_secs(60),
                }),
                ..ClientConfig::default()
            },
        );
        let sink = Arc::new(JsonlCollector::new());
        client.set_observer(sink.clone(), 0);

        let _ = client.get("sim://dead.test/"); // fails with retries

        let events = sink.events();
        let fetch = events
            .iter()
            .find(|e| e.stage == stage::FETCH && e.name == "err")
            .expect("fetch err span");
        assert_ne!(fetch.span_id, 0, "spans carry identity");
        let retry = events
            .iter()
            .find(|e| e.name == "retry_wait")
            .expect("retry wait span");
        assert_eq!(
            retry.parent_id, fetch.span_id,
            "backoff waits are children of the request scope"
        );
        let open = events.iter().find(|e| e.name == "open").expect("breaker");
        assert_eq!(open.parent_id, fetch.span_id);
        // The cache miss fired before the request scope opened.
        let miss = events.iter().find(|e| e.name == "cache_miss").unwrap();
        assert_eq!(miss.parent_id, 0);
    }

    #[test]
    fn jittered_retries_are_deterministic_per_seed() {
        let run = || {
            let mut net = Network::new(NetworkConfig::default(), 17);
            net.register_with("dead.test", ok_host(), cfg(1.0));
            let client = Client::with_config(
                Arc::new(net),
                ClientConfig {
                    timeout: Duration::from_secs(60),
                    retry: RetryPolicy {
                        max_retries: 3,
                        backoff: Backoff {
                            jitter: true,
                            jitter_seed: 5,
                            ..Backoff::default()
                        },
                    },
                    ..ClientConfig::default()
                },
            );
            let err = client.get("sim://dead.test/").unwrap_err();
            (client.network().clock().now(), err)
        };
        let (clock1, err1) = run();
        let (clock2, err2) = run();
        assert_eq!(
            clock1, clock2,
            "same seeds must spend identical virtual time"
        );
        assert_eq!(err1, err2);
        assert!(matches!(
            err1,
            NetError::RetriesExhausted { attempts: 4, .. }
        ));
    }
}
