//! Error taxonomy for the simulated network stack.
//!
//! The variants mirror the failure classes a real HTTP client surfaces,
//! because the agent's retry policy needs to distinguish them: DNS-style
//! resolution failures are permanent, timeouts and connection resets are
//! retryable, and rate-limit rejections are retryable *after a delay*.

use crate::clock::Duration;
use crate::url::UrlError;
use thiserror::Error;

/// Result alias used across the crate.
pub type NetResult<T> = Result<T, NetError>;

/// Any failure produced by the simulated network.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The URL could not be parsed.
    #[error("invalid url: {0}")]
    InvalidUrl(#[from] UrlError),

    /// No virtual host is registered for this hostname.
    #[error("host not found: {0}")]
    HostNotFound(String),

    /// The request exceeded the client's timeout budget.
    #[error("request to {host} timed out after {elapsed}")]
    Timeout { host: String, elapsed: Duration },

    /// The connection dropped mid-flight (simulated transient loss).
    #[error("connection to {host} reset")]
    ConnectionReset { host: String },

    /// The server rejected the request due to rate limiting.
    #[error("rate limited by {host}, retry after {retry_after}")]
    RateLimited { host: String, retry_after: Duration },

    /// All retry attempts were exhausted; carries the final error.
    #[error("retries exhausted after {attempts} attempts: {last}")]
    RetriesExhausted {
        attempts: u32,
        #[source]
        last: Box<NetError>,
    },

    /// The server answered with a non-success status.
    #[error("http error {code} from {host}")]
    HttpStatus { host: String, code: u16 },

    /// The response body was not valid UTF-8 text.
    #[error("response body from {host} is not valid utf-8")]
    BodyNotText { host: String },

    /// The client's circuit breaker is open for this host: the request
    /// failed fast without touching the network. `retry_in` is the
    /// virtual time until the next half-open probe is admitted.
    #[error("circuit open for {host}, probe in {retry_in}")]
    CircuitOpen { host: String, retry_in: Duration },
}

impl NetError {
    /// Whether a retry of the same request could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Timeout { .. }
            | NetError::ConnectionReset { .. }
            | NetError::RateLimited { .. } => true,
            NetError::HttpStatus { code, .. } => *code >= 500,
            // Circuit-open is deliberately non-retryable: the point of
            // failing fast is to let the caller reroute immediately.
            NetError::InvalidUrl(_)
            | NetError::HostNotFound(_)
            | NetError::RetriesExhausted { .. }
            | NetError::BodyNotText { .. }
            | NetError::CircuitOpen { .. } => false,
        }
    }

    /// Server-mandated minimum wait before retrying, if any.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            NetError::RateLimited { retry_after, .. } => Some(*retry_after),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        assert!(NetError::Timeout {
            host: "a".into(),
            elapsed: Duration::from_millis(100)
        }
        .is_retryable());
        assert!(NetError::ConnectionReset { host: "a".into() }.is_retryable());
        assert!(NetError::RateLimited {
            host: "a".into(),
            retry_after: Duration::from_millis(50)
        }
        .is_retryable());
        assert!(NetError::HttpStatus {
            host: "a".into(),
            code: 503
        }
        .is_retryable());
        assert!(!NetError::HttpStatus {
            host: "a".into(),
            code: 404
        }
        .is_retryable());
        assert!(!NetError::HostNotFound("a".into()).is_retryable());
        assert!(!NetError::CircuitOpen {
            host: "a".into(),
            retry_in: Duration::from_secs(30)
        }
        .is_retryable());
    }

    #[test]
    fn rate_limit_carries_retry_after() {
        let e = NetError::RateLimited {
            host: "a".into(),
            retry_after: Duration::from_millis(75),
        };
        assert_eq!(e.retry_after(), Some(Duration::from_millis(75)));
        assert_eq!(NetError::HostNotFound("a".into()).retry_after(), None);
    }

    #[test]
    fn errors_render_human_readable_messages() {
        let e = NetError::Timeout {
            host: "search.test".into(),
            elapsed: Duration::from_millis(1500),
        };
        assert_eq!(
            e.to_string(),
            "request to search.test timed out after 1.500s"
        );
    }
}
