//! Retry policies with exponential backoff.
//!
//! The agent loop must survive transient fetch failures without a human
//! in the loop, so the client retries retryable errors with capped
//! exponential backoff, honouring any server-provided `retry_after`.

use crate::clock::Duration;
use crate::error::NetError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Exponential backoff schedule.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Backoff {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Multiplier applied per subsequent retry.
    pub factor: f64,
    /// Upper bound on any single delay.
    pub max: Duration,
    /// Full-jitter mode: the actual delay is drawn uniformly from
    /// `[0, scheduled]`, de-synchronising concurrent retriers that hit
    /// the same rate-limited host. Off by default; the draw comes from
    /// a stream seeded with `jitter_seed`, so runs stay reproducible.
    #[serde(default)]
    pub jitter: bool,
    /// Seed for the jitter stream (only used when `jitter` is on).
    #[serde(default)]
    pub jitter_seed: u64,
}

impl Backoff {
    /// Delay before retry number `attempt` (0-based: the delay after the
    /// first failure is `delay(0)`). Ignores jitter — this is the
    /// deterministic schedule ceiling.
    pub fn delay(&self, attempt: u32) -> Duration {
        let d = self.initial.mul_f64(self.factor.powi(attempt as i32));
        d.min(self.max)
    }

    /// Delay before retry `attempt`, applying full jitter when enabled.
    ///
    /// With `jitter` off this returns exactly [`Backoff::delay`] and
    /// consumes nothing from `rng`, so existing deterministic streams
    /// are unchanged.
    pub fn delay_with(&self, attempt: u32, rng: &mut ChaCha8Rng) -> Duration {
        let scheduled = self.delay(attempt);
        if !self.jitter || scheduled == Duration::ZERO {
            return scheduled;
        }
        Duration::from_micros(rng.gen_range(0..=scheduled.as_micros()))
    }

    /// A fresh jitter stream for this schedule's seed.
    pub fn jitter_rng(&self) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.jitter_seed)
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            initial: Duration::from_millis(100),
            factor: 2.0,
            max: Duration::from_secs(10),
            jitter: false,
            jitter_seed: 0,
        }
    }
}

/// How many times to retry and how long to wait between attempts.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum number of *retries* (total attempts = retries + 1).
    pub max_retries: u32,
    pub backoff: Backoff,
}

impl RetryPolicy {
    /// Never retry.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Backoff::default(),
        }
    }

    /// A sensible default for page fetches: 3 retries, 100ms..10s backoff.
    pub fn standard() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: Backoff::default(),
        }
    }

    /// Decide what to do after a failure on attempt `attempt` (0-based).
    ///
    /// Returns the wait duration before the next attempt, or `None` if
    /// the request should fail now. Server-provided `retry_after` hints
    /// override the backoff schedule when longer.
    pub fn next_delay(&self, attempt: u32, err: &NetError) -> Option<Duration> {
        if attempt >= self.max_retries || !err.is_retryable() {
            return None;
        }
        let scheduled = self.backoff.delay(attempt);
        Some(match err.retry_after() {
            Some(hint) if hint > scheduled => hint,
            _ => scheduled,
        })
    }

    /// [`RetryPolicy::next_delay`] with jitter applied to the backoff
    /// component. A server-provided `retry_after` hint still floors
    /// the delay — jitter never undercuts an explicit server demand.
    pub fn next_delay_with(
        &self,
        attempt: u32,
        err: &NetError,
        rng: &mut ChaCha8Rng,
    ) -> Option<Duration> {
        if attempt >= self.max_retries || !err.is_retryable() {
            return None;
        }
        let scheduled = self.backoff.delay_with(attempt, rng);
        Some(match err.retry_after() {
            Some(hint) if hint > scheduled => hint,
            _ => scheduled,
        })
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeout() -> NetError {
        NetError::Timeout {
            host: "h".into(),
            elapsed: Duration::from_millis(1),
        }
    }

    #[test]
    fn backoff_grows_exponentially_until_cap() {
        let b = Backoff {
            initial: Duration::from_millis(100),
            factor: 2.0,
            max: Duration::from_millis(500),
            ..Backoff::default()
        };
        assert_eq!(b.delay(0), Duration::from_millis(100));
        assert_eq!(b.delay(1), Duration::from_millis(200));
        assert_eq!(b.delay(2), Duration::from_millis(400));
        assert_eq!(b.delay(3), Duration::from_millis(500)); // capped
        assert_eq!(b.delay(30), Duration::from_millis(500));
    }

    #[test]
    fn policy_stops_after_max_retries() {
        let p = RetryPolicy {
            max_retries: 2,
            backoff: Backoff::default(),
        };
        assert!(p.next_delay(0, &timeout()).is_some());
        assert!(p.next_delay(1, &timeout()).is_some());
        assert!(p.next_delay(2, &timeout()).is_none());
    }

    #[test]
    fn policy_never_retries_permanent_errors() {
        let p = RetryPolicy::standard();
        assert!(p
            .next_delay(0, &NetError::HostNotFound("h".into()))
            .is_none());
        assert!(p
            .next_delay(
                0,
                &NetError::HttpStatus {
                    host: "h".into(),
                    code: 404
                }
            )
            .is_none());
    }

    #[test]
    fn retry_after_hint_overrides_shorter_backoff() {
        let p = RetryPolicy::standard(); // first backoff delay = 100ms
        let err = NetError::RateLimited {
            host: "h".into(),
            retry_after: Duration::from_secs(2),
        };
        assert_eq!(p.next_delay(0, &err), Some(Duration::from_secs(2)));
        // ...but a hint shorter than the schedule does not shrink it.
        let err = NetError::RateLimited {
            host: "h".into(),
            retry_after: Duration::from_millis(1),
        };
        assert_eq!(p.next_delay(0, &err), Some(Duration::from_millis(100)));
    }

    #[test]
    fn none_policy_fails_immediately() {
        assert!(RetryPolicy::none().next_delay(0, &timeout()).is_none());
    }

    #[test]
    fn jitter_off_matches_the_plain_schedule_and_spends_no_randomness() {
        let b = Backoff::default();
        let mut rng = b.jitter_rng();
        for attempt in 0..5 {
            assert_eq!(b.delay_with(attempt, &mut rng), b.delay(attempt));
        }
        // The stream was never consumed: a fresh rng draws the same first value.
        use rand::Rng;
        let first: u64 = rng.gen();
        let fresh: u64 = b.jitter_rng().gen();
        assert_eq!(first, fresh);
    }

    #[test]
    fn full_jitter_stays_within_the_schedule_and_is_seeded() {
        let b = Backoff {
            jitter: true,
            jitter_seed: 99,
            ..Backoff::default()
        };
        let mut rng1 = b.jitter_rng();
        let mut rng2 = b.jitter_rng();
        for attempt in 0..20 {
            let d1 = b.delay_with(attempt, &mut rng1);
            let d2 = b.delay_with(attempt, &mut rng2);
            assert_eq!(d1, d2, "same seed, same jitter");
            assert!(
                d1 <= b.delay(attempt),
                "full jitter never exceeds the schedule"
            );
        }
        // Across many draws the jitter must actually vary.
        let mut rng = b.jitter_rng();
        let draws: Vec<Duration> = (0..10).map(|_| b.delay_with(3, &mut rng)).collect();
        assert!(
            draws.iter().any(|d| *d != draws[0]),
            "jitter should vary: {draws:?}"
        );
    }

    #[test]
    fn jittered_delay_still_honours_retry_after_hints() {
        let p = RetryPolicy {
            max_retries: 3,
            backoff: Backoff {
                jitter: true,
                jitter_seed: 7,
                ..Backoff::default()
            },
        };
        let err = NetError::RateLimited {
            host: "h".into(),
            retry_after: Duration::from_secs(5),
        };
        let mut rng = p.backoff.jitter_rng();
        for attempt in 0..3 {
            let d = p.next_delay_with(attempt, &err, &mut rng).unwrap();
            assert!(
                d >= Duration::from_secs(5),
                "hint floors the jittered delay"
            );
        }
    }
}
