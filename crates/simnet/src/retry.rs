//! Retry policies with exponential backoff.
//!
//! The agent loop must survive transient fetch failures without a human
//! in the loop, so the client retries retryable errors with capped
//! exponential backoff, honouring any server-provided `retry_after`.

use crate::clock::Duration;
use crate::error::NetError;
use serde::{Deserialize, Serialize};

/// Exponential backoff schedule.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Backoff {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Multiplier applied per subsequent retry.
    pub factor: f64,
    /// Upper bound on any single delay.
    pub max: Duration,
}

impl Backoff {
    /// Delay before retry number `attempt` (0-based: the delay after the
    /// first failure is `delay(0)`).
    pub fn delay(&self, attempt: u32) -> Duration {
        let d = self.initial.mul_f64(self.factor.powi(attempt as i32));
        d.min(self.max)
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            initial: Duration::from_millis(100),
            factor: 2.0,
            max: Duration::from_secs(10),
        }
    }
}

/// How many times to retry and how long to wait between attempts.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum number of *retries* (total attempts = retries + 1).
    pub max_retries: u32,
    pub backoff: Backoff,
}

impl RetryPolicy {
    /// Never retry.
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, backoff: Backoff::default() }
    }

    /// A sensible default for page fetches: 3 retries, 100ms..10s backoff.
    pub fn standard() -> Self {
        RetryPolicy { max_retries: 3, backoff: Backoff::default() }
    }

    /// Decide what to do after a failure on attempt `attempt` (0-based).
    ///
    /// Returns the wait duration before the next attempt, or `None` if
    /// the request should fail now. Server-provided `retry_after` hints
    /// override the backoff schedule when longer.
    pub fn next_delay(&self, attempt: u32, err: &NetError) -> Option<Duration> {
        if attempt >= self.max_retries || !err.is_retryable() {
            return None;
        }
        let scheduled = self.backoff.delay(attempt);
        Some(match err.retry_after() {
            Some(hint) if hint > scheduled => hint,
            _ => scheduled,
        })
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeout() -> NetError {
        NetError::Timeout { host: "h".into(), elapsed: Duration::from_millis(1) }
    }

    #[test]
    fn backoff_grows_exponentially_until_cap() {
        let b = Backoff {
            initial: Duration::from_millis(100),
            factor: 2.0,
            max: Duration::from_millis(500),
        };
        assert_eq!(b.delay(0), Duration::from_millis(100));
        assert_eq!(b.delay(1), Duration::from_millis(200));
        assert_eq!(b.delay(2), Duration::from_millis(400));
        assert_eq!(b.delay(3), Duration::from_millis(500)); // capped
        assert_eq!(b.delay(30), Duration::from_millis(500));
    }

    #[test]
    fn policy_stops_after_max_retries() {
        let p = RetryPolicy { max_retries: 2, backoff: Backoff::default() };
        assert!(p.next_delay(0, &timeout()).is_some());
        assert!(p.next_delay(1, &timeout()).is_some());
        assert!(p.next_delay(2, &timeout()).is_none());
    }

    #[test]
    fn policy_never_retries_permanent_errors() {
        let p = RetryPolicy::standard();
        assert!(p.next_delay(0, &NetError::HostNotFound("h".into())).is_none());
        assert!(p
            .next_delay(0, &NetError::HttpStatus { host: "h".into(), code: 404 })
            .is_none());
    }

    #[test]
    fn retry_after_hint_overrides_shorter_backoff() {
        let p = RetryPolicy::standard(); // first backoff delay = 100ms
        let err = NetError::RateLimited {
            host: "h".into(),
            retry_after: Duration::from_secs(2),
        };
        assert_eq!(p.next_delay(0, &err), Some(Duration::from_secs(2)));
        // ...but a hint shorter than the schedule does not shrink it.
        let err = NetError::RateLimited {
            host: "h".into(),
            retry_after: Duration::from_millis(1),
        };
        assert_eq!(p.next_delay(0, &err), Some(Duration::from_millis(100)));
    }

    #[test]
    fn none_policy_fails_immediately() {
        assert!(RetryPolicy::none().next_delay(0, &timeout()).is_none());
    }
}
