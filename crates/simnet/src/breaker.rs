//! Per-host circuit breaker for the client.
//!
//! The classic three-state machine, with all timing on the virtual
//! clock so behaviour is reproducible:
//!
//! * **Closed** — requests flow; consecutive failures are counted.
//! * **Open** — after `failure_threshold` consecutive failures the
//!   breaker trips: requests fail fast (no network time spent) until
//!   `cooldown` elapses.
//! * **Half-open** — after the cooldown one probe request is allowed
//!   through; success closes the breaker, failure re-opens it.
//!
//! Failures are classified ([`FailureClass`]) so the metrics say *why*
//! a host tripped, not just that it did.

use crate::clock::{Duration, Instant};
use crate::error::NetError;
use serde::{Deserialize, Serialize};

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// Virtual time the breaker stays open before a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 4,
            cooldown: Duration::from_secs(30),
        }
    }
}

/// The breaker's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// Failure taxonomy for breaker metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureClass {
    Timeout,
    ConnectionReset,
    RateLimited,
    ServerError,
    Other,
}

impl FailureClass {
    /// Classify a network error.
    pub fn of(err: &NetError) -> FailureClass {
        match err {
            NetError::Timeout { .. } => FailureClass::Timeout,
            NetError::ConnectionReset { .. } => FailureClass::ConnectionReset,
            NetError::RateLimited { .. } => FailureClass::RateLimited,
            NetError::HttpStatus { code, .. } if *code >= 500 => FailureClass::ServerError,
            NetError::RetriesExhausted { last, .. } => FailureClass::of(last),
            _ => FailureClass::Other,
        }
    }
}

/// Counters exported by one host's breaker.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BreakerMetrics {
    /// Closed/half-open → open transitions.
    pub opened: u64,
    /// Open → half-open transitions (probe admitted).
    pub half_opened: u64,
    /// Half-open → closed transitions (probe succeeded).
    pub reclosed: u64,
    /// Requests rejected without touching the network.
    pub fast_failures: u64,
    pub timeouts: u64,
    pub resets: u64,
    pub rate_limited: u64,
    pub server_errors: u64,
    pub other_failures: u64,
}

impl BreakerMetrics {
    /// Total state transitions (opened + half-opened + reclosed).
    pub fn transitions(&self) -> u64 {
        self.opened + self.half_opened + self.reclosed
    }

    /// Total recorded failures, across classes.
    pub fn failures(&self) -> u64 {
        self.timeouts + self.resets + self.rate_limited + self.server_errors + self.other_failures
    }

    /// Merge counters from another breaker (for network-wide totals).
    pub fn absorb(&mut self, other: &BreakerMetrics) {
        self.opened += other.opened;
        self.half_opened += other.half_opened;
        self.reclosed += other.reclosed;
        self.fast_failures += other.fast_failures;
        self.timeouts += other.timeouts;
        self.resets += other.resets;
        self.rate_limited += other.rate_limited;
        self.server_errors += other.server_errors;
        self.other_failures += other.other_failures;
    }
}

/// One host's circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Instant,
    metrics: BreakerMetrics,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: Instant::EPOCH,
            metrics: BreakerMetrics::default(),
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn metrics(&self) -> BreakerMetrics {
        self.metrics
    }

    /// Whether a request may proceed at virtual time `now`.
    ///
    /// Open breakers transition to half-open once the cooldown has
    /// elapsed (the caller's request becomes the probe). Returns
    /// `false` — and counts a fast failure — while the breaker is open
    /// and cooling down.
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now.duration_since(self.opened_at) >= self.config.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.metrics.half_opened += 1;
                    true
                } else {
                    self.metrics.fast_failures += 1;
                    false
                }
            }
        }
    }

    /// Virtual time until the next probe is admitted; zero unless open.
    pub fn retry_in(&self, now: Instant) -> Duration {
        match self.state {
            BreakerState::Open => (self.opened_at + self.config.cooldown).duration_since(now),
            _ => Duration::ZERO,
        }
    }

    /// Record a successful request.
    pub fn record_success(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.metrics.reclosed += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record a failed request at virtual time `now`.
    pub fn record_failure(&mut self, class: FailureClass, now: Instant) {
        match class {
            FailureClass::Timeout => self.metrics.timeouts += 1,
            FailureClass::ConnectionReset => self.metrics.resets += 1,
            FailureClass::RateLimited => self.metrics.rate_limited += 1,
            FailureClass::ServerError => self.metrics.server_errors += 1,
            FailureClass::Other => self.metrics.other_failures += 1,
        }
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.consecutive_failures = 0;
        self.metrics.opened += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_s: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_secs(cooldown_s),
        })
    }

    #[test]
    fn stays_closed_below_threshold() {
        let mut b = breaker(3, 10);
        let now = Instant::EPOCH;
        b.record_failure(FailureClass::Timeout, now);
        b.record_failure(FailureClass::Timeout, now);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(now));
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut b = breaker(3, 10);
        let now = Instant::EPOCH;
        b.record_failure(FailureClass::ConnectionReset, now);
        b.record_failure(FailureClass::ConnectionReset, now);
        b.record_success();
        b.record_failure(FailureClass::ConnectionReset, now);
        b.record_failure(FailureClass::ConnectionReset, now);
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "count must reset on success"
        );
    }

    #[test]
    fn opens_at_threshold_and_fails_fast() {
        let mut b = breaker(2, 10);
        let now = Instant::EPOCH;
        b.record_failure(FailureClass::Timeout, now);
        b.record_failure(FailureClass::Timeout, now);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(now + Duration::from_secs(5)));
        assert_eq!(b.metrics().fast_failures, 1);
        assert_eq!(b.metrics().opened, 1);
        assert_eq!(b.retry_in(now), Duration::from_secs(10));
    }

    #[test]
    fn half_open_probe_after_cooldown_then_close_on_success() {
        let mut b = breaker(1, 10);
        b.record_failure(FailureClass::ServerError, Instant::EPOCH);
        assert_eq!(b.state(), BreakerState::Open);
        let after = Instant::EPOCH + Duration::from_secs(10);
        assert!(b.allow(after), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let m = b.metrics();
        assert_eq!((m.opened, m.half_opened, m.reclosed), (1, 1, 1));
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = breaker(1, 10);
        b.record_failure(FailureClass::Timeout, Instant::EPOCH);
        let probe_at = Instant::EPOCH + Duration::from_secs(10);
        assert!(b.allow(probe_at));
        b.record_failure(FailureClass::Timeout, probe_at);
        assert_eq!(b.state(), BreakerState::Open);
        // A new full cooldown applies from the re-open.
        assert!(!b.allow(probe_at + Duration::from_secs(9)));
        assert!(b.allow(probe_at + Duration::from_secs(10)));
    }

    #[test]
    fn failure_classification() {
        assert_eq!(
            FailureClass::of(&NetError::Timeout {
                host: "h".into(),
                elapsed: Duration::from_millis(1)
            }),
            FailureClass::Timeout
        );
        assert_eq!(
            FailureClass::of(&NetError::HttpStatus {
                host: "h".into(),
                code: 503
            }),
            FailureClass::ServerError
        );
        assert_eq!(
            FailureClass::of(&NetError::HttpStatus {
                host: "h".into(),
                code: 404
            }),
            FailureClass::Other
        );
        // RetriesExhausted classifies as its underlying cause.
        assert_eq!(
            FailureClass::of(&NetError::RetriesExhausted {
                attempts: 3,
                last: Box::new(NetError::ConnectionReset { host: "h".into() }),
            }),
            FailureClass::ConnectionReset
        );
    }

    #[test]
    fn metrics_absorb_accumulates() {
        let mut a = BreakerMetrics {
            opened: 1,
            timeouts: 2,
            ..BreakerMetrics::default()
        };
        let b = BreakerMetrics {
            opened: 2,
            resets: 3,
            ..BreakerMetrics::default()
        };
        a.absorb(&b);
        assert_eq!(a.opened, 3);
        assert_eq!(a.failures(), 5);
        assert_eq!(a.transitions(), 3);
    }
}
