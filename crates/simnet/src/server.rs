//! The virtual network: host registry, request/response types, and the
//! server-side transmission pipeline (rate limit → latency/loss → handler).
//!
//! A [`Network`] owns every registered virtual host. Requests are
//! submitted through [`Network::transmit`], which charges virtual time
//! for the round trip, applies the host's token bucket, and may drop the
//! request according to the host's loss model. The [`crate::client::Client`]
//! wraps this with timeouts and retries.

use crate::clock::{Duration, VirtualClock};
use crate::error::{NetError, NetResult};
use crate::latency::{LatencyModel, LatencySample};
use crate::ratelimit::{Acquire, TokenBucket};
use crate::url::Url;
use bytes::Bytes;
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Response status codes, a compact subset of HTTP semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    Ok,
    /// Moved: the body carries the target URL.
    Redirect,
    NotFound,
    TooManyRequests,
    ServerError,
}

impl Status {
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Redirect => 301,
            Status::NotFound => 404,
            Status::TooManyRequests => 429,
            Status::ServerError => 500,
        }
    }
}

/// A request addressed to a virtual host.
#[derive(Debug, Clone)]
pub struct Request {
    pub url: Url,
    /// Client identifier, used by hosts for per-client accounting.
    pub client_id: u64,
}

impl Request {
    pub fn get(url: Url) -> Self {
        Request { url, client_id: 0 }
    }
}

/// A response from a virtual host.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: Status,
    pub body: Bytes,
    /// Media type hint ("text/html", "application/json", ...).
    pub content_type: &'static str,
}

impl Response {
    pub fn ok(body: impl Into<String>) -> Self {
        Response {
            status: Status::Ok,
            body: Bytes::from(body.into()),
            content_type: "text/html",
        }
    }

    pub fn json(body: impl Into<String>) -> Self {
        Response {
            status: Status::Ok,
            body: Bytes::from(body.into()),
            content_type: "application/json",
        }
    }

    /// A permanent redirect to `location`.
    pub fn redirect(location: impl Into<String>) -> Self {
        Response {
            status: Status::Redirect,
            body: Bytes::from(location.into()),
            content_type: "text/plain",
        }
    }

    /// The redirect target, if this is a redirect response.
    pub fn redirect_location(&self) -> Option<&str> {
        (self.status == Status::Redirect)
            .then(|| std::str::from_utf8(&self.body).ok())
            .flatten()
    }

    pub fn not_found() -> Self {
        Response {
            status: Status::NotFound,
            body: Bytes::from_static(b"not found"),
            content_type: "text/plain",
        }
    }

    /// Body as UTF-8 text.
    pub fn text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Per-request context handed to host handlers.
pub struct HostCtx<'a> {
    /// Virtual time at which the request arrives at the host.
    pub now: crate::clock::Instant,
    /// Extra processing time the handler wants to charge (e.g. a search
    /// host charges per-document scoring time).
    pub processing: &'a mut Duration,
}

impl HostCtx<'_> {
    /// Charge additional server-side processing time to this request.
    pub fn charge(&mut self, d: Duration) {
        *self.processing += d;
    }
}

/// A virtual host: anything that can answer requests.
pub trait Host: Send + Sync {
    fn handle(&self, req: &Request, ctx: &mut HostCtx<'_>) -> Response;
}

/// Blanket impl so closures can serve as simple hosts in tests.
impl<F> Host for F
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn handle(&self, req: &Request, _ctx: &mut HostCtx<'_>) -> Response {
        self(req)
    }
}

/// Per-host configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    pub latency: LatencyModel,
    pub rate_limit: TokenBucket,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            latency: LatencyModel::typical(),
            rate_limit: TokenBucket::unlimited(),
        }
    }
}

/// Network-wide configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Default latency/limit settings for hosts registered without
    /// explicit configuration.
    pub default_host: HostConfig,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig { default_host: HostConfig::default() }
    }
}

/// Aggregate transmission statistics, used by experiment E6/F1.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NetStats {
    pub requests: u64,
    pub delivered: u64,
    pub lost: u64,
    pub rate_limited: u64,
    /// Total virtual time spent on the wire and in server processing.
    pub busy: Duration,
}

struct HostSlot {
    host: Arc<dyn Host>,
    latency: LatencyModel,
    bucket: Mutex<TokenBucket>,
}

/// The registry of virtual hosts plus shared clock and RNG.
pub struct Network {
    hosts: HashMap<String, HostSlot>,
    clock: VirtualClock,
    rng: Mutex<ChaCha8Rng>,
    stats: Mutex<NetStats>,
    config: NetworkConfig,
}

impl Network {
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        Network {
            hosts: HashMap::new(),
            clock: VirtualClock::new(),
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(seed)),
            stats: Mutex::new(NetStats::default()),
            config,
        }
    }

    /// Register `host` under `name` with default latency/limits.
    pub fn register(&mut self, name: &str, host: Arc<dyn Host>) {
        let cfg = self.config.default_host.clone();
        self.register_with(name, host, cfg);
    }

    /// Register `host` with explicit per-host configuration.
    pub fn register_with(&mut self, name: &str, host: Arc<dyn Host>, cfg: HostConfig) {
        self.hosts.insert(
            name.to_string(),
            HostSlot {
                host,
                latency: cfg.latency,
                bucket: Mutex::new(cfg.rate_limit),
            },
        );
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Registered host names, sorted (for deterministic iteration).
    pub fn host_names(&self) -> Vec<String> {
        let mut names: Vec<_> = self.hosts.keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshot of transmission statistics.
    pub fn stats(&self) -> NetStats {
        *self.stats.lock()
    }

    /// Transmit one request: advance virtual time for the round trip and
    /// return the host's response or a transport error.
    ///
    /// This is the raw, no-retry path; use [`crate::client::Client`] for
    /// the full client behaviour.
    pub fn transmit(&self, req: &Request) -> NetResult<Response> {
        let slot = self
            .hosts
            .get(req.url.host())
            .ok_or_else(|| NetError::HostNotFound(req.url.host().to_string()))?;

        {
            let mut stats = self.stats.lock();
            stats.requests += 1;
        }

        // Rate limiting happens before any time is charged: the reject
        // is cheap for the server.
        let now = self.clock.now();
        if let Acquire::Denied { retry_after } = slot.bucket.lock().try_acquire(now) {
            self.stats.lock().rate_limited += 1;
            return Err(NetError::RateLimited {
                host: req.url.host().to_string(),
                retry_after,
            });
        }

        let sample = slot.latency.sample(&mut self.rng.lock());
        match sample {
            LatencySample::Lost => {
                // A reset is detected after roughly one base RTT.
                let wasted = slot.latency.base;
                self.clock.advance(wasted);
                let mut stats = self.stats.lock();
                stats.lost += 1;
                stats.busy += wasted;
                Err(NetError::ConnectionReset { host: req.url.host().to_string() })
            }
            LatencySample::Delivered(rtt) => {
                let mut processing = Duration::ZERO;
                let mut ctx = HostCtx { now: self.clock.now(), processing: &mut processing };
                let resp = slot.host.handle(req, &mut ctx);
                let total = rtt + processing;
                self.clock.advance(total);
                let mut stats = self.stats.lock();
                stats.delivered += 1;
                stats.busy += total;
                match resp.status {
                    Status::Ok | Status::Redirect => Ok(resp),
                    Status::TooManyRequests => Err(NetError::RateLimited {
                        host: req.url.host().to_string(),
                        retry_after: Duration::from_secs(1),
                    }),
                    status => Err(NetError::HttpStatus {
                        host: req.url.host().to_string(),
                        code: status.code(),
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratelimit::TokenBucket;

    fn echo_host() -> Arc<dyn Host> {
        Arc::new(|req: &Request| Response::ok(format!("echo:{}", req.url.path())))
    }

    fn reliable_cfg() -> HostConfig {
        HostConfig {
            latency: LatencyModel { loss: 0.0, ..LatencyModel::fast() },
            rate_limit: TokenBucket::unlimited(),
        }
    }

    fn net_with_echo() -> Network {
        let mut net = Network::new(NetworkConfig::default(), 1);
        net.register_with("echo.test", echo_host(), reliable_cfg());
        net
    }

    #[test]
    fn transmit_reaches_handler_and_advances_clock() {
        let net = net_with_echo();
        let before = net.clock().now();
        let resp = net
            .transmit(&Request::get(Url::parse("sim://echo.test/a/b").unwrap()))
            .unwrap();
        assert_eq!(resp.text(), Some("echo:/a/b"));
        assert!(net.clock().now() > before, "round trip must cost virtual time");
    }

    #[test]
    fn unknown_host_is_an_error() {
        let net = net_with_echo();
        let err = net
            .transmit(&Request::get(Url::parse("sim://nowhere.test/").unwrap()))
            .unwrap_err();
        assert_eq!(err, NetError::HostNotFound("nowhere.test".into()));
    }

    #[test]
    fn rate_limited_host_rejects_burst() {
        let mut net = Network::new(NetworkConfig::default(), 1);
        net.register_with(
            "limited.test",
            echo_host(),
            HostConfig {
                latency: LatencyModel { loss: 0.0, ..LatencyModel::fast() },
                rate_limit: TokenBucket::new(2, 0.0001),
            },
        );
        let url = Url::parse("sim://limited.test/").unwrap();
        assert!(net.transmit(&Request::get(url.clone())).is_ok());
        assert!(net.transmit(&Request::get(url.clone())).is_ok());
        let err = net.transmit(&Request::get(url)).unwrap_err();
        assert!(matches!(err, NetError::RateLimited { .. }), "got {err:?}");
        assert_eq!(net.stats().rate_limited, 1);
    }

    #[test]
    fn lossy_host_produces_resets() {
        let mut net = Network::new(NetworkConfig::default(), 5);
        net.register_with(
            "flaky.test",
            echo_host(),
            HostConfig {
                latency: LatencyModel { loss: 1.0, ..LatencyModel::fast() },
                rate_limit: TokenBucket::unlimited(),
            },
        );
        let err = net
            .transmit(&Request::get(Url::parse("sim://flaky.test/").unwrap()))
            .unwrap_err();
        assert_eq!(err, NetError::ConnectionReset { host: "flaky.test".into() });
        assert_eq!(net.stats().lost, 1);
    }

    #[test]
    fn handler_processing_time_is_charged() {
        struct Slow;
        impl Host for Slow {
            fn handle(&self, _req: &Request, ctx: &mut HostCtx<'_>) -> Response {
                ctx.charge(Duration::from_secs(2));
                Response::ok("done")
            }
        }
        let mut net = Network::new(NetworkConfig::default(), 1);
        net.register_with("slow.test", Arc::new(Slow), reliable_cfg());
        net.transmit(&Request::get(Url::parse("sim://slow.test/").unwrap()))
            .unwrap();
        assert!(net.clock().now().as_micros() >= 2_000_000);
    }

    #[test]
    fn non_ok_status_maps_to_error() {
        let mut net = Network::new(NetworkConfig::default(), 1);
        net.register_with(
            "err.test",
            Arc::new(|_req: &Request| Response::not_found()),
            reliable_cfg(),
        );
        let err = net
            .transmit(&Request::get(Url::parse("sim://err.test/x").unwrap()))
            .unwrap_err();
        assert_eq!(err, NetError::HttpStatus { host: "err.test".into(), code: 404 });
    }

    #[test]
    fn stats_accumulate() {
        let net = net_with_echo();
        let url = Url::parse("sim://echo.test/").unwrap();
        for _ in 0..5 {
            net.transmit(&Request::get(url.clone())).unwrap();
        }
        let s = net.stats();
        assert_eq!(s.requests, 5);
        assert_eq!(s.delivered, 5);
        assert!(s.busy > Duration::ZERO);
    }
}
