//! The virtual network: host registry, request/response types, and the
//! server-side transmission pipeline (rate limit → latency/loss → handler).
//!
//! A [`Network`] owns every registered virtual host. Requests are
//! submitted through [`Network::transmit`], which charges virtual time
//! for the round trip, applies the host's token bucket, and may drop the
//! request according to the host's loss model. The [`crate::client::Client`]
//! wraps this with timeouts and retries.

use crate::clock::{Duration, VirtualClock};
use crate::error::{NetError, NetResult};
use crate::faults::{FaultKind, FaultPlan, FaultStats};
use crate::latency::{LatencyModel, LatencySample};
use crate::ratelimit::{Acquire, TokenBucket};
use crate::url::Url;
use bytes::Bytes;
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Response status codes, a compact subset of HTTP semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    Ok,
    /// Moved: the body carries the target URL.
    Redirect,
    NotFound,
    TooManyRequests,
    ServerError,
}

impl Status {
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Redirect => 301,
            Status::NotFound => 404,
            Status::TooManyRequests => 429,
            Status::ServerError => 500,
        }
    }
}

/// A request addressed to a virtual host.
#[derive(Debug, Clone)]
pub struct Request {
    pub url: Url,
    /// Client identifier, used by hosts for per-client accounting.
    pub client_id: u64,
}

impl Request {
    pub fn get(url: Url) -> Self {
        Request { url, client_id: 0 }
    }
}

/// A response from a virtual host.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: Status,
    pub body: Bytes,
    /// Media type hint ("text/html", "application/json", ...).
    pub content_type: &'static str,
}

impl Response {
    pub fn ok(body: impl Into<String>) -> Self {
        Response {
            status: Status::Ok,
            body: Bytes::from(body.into()),
            content_type: "text/html",
        }
    }

    pub fn json(body: impl Into<String>) -> Self {
        Response {
            status: Status::Ok,
            body: Bytes::from(body.into()),
            content_type: "application/json",
        }
    }

    /// A permanent redirect to `location`.
    pub fn redirect(location: impl Into<String>) -> Self {
        Response {
            status: Status::Redirect,
            body: Bytes::from(location.into()),
            content_type: "text/plain",
        }
    }

    /// The redirect target, if this is a redirect response.
    pub fn redirect_location(&self) -> Option<&str> {
        (self.status == Status::Redirect)
            .then(|| std::str::from_utf8(&self.body).ok())
            .flatten()
    }

    pub fn not_found() -> Self {
        Response {
            status: Status::NotFound,
            body: Bytes::from_static(b"not found"),
            content_type: "text/plain",
        }
    }

    /// Body as UTF-8 text.
    pub fn text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Per-request context handed to host handlers.
pub struct HostCtx<'a> {
    /// Virtual time at which the request arrives at the host.
    pub now: crate::clock::Instant,
    /// Extra processing time the handler wants to charge (e.g. a search
    /// host charges per-document scoring time).
    pub processing: &'a mut Duration,
}

impl HostCtx<'_> {
    /// Charge additional server-side processing time to this request.
    pub fn charge(&mut self, d: Duration) {
        *self.processing += d;
    }
}

/// A virtual host: anything that can answer requests.
pub trait Host: Send + Sync {
    fn handle(&self, req: &Request, ctx: &mut HostCtx<'_>) -> Response;
}

/// Blanket impl so closures can serve as simple hosts in tests.
impl<F> Host for F
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn handle(&self, req: &Request, _ctx: &mut HostCtx<'_>) -> Response {
        self(req)
    }
}

/// Per-host configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    pub latency: LatencyModel,
    pub rate_limit: TokenBucket,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            latency: LatencyModel::typical(),
            rate_limit: TokenBucket::unlimited(),
        }
    }
}

/// Network-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct NetworkConfig {
    /// Default latency/limit settings for hosts registered without
    /// explicit configuration.
    pub default_host: HostConfig,
}

/// Aggregate transmission statistics, used by experiment E6/F1.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NetStats {
    pub requests: u64,
    pub delivered: u64,
    pub lost: u64,
    pub rate_limited: u64,
    /// Total virtual time spent on the wire and in server processing.
    pub busy: Duration,
}

struct HostSlot {
    host: Arc<dyn Host>,
    latency: LatencyModel,
    bucket: Mutex<TokenBucket>,
}

/// The registry of virtual hosts plus shared clock and RNG.
pub struct Network {
    hosts: HashMap<String, HostSlot>,
    clock: VirtualClock,
    rng: Mutex<ChaCha8Rng>,
    stats: Mutex<NetStats>,
    config: NetworkConfig,
    /// Installed chaos schedule; `None` leaves behaviour unchanged.
    faults: Mutex<Option<FaultPlan>>,
    fault_stats: Mutex<FaultStats>,
}

impl Network {
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        Network {
            hosts: HashMap::new(),
            clock: VirtualClock::new(),
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(seed)),
            stats: Mutex::new(NetStats::default()),
            config,
            faults: Mutex::new(None),
            fault_stats: Mutex::new(FaultStats::default()),
        }
    }

    /// Register `host` under `name` with default latency/limits.
    pub fn register(&mut self, name: &str, host: Arc<dyn Host>) {
        let cfg = self.config.default_host.clone();
        self.register_with(name, host, cfg);
    }

    /// Register `host` with explicit per-host configuration.
    pub fn register_with(&mut self, name: &str, host: Arc<dyn Host>, cfg: HostConfig) {
        self.hosts.insert(
            name.to_string(),
            HostSlot {
                host,
                latency: cfg.latency,
                bucket: Mutex::new(cfg.rate_limit),
            },
        );
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Registered host names, sorted (for deterministic iteration).
    pub fn host_names(&self) -> Vec<String> {
        let mut names: Vec<_> = self.hosts.keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshot of transmission statistics.
    pub fn stats(&self) -> NetStats {
        *self.stats.lock()
    }

    /// Install (or replace) a fault plan. Callable through a shared
    /// reference so chaos can be scheduled after the network is
    /// wrapped in an `Arc`.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.faults.lock() = if plan.is_empty() { None } else { Some(plan) };
    }

    /// Remove any installed fault plan.
    pub fn clear_fault_plan(&self) {
        *self.faults.lock() = None;
    }

    /// Snapshot of injected-fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        *self.fault_stats.lock()
    }

    /// Fault windows in the installed plan (0 when none is installed).
    pub fn fault_plan_window_count(&self) -> usize {
        self.faults.lock().as_ref().map_or(0, |p| p.window_count())
    }

    /// The fault window active for `host` right now, if any.
    fn active_fault(&self, host: &str) -> Option<FaultKind> {
        self.faults
            .lock()
            .as_ref()
            .and_then(|plan| plan.active(host, self.clock.now()))
            .map(|w| w.kind)
    }

    /// Damage an OK body per the active corruption fault. Truncation
    /// keeps a prefix (cutting JSON and UTF-8 mid-structure); garbling
    /// XORs every third byte, which almost always breaks UTF-8.
    fn corrupt_body(&self, resp: &mut Response, truncate: bool) {
        if resp.status != Status::Ok || resp.body.is_empty() {
            return;
        }
        let bytes = resp.body.to_vec();
        let damaged = if truncate {
            bytes[..bytes.len() / 2].to_vec()
        } else {
            bytes
                .iter()
                .enumerate()
                .map(|(i, b)| if i % 3 == 0 { b ^ 0xA5 } else { *b })
                .collect()
        };
        resp.body = Bytes::from(damaged);
        self.fault_stats.lock().corrupted_bodies += 1;
    }

    /// Transmit one request: advance virtual time for the round trip and
    /// return the host's response or a transport error.
    ///
    /// This is the raw, no-retry path; use [`crate::client::Client`] for
    /// the full client behaviour.
    pub fn transmit(&self, req: &Request) -> NetResult<Response> {
        let slot = self
            .hosts
            .get(req.url.host())
            .ok_or_else(|| NetError::HostNotFound(req.url.host().to_string()))?;

        {
            let mut stats = self.stats.lock();
            stats.requests += 1;
        }

        // Evaluate the chaos schedule first: an injected fault models
        // the host (or its path) misbehaving before normal service.
        let fault = self.active_fault(req.url.host());
        match fault {
            Some(FaultKind::Blackout) => {
                // Unreachable host: detected after roughly one base RTT.
                let wasted = slot.latency.base;
                self.clock.advance(wasted);
                let mut stats = self.stats.lock();
                stats.lost += 1;
                stats.busy += wasted;
                self.fault_stats.lock().blackout_drops += 1;
                return Err(NetError::ConnectionReset {
                    host: req.url.host().to_string(),
                });
            }
            Some(FaultKind::RateLimitStorm { retry_after }) => {
                self.stats.lock().rate_limited += 1;
                self.fault_stats.lock().storm_rejections += 1;
                return Err(NetError::RateLimited {
                    host: req.url.host().to_string(),
                    retry_after,
                });
            }
            Some(FaultKind::Flaky { extra_loss, .. }) => {
                // The extra loss draw composes with (precedes) the
                // baseline loss model below.
                if self.rng.lock().gen_bool(extra_loss) {
                    let wasted = slot.latency.base;
                    self.clock.advance(wasted);
                    let mut stats = self.stats.lock();
                    stats.lost += 1;
                    stats.busy += wasted;
                    self.fault_stats.lock().flaky_drops += 1;
                    return Err(NetError::ConnectionReset {
                        host: req.url.host().to_string(),
                    });
                }
            }
            Some(FaultKind::CorruptBody { .. }) | None => {}
        }

        // Rate limiting happens before any time is charged: the reject
        // is cheap for the server.
        let now = self.clock.now();
        if let Acquire::Denied { retry_after } = slot.bucket.lock().try_acquire(now) {
            self.stats.lock().rate_limited += 1;
            return Err(NetError::RateLimited {
                host: req.url.host().to_string(),
                retry_after,
            });
        }

        let sample = slot.latency.sample(&mut self.rng.lock());
        match sample {
            LatencySample::Lost => {
                // A reset is detected after roughly one base RTT.
                let wasted = slot.latency.base;
                self.clock.advance(wasted);
                let mut stats = self.stats.lock();
                stats.lost += 1;
                stats.busy += wasted;
                Err(NetError::ConnectionReset {
                    host: req.url.host().to_string(),
                })
            }
            LatencySample::Delivered(mut rtt) => {
                if let Some(FaultKind::Flaky { slowdown, .. }) = fault {
                    // Degraded path: responses crawl, driving client
                    // timeouts without dropping the connection.
                    rtt = rtt.mul_f64(slowdown.max(1.0));
                    self.fault_stats.lock().flaky_slowdowns += 1;
                }
                let mut processing = Duration::ZERO;
                let mut ctx = HostCtx {
                    now: self.clock.now(),
                    processing: &mut processing,
                };
                let mut resp = slot.host.handle(req, &mut ctx);
                if let Some(FaultKind::CorruptBody { truncate }) = fault {
                    self.corrupt_body(&mut resp, truncate);
                }
                let total = rtt + processing;
                self.clock.advance(total);
                let mut stats = self.stats.lock();
                stats.delivered += 1;
                stats.busy += total;
                match resp.status {
                    Status::Ok | Status::Redirect => Ok(resp),
                    Status::TooManyRequests => Err(NetError::RateLimited {
                        host: req.url.host().to_string(),
                        retry_after: Duration::from_secs(1),
                    }),
                    status => Err(NetError::HttpStatus {
                        host: req.url.host().to_string(),
                        code: status.code(),
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratelimit::TokenBucket;

    fn echo_host() -> Arc<dyn Host> {
        Arc::new(|req: &Request| Response::ok(format!("echo:{}", req.url.path())))
    }

    fn reliable_cfg() -> HostConfig {
        HostConfig {
            latency: LatencyModel {
                loss: 0.0,
                ..LatencyModel::fast()
            },
            rate_limit: TokenBucket::unlimited(),
        }
    }

    fn net_with_echo() -> Network {
        let mut net = Network::new(NetworkConfig::default(), 1);
        net.register_with("echo.test", echo_host(), reliable_cfg());
        net
    }

    #[test]
    fn transmit_reaches_handler_and_advances_clock() {
        let net = net_with_echo();
        let before = net.clock().now();
        let resp = net
            .transmit(&Request::get(Url::parse("sim://echo.test/a/b").unwrap()))
            .unwrap();
        assert_eq!(resp.text(), Some("echo:/a/b"));
        assert!(
            net.clock().now() > before,
            "round trip must cost virtual time"
        );
    }

    #[test]
    fn unknown_host_is_an_error() {
        let net = net_with_echo();
        let err = net
            .transmit(&Request::get(Url::parse("sim://nowhere.test/").unwrap()))
            .unwrap_err();
        assert_eq!(err, NetError::HostNotFound("nowhere.test".into()));
    }

    #[test]
    fn rate_limited_host_rejects_burst() {
        let mut net = Network::new(NetworkConfig::default(), 1);
        net.register_with(
            "limited.test",
            echo_host(),
            HostConfig {
                latency: LatencyModel {
                    loss: 0.0,
                    ..LatencyModel::fast()
                },
                rate_limit: TokenBucket::new(2, 0.0001),
            },
        );
        let url = Url::parse("sim://limited.test/").unwrap();
        assert!(net.transmit(&Request::get(url.clone())).is_ok());
        assert!(net.transmit(&Request::get(url.clone())).is_ok());
        let err = net.transmit(&Request::get(url)).unwrap_err();
        assert!(matches!(err, NetError::RateLimited { .. }), "got {err:?}");
        assert_eq!(net.stats().rate_limited, 1);
    }

    #[test]
    fn lossy_host_produces_resets() {
        let mut net = Network::new(NetworkConfig::default(), 5);
        net.register_with(
            "flaky.test",
            echo_host(),
            HostConfig {
                latency: LatencyModel {
                    loss: 1.0,
                    ..LatencyModel::fast()
                },
                rate_limit: TokenBucket::unlimited(),
            },
        );
        let err = net
            .transmit(&Request::get(Url::parse("sim://flaky.test/").unwrap()))
            .unwrap_err();
        assert_eq!(
            err,
            NetError::ConnectionReset {
                host: "flaky.test".into()
            }
        );
        assert_eq!(net.stats().lost, 1);
    }

    #[test]
    fn handler_processing_time_is_charged() {
        struct Slow;
        impl Host for Slow {
            fn handle(&self, _req: &Request, ctx: &mut HostCtx<'_>) -> Response {
                ctx.charge(Duration::from_secs(2));
                Response::ok("done")
            }
        }
        let mut net = Network::new(NetworkConfig::default(), 1);
        net.register_with("slow.test", Arc::new(Slow), reliable_cfg());
        net.transmit(&Request::get(Url::parse("sim://slow.test/").unwrap()))
            .unwrap();
        assert!(net.clock().now().as_micros() >= 2_000_000);
    }

    #[test]
    fn non_ok_status_maps_to_error() {
        let mut net = Network::new(NetworkConfig::default(), 1);
        net.register_with(
            "err.test",
            Arc::new(|_req: &Request| Response::not_found()),
            reliable_cfg(),
        );
        let err = net
            .transmit(&Request::get(Url::parse("sim://err.test/x").unwrap()))
            .unwrap_err();
        assert_eq!(
            err,
            NetError::HttpStatus {
                host: "err.test".into(),
                code: 404
            }
        );
    }

    #[test]
    fn stats_accumulate() {
        let net = net_with_echo();
        let url = Url::parse("sim://echo.test/").unwrap();
        for _ in 0..5 {
            net.transmit(&Request::get(url.clone())).unwrap();
        }
        let s = net.stats();
        assert_eq!(s.requests, 5);
        assert_eq!(s.delivered, 5);
        assert!(s.busy > Duration::ZERO);
    }

    mod faults {
        use super::*;
        use crate::clock::Instant;
        use crate::faults::{FaultKind, FaultPlan};

        fn far() -> Instant {
            Instant::from_micros(u64::MAX)
        }

        #[test]
        fn blackout_window_drops_every_request() {
            let net = net_with_echo();
            net.set_fault_plan(FaultPlan::new().with_blackout("echo.test", Instant::EPOCH, far()));
            let url = Url::parse("sim://echo.test/").unwrap();
            for _ in 0..3 {
                let err = net.transmit(&Request::get(url.clone())).unwrap_err();
                assert_eq!(
                    err,
                    NetError::ConnectionReset {
                        host: "echo.test".into()
                    }
                );
            }
            assert_eq!(net.fault_stats().blackout_drops, 3);
            assert!(
                net.clock().now() > Instant::EPOCH,
                "drops still cost virtual time"
            );
        }

        #[test]
        fn blackout_ends_when_the_window_closes() {
            let net = net_with_echo();
            let until = Instant::from_micros(1_000_000);
            net.set_fault_plan(FaultPlan::new().with_blackout("echo.test", Instant::EPOCH, until));
            let url = Url::parse("sim://echo.test/").unwrap();
            assert!(net.transmit(&Request::get(url.clone())).is_err());
            net.clock().advance_to(until);
            assert!(
                net.transmit(&Request::get(url)).is_ok(),
                "host recovers after the window"
            );
        }

        #[test]
        fn storm_rejects_with_the_planned_retry_after() {
            let net = net_with_echo();
            net.set_fault_plan(FaultPlan::new().with_window(
                "echo.test",
                Instant::EPOCH,
                far(),
                FaultKind::RateLimitStorm {
                    retry_after: Duration::from_secs(2),
                },
            ));
            let err = net
                .transmit(&Request::get(Url::parse("sim://echo.test/").unwrap()))
                .unwrap_err();
            assert_eq!(
                err,
                NetError::RateLimited {
                    host: "echo.test".into(),
                    retry_after: Duration::from_secs(2)
                }
            );
            assert_eq!(net.fault_stats().storm_rejections, 1);
        }

        #[test]
        fn flaky_window_raises_loss_above_baseline() {
            let net = net_with_echo(); // baseline loss 0.0
            net.set_fault_plan(FaultPlan::new().with_window(
                "echo.test",
                Instant::EPOCH,
                far(),
                FaultKind::Flaky {
                    extra_loss: 0.5,
                    slowdown: 1.0,
                },
            ));
            let url = Url::parse("sim://echo.test/").unwrap();
            let mut drops = 0;
            for _ in 0..200 {
                if net.transmit(&Request::get(url.clone())).is_err() {
                    drops += 1;
                }
            }
            assert!(
                (60..140).contains(&drops),
                "expected ~100 drops, got {drops}"
            );
            assert_eq!(net.fault_stats().flaky_drops, drops);
        }

        #[test]
        fn corrupt_truncate_halves_the_body() {
            let net = net_with_echo();
            net.set_fault_plan(FaultPlan::new().with_window(
                "echo.test",
                Instant::EPOCH,
                far(),
                FaultKind::CorruptBody { truncate: true },
            ));
            let resp = net
                .transmit(&Request::get(Url::parse("sim://echo.test/abcdef").unwrap()))
                .unwrap();
            // Full body is "echo:/abcdef" (12 bytes) → truncated to 6.
            assert_eq!(resp.text(), Some("echo:/"), "body must be cut in half");
            assert_eq!(net.fault_stats().corrupted_bodies, 1);
        }

        #[test]
        fn corrupt_garble_breaks_utf8() {
            let net = net_with_echo();
            net.set_fault_plan(FaultPlan::new().with_window(
                "echo.test",
                Instant::EPOCH,
                far(),
                FaultKind::CorruptBody { truncate: false },
            ));
            let resp = net
                .transmit(&Request::get(Url::parse("sim://echo.test/page").unwrap()))
                .unwrap();
            assert_ne!(resp.text(), Some("echo:/page"), "body must be damaged");
        }

        #[test]
        fn clearing_the_plan_restores_normal_service() {
            let net = net_with_echo();
            net.set_fault_plan(FaultPlan::new().with_blackout("echo.test", Instant::EPOCH, far()));
            let url = Url::parse("sim://echo.test/").unwrap();
            assert!(net.transmit(&Request::get(url.clone())).is_err());
            net.clear_fault_plan();
            assert!(net.transmit(&Request::get(url)).is_ok());
        }

        #[test]
        fn faults_on_one_host_leave_others_untouched() {
            let mut net = Network::new(NetworkConfig::default(), 1);
            net.register_with("sick.test", echo_host(), reliable_cfg());
            net.register_with("well.test", echo_host(), reliable_cfg());
            net.set_fault_plan(FaultPlan::new().with_blackout("sick.test", Instant::EPOCH, far()));
            assert!(net
                .transmit(&Request::get(Url::parse("sim://sick.test/").unwrap()))
                .is_err());
            assert!(net
                .transmit(&Request::get(Url::parse("sim://well.test/").unwrap()))
                .is_ok());
        }
    }
}
