//! Deterministic fault injection: seeded, schedulable fault plans on
//! the virtual clock.
//!
//! A [`FaultPlan`] assigns each host a set of [`FaultWindow`]s — spans
//! of virtual time during which the host misbehaves in a specific way:
//! total blackout, elevated loss/latency (flaky), rate-limit storms,
//! or truncated/corrupted response bodies. Plans compose with the
//! existing latency/loss models (they act *in addition to* the host's
//! baseline behaviour) and are fully reproducible: the same seed and
//! host list always produce the same schedule.
//!
//! The plan is installed on a [`crate::server::Network`] via
//! [`crate::server::Network::set_fault_plan`]; with no plan installed
//! the network behaves exactly as before.

use crate::clock::{Duration, Instant};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a host does wrong during a fault window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The host is unreachable: every request is dropped after one
    /// base RTT, surfacing as a connection reset.
    Blackout,
    /// The host is degraded: requests are additionally lost with
    /// probability `extra_loss`, and delivered responses take
    /// `slowdown`× their sampled round-trip time (driving timeouts).
    Flaky { extra_loss: f64, slowdown: f64 },
    /// The host sheds load: every request is rejected with a 429 and
    /// this `retry_after` hint.
    RateLimitStorm { retry_after: Duration },
    /// The host answers, but the body arrives damaged. `truncate`
    /// keeps only a prefix of the body; otherwise bytes are garbled
    /// in place (typically producing invalid UTF-8 or unparsable JSON).
    CorruptBody { truncate: bool },
}

/// One span of virtual time during which a fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    pub from: Instant,
    pub until: Instant,
    pub kind: FaultKind,
}

impl FaultWindow {
    pub fn contains(&self, now: Instant) -> bool {
        now >= self.from && now < self.until
    }
}

/// The per-host fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HostPlan {
    pub windows: Vec<FaultWindow>,
}

impl HostPlan {
    /// The first window active at `now`, if any.
    pub fn active_at(&self, now: Instant) -> Option<&FaultWindow> {
        self.windows.iter().find(|w| w.contains(now))
    }
}

/// A complete fault schedule for a network.
///
/// Hosts are keyed by name in a `BTreeMap` so iteration (and therefore
/// every derived behaviour) is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub hosts: BTreeMap<String, HostPlan>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.hosts.values().all(|h| h.windows.is_empty())
    }

    /// Add one fault window for `host` (builder-style).
    pub fn with_window(
        mut self,
        host: &str,
        from: Instant,
        until: Instant,
        kind: FaultKind,
    ) -> Self {
        self.hosts
            .entry(host.to_string())
            .or_default()
            .windows
            .push(FaultWindow { from, until, kind });
        self
    }

    /// Convenience: a blackout window.
    pub fn with_blackout(self, host: &str, from: Instant, until: Instant) -> Self {
        self.with_window(host, from, until, FaultKind::Blackout)
    }

    /// The window active for `host` at `now`, if any.
    pub fn active(&self, host: &str, now: Instant) -> Option<&FaultWindow> {
        self.hosts.get(host).and_then(|h| h.active_at(now))
    }

    /// Number of windows across all hosts.
    pub fn window_count(&self) -> usize {
        self.hosts.values().map(|h| h.windows.len()).sum()
    }

    /// Generate a random plan afflicting `intensity` (0.0–1.0) of the
    /// given hosts over `[0, horizon)`, reproducibly for a seed.
    ///
    /// Each afflicted host receives 2–4 windows of mixed kinds, each
    /// covering roughly 5–15% of the horizon, so even at high
    /// intensity hosts recover between windows — the chaos is bursty,
    /// like real incidents, not a permanent partition.
    pub fn random(hosts: &[String], intensity: f64, horizon: Duration, seed: u64) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        let mut plan = FaultPlan::new();
        if hosts.is_empty() || intensity == 0.0 || horizon == Duration::ZERO {
            return plan;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Deterministic host order regardless of caller ordering.
        let mut sorted: Vec<&String> = hosts.iter().collect();
        sorted.sort();
        let afflicted = ((sorted.len() as f64 * intensity).round() as usize).clamp(1, sorted.len());
        // Choose afflicted hosts by a seeded shuffle-prefix.
        for i in 0..afflicted {
            let j = rng.gen_range(i..sorted.len());
            sorted.swap(i, j);
        }
        let horizon_us = horizon.as_micros();
        for host in sorted.into_iter().take(afflicted) {
            let windows = rng.gen_range(2usize..=4);
            let mut host_plan = HostPlan::default();
            for _ in 0..windows {
                let len_us = (horizon_us as f64 * rng.gen_range(0.05..0.15)) as u64;
                let start_us = rng.gen_range(0..horizon_us.saturating_sub(len_us).max(1));
                let kind = match rng.gen_range(0u32..4) {
                    0 => FaultKind::Blackout,
                    1 => FaultKind::Flaky {
                        extra_loss: rng.gen_range(0.3..0.7),
                        slowdown: rng.gen_range(2.0..6.0),
                    },
                    2 => FaultKind::RateLimitStorm {
                        retry_after: Duration::from_millis(rng.gen_range(500u64..3_000)),
                    },
                    _ => FaultKind::CorruptBody {
                        truncate: rng.gen_bool(0.5),
                    },
                };
                host_plan.windows.push(FaultWindow {
                    from: Instant::from_micros(start_us),
                    until: Instant::from_micros(start_us + len_us),
                    kind,
                });
            }
            host_plan.windows.sort_by_key(|w| w.from);
            plan.hosts.insert(host.clone(), host_plan);
        }
        plan
    }
}

/// Counters for injected faults, by class.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Requests dropped by a blackout window.
    pub blackout_drops: u64,
    /// Requests dropped by a flaky window's extra loss.
    pub flaky_drops: u64,
    /// Responses slowed down by a flaky window.
    pub flaky_slowdowns: u64,
    /// Requests rejected by a rate-limit storm.
    pub storm_rejections: u64,
    /// Response bodies truncated or garbled.
    pub corrupted_bodies: u64,
}

impl FaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.blackout_drops
            + self.flaky_drops
            + self.flaky_slowdowns
            + self.storm_rejections
            + self.corrupted_bodies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("h{i}.test")).collect()
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.active("any.test", Instant::EPOCH).is_none());
    }

    #[test]
    fn windows_are_half_open_intervals() {
        let plan = FaultPlan::new().with_blackout(
            "a.test",
            Instant::from_micros(100),
            Instant::from_micros(200),
        );
        assert!(plan.active("a.test", Instant::from_micros(99)).is_none());
        assert!(plan.active("a.test", Instant::from_micros(100)).is_some());
        assert!(plan.active("a.test", Instant::from_micros(199)).is_some());
        assert!(plan.active("a.test", Instant::from_micros(200)).is_none());
        assert!(plan.active("b.test", Instant::from_micros(150)).is_none());
    }

    #[test]
    fn random_plan_is_deterministic_per_seed() {
        let hs = hosts(10);
        let a = FaultPlan::random(&hs, 0.5, Duration::from_secs(3600), 42);
        let b = FaultPlan::random(&hs, 0.5, Duration::from_secs(3600), 42);
        assert_eq!(a, b);
        let c = FaultPlan::random(&hs, 0.5, Duration::from_secs(3600), 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn random_plan_respects_intensity() {
        let hs = hosts(8);
        assert!(FaultPlan::random(&hs, 0.0, Duration::from_secs(10), 1).is_empty());
        let quarter = FaultPlan::random(&hs, 0.25, Duration::from_secs(10), 1);
        assert_eq!(quarter.hosts.len(), 2);
        let all = FaultPlan::random(&hs, 1.0, Duration::from_secs(10), 1);
        assert_eq!(all.hosts.len(), 8);
    }

    #[test]
    fn random_windows_lie_within_the_horizon() {
        let horizon = Duration::from_secs(600);
        let plan = FaultPlan::random(&hosts(12), 1.0, horizon, 7);
        for host_plan in plan.hosts.values() {
            assert!(!host_plan.windows.is_empty());
            for w in &host_plan.windows {
                assert!(w.from < w.until);
                assert!(w.until.as_micros() <= horizon.as_micros() + horizon.as_micros() / 5);
            }
        }
    }

    #[test]
    fn random_plan_ignores_host_ordering() {
        let mut hs = hosts(6);
        let a = FaultPlan::random(&hs, 0.5, Duration::from_secs(60), 9);
        hs.reverse();
        let b = FaultPlan::random(&hs, 0.5, Duration::from_secs(60), 9);
        assert_eq!(a, b, "plan must not depend on caller's host ordering");
    }

    #[test]
    fn stats_total_sums_classes() {
        let stats = FaultStats {
            blackout_drops: 1,
            flaky_drops: 2,
            flaky_slowdowns: 3,
            storm_rejections: 4,
            corrupted_bodies: 5,
        };
        assert_eq!(stats.total(), 15);
    }
}
