//! # ira-simnet
//!
//! A deterministic, simulated network substrate for the interactive
//! research agent. The agent's retrieval loop (search engine queries,
//! page fetches) runs over this stack instead of a real socket layer,
//! which keeps every experiment reproducible while preserving the
//! systems behaviour that matters to the agent: request latency,
//! transient failures, rate limiting, retries, and timeouts.
//!
//! The stack is layered like a miniature HTTP deployment:
//!
//! * [`clock::VirtualClock`] — a logical clock all components share, so
//!   latency-dependent results do not depend on host scheduling.
//! * [`url::Url`] — a small, strict URL type (scheme/host/path/query).
//! * [`latency::LatencyModel`] — seeded per-host latency distributions.
//! * [`ratelimit::TokenBucket`] — per-host server-side rate limiting.
//! * [`server::Network`] — a registry of virtual hosts implementing
//!   [`server::Host`].
//! * [`client::Client`] — the user-facing client with timeout and
//!   [`retry::RetryPolicy`] support.
//!
//! ```
//! use ira_simnet::prelude::*;
//! use std::sync::Arc;
//!
//! struct Hello;
//! impl Host for Hello {
//!     fn handle(&self, req: &Request, _: &mut HostCtx<'_>) -> Response {
//!         Response::ok(format!("hello {}", req.url.path()))
//!     }
//! }
//!
//! let mut net = Network::new(NetworkConfig::default(), 42);
//! net.register("example.test", Arc::new(Hello));
//! let net = Arc::new(net);
//! let client = Client::new(Arc::clone(&net));
//! let resp = client.get("sim://example.test/docs/1").unwrap();
//! assert_eq!(resp.status, Status::Ok);
//! assert!(resp.text().unwrap().contains("/docs/1"));
//! ```

pub mod breaker;
pub mod cache;
pub mod client;
pub mod clock;
pub mod error;
pub mod faults;
pub mod latency;
pub mod ratelimit;
pub mod retry;
pub mod server;
pub mod url;

pub use breaker::{BreakerConfig, BreakerMetrics, BreakerState, CircuitBreaker, FailureClass};
pub use cache::{CacheConfig, ResponseCache};
pub use client::{Client, ClientConfig};
pub use clock::{Duration, Instant, VirtualClock};
pub use error::{NetError, NetResult};
pub use faults::{FaultKind, FaultPlan, FaultStats, FaultWindow};
pub use latency::{LatencyModel, LatencySample};
pub use ratelimit::TokenBucket;
pub use retry::{Backoff, RetryPolicy};
pub use server::{Host, HostCtx, Network, NetworkConfig, Request, Response, Status};
pub use url::Url;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::breaker::{BreakerConfig, BreakerMetrics, BreakerState};
    pub use crate::client::{Client, ClientConfig};
    pub use crate::clock::{Duration, Instant, VirtualClock};
    pub use crate::error::{NetError, NetResult};
    pub use crate::faults::{FaultKind, FaultPlan, FaultStats};
    pub use crate::retry::RetryPolicy;
    pub use crate::server::{Host, HostCtx, Network, NetworkConfig, Request, Response, Status};
    pub use crate::url::Url;
}
