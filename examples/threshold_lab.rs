//! Threshold lab: how the confidence threshold (§3 step 4) trades
//! self-learning effort against answer quality, on the two questions
//! the paper walks through.
//!
//! ```sh
//! cargo run -p ira-bench --example threshold_lab
//! ```

use ira::prelude::*;

const QUESTIONS: [&str; 2] = [
    "Which is more vulnerable to solar activity? The fiber optic cable that connects Brazil \
     to Europe or the one that connects the US to Europe?",
    "Whose datacenter is more vulnerable to a solar superstorm, Google's or Facebook's?",
];

fn main() {
    println!("threshold  question  conf-series        rounds  searches  committed");
    println!("--------------------------------------------------------------------");
    for threshold in [3u8, 5, 7, 9] {
        for (qi, question) in QUESTIONS.iter().enumerate() {
            let env = Environment::standard();
            let config = AgentConfig {
                confidence_threshold: threshold,
                ..AgentConfig::default()
            };
            let mut bob = ResearchAgent::new(RoleDefinition::bob(), &env, config, 0xB0B);
            bob.train();
            let t = bob.self_learn(question);
            let answer = bob.ask(question);
            let series: Vec<String> = t.confidence_series().iter().map(u8::to_string).collect();
            println!(
                "{:>9}  Q{}        {:<17}  {:>6}  {:>8}  {}",
                threshold,
                qi + 1,
                series.join(" -> "),
                t.learning_rounds(),
                t.total_searches(),
                answer.verdict.as_deref().unwrap_or("(hedged)")
            );
        }
    }
    println!(
        "\nthe paper's observation: raising the threshold lengthens the iterative \
         self-learning process but produces higher-quality answers."
    );
}
