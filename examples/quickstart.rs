//! Quickstart: build the simulated world, create agent Bob, train him,
//! and watch one question go from a hedge to a confident answer.
//!
//! ```sh
//! cargo run -p ira-bench --example quickstart
//! ```

use ira::prelude::*;

fn main() {
    // 1. The environment: ground-truth world model -> synthetic web
    //    corpus -> simulated network serving it.
    let env = Environment::standard();
    println!(
        "environment up: {} documents on {} virtual hosts\n",
        env.corpus.len(),
        env.client.network().host_names().len()
    );

    // 2. Agent Bob, defined exactly as in the paper: a role and three
    //    initial goals.
    let mut bob = ResearchAgent::bob(&env);
    println!("{}", bob.role);

    // 3. Phase 1 — autonomous training: Bob plans each goal, searches
    //    the web, and memorises what he reads.
    let report = bob.train();
    println!(
        "trained: {} searches, {} pages fetched, {} knowledge entries memorised\n",
        report.total_searches(),
        report.total_fetches(),
        report.memory_entries
    );

    // 4. Phase 2 — knowledge testing and self-learning on the paper's
    //    flagship question.
    let question = "Which is more vulnerable to solar activity? The fiber optic cable that \
                    connects Brazil to Europe or the one that connects the US to Europe?";
    println!("Q: {question}\n");

    let before = bob.ask(question);
    println!(
        "before self-learning (confidence {}/10):\n{}\n",
        before.confidence, before.text
    );

    let trajectory = bob.self_learn(question);
    let after = bob.ask(question);
    println!(
        "after {} self-learning round(s) (confidence {}/10):\n{}\n",
        trajectory.learning_rounds(),
        after.confidence,
        after.text
    );

    // 5. Persist Bob's knowledge the way the paper does.
    let path = std::env::temp_dir().join("bob-knowledge.json");
    bob.save_knowledge(&path).expect("save knowledge.json");
    println!("knowledge saved to {}", path.display());
}
