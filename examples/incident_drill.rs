//! Incident drill: replay the 2021 Facebook outage on the routing
//! substrate, let agent Alice investigate the incident class, and
//! archive a markdown report — the workflow a network-operations team
//! would actually run with this library.
//!
//! ```sh
//! cargo run -p ira-bench --example incident_drill
//! ```

use ira::evalkit::report::markdown_report;
use ira::prelude::*;
use ira::simllm::Llm;
use ira::worldmodel::bgp::{AsKind, RoutingSystem};

fn main() {
    // --- Phase 1: the incident, mechanically.
    println!("## Phase 1 — replay the outage on the routing substrate\n");
    let mut routing = RoutingSystem::standard();
    let edges = routing
        .graph
        .ases()
        .filter(|n| n.kind == AsKind::Edge)
        .count();
    println!(
        "{} ASes, {} edge networks; facebook.com availability {:.0}%",
        routing.graph.len(),
        edges,
        routing.availability("facebook.com") * 100.0
    );
    let (before, during, after) = routing.facebook_outage_replay();
    println!(
        "config error replay: {:.0}% -> {:.0}% -> {:.0}% (withdraw DNS prefixes, restore)\n",
        before * 100.0,
        during * 100.0,
        after * 100.0
    );

    // --- Phase 2: the investigation.
    println!("## Phase 2 — agent Alice investigates the incident class\n");
    let env = Environment::standard();
    let quiz = QuizBank::incidents(&env.world.incidents);
    let conclusions = env.world.conclusions();
    let mut alice = ResearchAgent::new(
        RoleDefinition::outage_analyst(),
        &env,
        AgentConfig::default(),
        0xA11CE,
    );
    alice.train();
    let run = evaluate_agent(&mut alice, &quiz, &conclusions);
    println!("{}", run.consistency.summary());

    let (answer, citations) = alice.ask_cited("What caused the 2021 Facebook outage?");
    println!("\nQ: What caused the 2021 Facebook outage?");
    println!("A ({}/10): {}", answer.confidence, answer.text);
    println!("grounded in {} sources", citations.len());

    // --- Phase 3: the archive.
    println!("\n## Phase 3 — archive the report\n");
    let baseline = evaluate_baseline(&Llm::gpt4(404), &quiz);
    let md = markdown_report("Incident drill: configuration-error class", &run, &baseline);
    let path = std::env::temp_dir().join("incident-drill-report.md");
    std::fs::write(&path, &md).expect("write report");
    println!(
        "report written to {} ({} lines)",
        path.display(),
        md.lines().count()
    );
}
