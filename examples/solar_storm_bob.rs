//! The full §4 narrative: agent Bob investigates solar superstorms.
//!
//! Shows all the layers the paper describes — the Auto-GPT loop with
//! its THOUGHTS/PLAN/COMMAND transcript, the knowledge memory, the
//! quiz against the expert conclusions, the self-learning trajectories,
//! the response plan, and the provenance audit.
//!
//! ```sh
//! cargo run -p ira-bench --example solar_storm_bob
//! ```

use ira::autogpt::AutoGpt;
use ira::evalkit::plancov::PlanCoverage;
use ira::prelude::*;
use ira::simllm::Llm;

fn main() {
    let env = Environment::standard();

    // --- A raw Auto-GPT loop, to show what one goal pursuit looks like.
    println!("## One goal through the raw Auto-GPT loop\n");
    let llm = Llm::gpt4(7);
    let memory = KnowledgeStore::with_defaults();
    let mut loop_ = AutoGpt::new(
        &env.client,
        &llm,
        &memory,
        AutoGptConfig::default(),
        Budget::standard(),
    );
    let goal = RoleDefinition::bob().goals[0].clone();
    let report = loop_.run_goal(&goal);
    for cycle in loop_.transcript().iter().take(3) {
        println!("{cycle}\n");
    }
    println!(
        "(goal report: {} searches, {} fetches, {} memorised)\n",
        report.searches, report.fetches, report.memorized
    );

    // --- The full agent, trained and quizzed.
    println!("## Agent Bob, trained and quizzed against the expert conclusions\n");
    let quiz = QuizBank::from_world(&env.world);
    let conclusions = env.world.conclusions();
    let mut bob = ResearchAgent::bob(&env);
    bob.train();
    let run = evaluate_agent(&mut bob, &quiz, &conclusions);

    for (item, result) in quiz.iter().zip(&run.consistency.per_item) {
        println!(
            "[{}] {:?}\n    Q: {}\n    expert: {}\n    Bob:    {} (confidence {}/10)\n",
            if result.matched.consistent {
                "ok"
            } else {
                "XX"
            },
            result.id,
            item.question,
            item.expected_answer,
            result.verdict.as_deref().unwrap_or("(hedged)"),
            result.confidence,
        );
    }
    println!("{}\n", run.consistency.summary());

    // --- Self-learning trajectories for the two paper examples.
    println!("## Confidence trajectories\n");
    for t in run.trajectories.iter().take(2) {
        println!(
            "  {:?} -> {:?}  ({} rounds, {} searches)",
            t.initial_confidence(),
            t.final_confidence(),
            t.learning_rounds(),
            t.total_searches()
        );
    }

    // --- The response plan (§4.3).
    println!("\n## Response planning\n");
    let plan = bob.respond_plan();
    println!("{}\n", plan.text);
    let coverage = PlanCoverage::of(&plan.text);
    println!(
        "plan covers {:.0}% of the expert reference components\n",
        coverage.coverage() * 100.0
    );

    // --- Provenance (§4.2 "verify the sources of the knowledge").
    println!("## Provenance audit\n");
    let p = &run.provenance;
    println!(
        "{} entries from {} distinct sources; answer-key leaks: {}; audit {}",
        p.entries,
        p.distinct_sources,
        p.answer_key_leaks,
        if p.clean() { "CLEAN" } else { "DIRTY" }
    );
}
