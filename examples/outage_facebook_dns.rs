//! A different incident, the same architecture: agent Alice
//! investigates large-scale outage risk concentrated in Internet
//! infrastructure — the incident class the paper motivates with the
//! 2021 Facebook DNS/BGP outage (§2).
//!
//! The point of this example is generality: nothing in the agent stack
//! is storm-specific. Alice gets different goals, learns different
//! parts of the same web, and answers infrastructure questions.
//!
//! ```sh
//! cargo run -p ira-bench --example outage_facebook_dns
//! ```

use ira::prelude::*;

fn main() {
    let env = Environment::standard();
    let mut alice = ResearchAgent::new(
        RoleDefinition::outage_analyst(),
        &env,
        AgentConfig::default(),
        0xA11CE,
    );
    println!("{}", alice.role);

    let report = alice.train();
    println!(
        "trained: {} searches, {} fetches, {} entries\n",
        report.total_searches(),
        report.total_fetches(),
        report.memory_entries
    );

    let questions = [
        "What is the large-scale connectivity impact of a Carrington-class solar superstorm \
         on the Internet?",
        "Are submarine cables or terrestrial fiber links more at risk during a solar \
         superstorm?",
        "Which component of a submarine cable system is most at risk during a geomagnetic \
         storm?",
    ];

    for q in questions {
        let trajectory = alice.self_learn(q);
        let answer = alice.ask(q);
        println!("Q: {q}");
        println!(
            "A (confidence {}/10, {} self-learning rounds):\n{}\n",
            answer.confidence,
            trajectory.learning_rounds(),
            answer.text
        );
    }

    println!(
        "memory now holds {} entries across sources: {:?}",
        alice.memory().len(),
        alice.memory().source_histogram()
    );
}
