//! The fact-sentence contract between `ira-webcorpus` (which writes the
//! synthetic web) and `ira-simllm` (which reads it). These tests are
//! the reason the two crates can evolve independently: if either side
//! drifts from the canonical sentence shapes, this suite fails.

use ira_simllm::extract::{Extraction, Fact, Principle};
use ira_webcorpus::{Corpus, CorpusConfig, SourceKind, Topic};
use ira_worldmodel::World;

fn corpus() -> (World, Corpus) {
    let world = World::standard();
    let corpus = Corpus::generate(&world, CorpusConfig::default());
    (world, corpus)
}

#[test]
fn every_cable_article_yields_route_length_apex_and_repeaters() {
    let (world, corpus) = corpus();
    for cable in world.cables.iter() {
        let article = corpus
            .iter()
            .find(|d| d.source == SourceKind::Encyclopedia && d.title == cable.name)
            .unwrap_or_else(|| panic!("no article for {}", cable.name));
        let ex = Extraction::from_text(&article.full_text(), None);

        let route = ex
            .routes()
            .next()
            .unwrap_or_else(|| panic!("{}: no route fact", cable.name));
        match route {
            Fact::CableRoute {
                name,
                from_country,
                to_country,
                ..
            } => {
                assert_eq!(name, &cable.name);
                assert_eq!(from_country, &cable.from.country);
                assert_eq!(to_country, &cable.to.country);
            }
            other => panic!("unexpected {other:?}"),
        }

        let apex = ex
            .apex_of(&cable.name)
            .unwrap_or_else(|| panic!("{}: no apex fact", cable.name));
        assert!(
            (apex - cable.max_geomag_latitude()).abs() < 0.1,
            "{}: apex {apex} vs model {}",
            cable.name,
            cable.max_geomag_latitude()
        );

        assert!(
            ex.facts.iter().any(|f| matches!(
                f,
                Fact::RepeaterCount { entity, count }
                    if entity == &cable.name && *count == cable.repeater_count()
            )),
            "{}: repeater fact missing or wrong",
            cable.name
        );
        assert!(
            ex.facts
                .iter()
                .any(|f| matches!(f, Fact::LengthKm { entity, .. } if entity == &cable.name)),
            "{}: length fact missing",
            cable.name
        );
    }
}

#[test]
fn fleet_overviews_yield_coverage_and_low_lat_facts() {
    let (world, corpus) = corpus();
    let mut ex = Extraction::default();
    for doc in corpus.iter().filter(|d| d.topic == Topic::DataCenters) {
        ex.absorb(&doc.full_text(), None);
    }
    assert_eq!(
        ex.coverage_of("Google"),
        Some(world.google.region_coverage() as u32)
    );
    assert_eq!(
        ex.coverage_of("Facebook"),
        Some(world.facebook.region_coverage() as u32)
    );
    assert!(ex.low_lat_share_of("Google").is_some());
    assert!(ex.low_lat_share_of("Facebook").is_some());
    // Presence facts exist for every site in both fleets.
    assert_eq!(ex.presences_of("Google").len(), world.google.len());
    assert_eq!(ex.presences_of("Facebook").len(), world.facebook.len());
}

#[test]
fn grid_articles_yield_region_latitudes_for_all_regions_with_grids() {
    let (world, corpus) = corpus();
    let mut ex = Extraction::default();
    for doc in corpus.iter().filter(|d| d.topic == Topic::PowerGrids) {
        ex.absorb(&doc.full_text(), None);
    }
    for region in ["North America", "Asia", "Europe", "South America"] {
        assert!(
            ex.region_latitude(region).is_some(),
            "no grid latitude extracted for {region}"
        );
    }
    // The ordering that drives conclusion C6 must survive the
    // corpus -> extraction round trip.
    assert!(ex.region_latitude("North America").unwrap() > ex.region_latitude("Asia").unwrap());
    let _ = world;
}

/// The scenario-class principles live in the event docs of the
/// non-solar scenarios, not in the base solar corpus.
const SCENARIO_PRINCIPLES: [Principle; 3] = [
    Principle::CableRepair,
    Principle::TransformerSaturation,
    Principle::BgpDnsWithdrawal,
];

#[test]
fn all_twelve_solar_principles_are_extractable_from_the_corpus() {
    let (_, corpus) = corpus();
    let mut ex = Extraction::default();
    for doc in corpus.iter() {
        ex.absorb(&doc.full_text(), None);
    }
    for p in Principle::ALL {
        if SCENARIO_PRINCIPLES.contains(&p) {
            continue;
        }
        assert!(
            ex.principles.contains(&p),
            "principle {p:?} not extractable"
        );
    }
}

#[test]
fn every_principle_is_extractable_from_some_registered_corpus() {
    let world = World::standard();
    let mut ex = Extraction::default();
    for name in ira_worldmodel::scenario::ScenarioRegistry::standard().names() {
        let corpus =
            Corpus::for_scenario(&world, &ira_worldmodel::scenario::ScenarioSpec::named(name))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        for doc in corpus.iter() {
            ex.absorb(&doc.full_text(), None);
        }
    }
    for p in Principle::ALL {
        assert!(
            ex.principles.contains(&p),
            "principle {p:?} not extractable from any registered scenario's corpus"
        );
    }
}

#[test]
fn distractors_contribute_no_facts() {
    let (_, corpus) = corpus();
    let mut ex = Extraction::default();
    for doc in corpus.iter().filter(|d| d.topic == Topic::Distractor) {
        ex.absorb(&doc.full_text(), None);
    }
    assert!(ex.is_empty(), "distractors leaked facts: {ex:?}");
}

#[test]
fn storm_history_dst_values_match_the_model() {
    let (_, corpus) = corpus();
    let mut ex = Extraction::default();
    for doc in corpus.iter().filter(|d| d.topic == Topic::StormHistory) {
        ex.absorb(&doc.full_text(), None);
    }
    let carrington = ex
        .facts
        .iter()
        .find_map(|f| match f {
            Fact::StormDst {
                year: Some(1859),
                dst,
                ..
            } => Some(*dst),
            _ => None,
        })
        .expect("Carrington Dst fact");
    assert_eq!(carrington, -1760.0);
}
