//! Cross-crate integration tests: the full pipeline from ground-truth
//! world to scored evaluation, exercised end to end.

use ira::prelude::*;
use ira::simllm::Llm;

const CABLE_Q: &str = "Which is more vulnerable to solar activity? The fiber optic cable that \
                       connects Brazil to Europe or the one that connects the US to Europe?";

#[test]
fn full_pipeline_reproduces_the_paper_headline() {
    let env = Environment::standard();
    let quiz = QuizBank::from_world(&env.world);
    let conclusions = env.world.conclusions();

    let mut bob = ResearchAgent::bob(&env);
    let training = bob.train();
    assert!(training.total_memorized() >= 5);

    let run = evaluate_agent(&mut bob, &quiz, &conclusions);
    assert!(
        run.consistency.consistent_count() >= 7,
        "paper reports 7 of 8; got {} of {}",
        run.consistency.consistent_count(),
        run.consistency.total()
    );
    assert!(run.provenance.clean());

    let baseline = evaluate_baseline(&Llm::gpt4(123), &quiz);
    assert!(baseline.consistent_count() <= 1);
    assert!(run.consistency.mean_confidence() > baseline.mean_confidence() + 3.0);
}

#[test]
fn paper_trajectory_shapes_hold() {
    let env = Environment::standard();
    let mut bob = ResearchAgent::bob(&env);
    bob.train();

    // E2: cable question, 3 -> 8..9 in one round, US-Europe verdict.
    let t = bob.self_learn(CABLE_Q);
    assert!(t.initial_confidence().unwrap() <= 4);
    assert!(t.final_confidence().unwrap() >= 8);
    assert_eq!(
        t.learning_rounds(),
        1,
        "paper: one round of self-learning suffices"
    );

    // E3: datacenter question improves markedly too.
    let q = "Whose datacenter is more vulnerable to a solar superstorm, Google's or Facebook's?";
    let t = bob.self_learn(q);
    assert!(t.final_confidence().unwrap() > t.initial_confidence().unwrap());
    let last = t.rounds.last().unwrap();
    assert!(last.verdict.as_deref().unwrap_or("").contains("Facebook"));
}

#[test]
fn identical_seeds_give_identical_runs() {
    let run = || {
        let env = Environment::standard();
        let quiz = QuizBank::from_world(&env.world);
        let conclusions = env.world.conclusions();
        let mut bob = ResearchAgent::bob(&env);
        bob.train();
        let run = evaluate_agent(&mut bob, &quiz, &conclusions);
        (
            run.consistency.consistent_count(),
            run.trajectories
                .iter()
                .map(|t| t.confidence_series())
                .collect::<Vec<_>>(),
            bob.memory().len(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "the whole pipeline must be deterministic per seed");
}

#[test]
fn grounding_cache_and_legacy_lookups_are_observationally_identical() {
    // The hot-path overhaul (grounding cache, indexed corpus lookups)
    // must be invisible in every observable: answers, confidence
    // trajectories, memory contents, LLM stats, and the virtual clock.
    use ira::services::WebServices;
    use ira::simllm::LlmConfig;
    use std::sync::Arc;

    let run = |legacy: bool| {
        let env = Environment::standard();
        env.corpus.set_scan_lookups(legacy);
        let web: Arc<dyn WebServices> = Arc::new(env.client.clone());
        let llm = Arc::new(Llm::new(LlmConfig {
            seed: 0xB0B,
            grounding_cache: !legacy,
            ..LlmConfig::default()
        }));
        let mut bob = ResearchAgent::from_services(
            RoleDefinition::bob(),
            Arc::clone(&web),
            llm,
            AgentConfig::default(),
        );
        bob.train();
        let t = bob.self_learn(CABLE_Q);
        // Re-asking after learning exercises the answer cache.
        let again = bob.ask(CABLE_Q);
        (
            t.confidence_series(),
            again.text,
            again.confidence,
            bob.memory().to_json(),
            bob.llm_stats(),
            web.now_us(),
        )
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn knowledge_json_round_trips_through_a_real_agent() {
    let env = Environment::standard();
    let mut bob = ResearchAgent::bob(&env);
    bob.train();
    let json = bob.memory().to_json();
    assert!(json.contains("source_url"));
    let restored = ira::agentmem::KnowledgeStore::from_json(&json).unwrap();
    assert_eq!(restored.len(), bob.memory().len());
    // Retrieval over the restored store behaves identically.
    let q = "solar superstorm coronal mass ejection";
    let a = bob.memory().retrieve_texts(q, 3, u64::MAX);
    let b = restored.retrieve_texts(q, 3, u64::MAX);
    assert_eq!(a, b);
}

#[test]
fn bigger_distractor_load_does_not_break_learning() {
    let corpus = std::sync::Arc::new(ira::webcorpus::Corpus::generate(
        &World::standard(),
        CorpusConfig {
            seed: 0xC0FFEE,
            distractor_count: 600,
            ..CorpusConfig::default()
        },
    ));
    let env = Environment::from_parts(World::standard(), corpus, 0xBEEF, None);
    let mut bob = ResearchAgent::bob(&env);
    bob.train();
    let t = bob.self_learn(CABLE_Q);
    assert!(
        t.final_confidence().unwrap() >= 8,
        "retrieval must still find the facts amid 600 distractors"
    );
}

#[test]
fn different_role_same_architecture() {
    let env = Environment::standard();
    let mut alice = ResearchAgent::new(
        RoleDefinition::outage_analyst(),
        &env,
        AgentConfig::default(),
        0xA11CE,
    );
    alice.train();
    let q = "Are submarine cables or terrestrial fiber links more at risk during a solar \
             superstorm?";
    let t = alice.self_learn(q);
    assert!(
        t.final_confidence().unwrap() >= 7,
        "got {:?}",
        t.confidence_series()
    );
    let answer = alice.ask(q);
    assert_eq!(answer.verdict.as_deref(), Some("submarine cables"));
}

#[test]
fn virtual_time_accumulates_like_a_real_investigation() {
    let env = Environment::standard();
    let quiz = QuizBank::from_world(&env.world);
    let mut bob = ResearchAgent::bob(&env);
    bob.train();
    for item in quiz.iter() {
        let _ = bob.self_learn(&item.question);
    }
    let minutes = env.now_us() as f64 / 6e7;
    assert!(
        (0.5..30.0).contains(&minutes),
        "full investigation should take order-of-minutes virtual time, took {minutes:.1}"
    );
}

#[test]
fn incident_investigation_matches_all_four_conclusions() {
    // The X2 extension end to end: Alice the outage analyst against
    // the incident quiz derived from the catalog.
    let env = Environment::standard();
    let quiz = QuizBank::incidents(&env.world.incidents);
    let conclusions = env.world.conclusions();
    let mut alice = ResearchAgent::new(
        RoleDefinition::outage_analyst(),
        &env,
        AgentConfig::default(),
        0xA11CE,
    );
    alice.train();
    let run = evaluate_agent(&mut alice, &quiz, &conclusions);
    assert_eq!(
        run.consistency.consistent_count(),
        4,
        "incident quiz results: {:#?}",
        run.consistency
            .per_item
            .iter()
            .map(|r| (r.id.clone(), r.matched.consistent, r.verdict.clone()))
            .collect::<Vec<_>>()
    );
    let baseline = evaluate_baseline(&Llm::gpt4(5), &quiz);
    assert_eq!(baseline.consistent_count(), 0);
}

#[test]
fn poisoning_degrades_confidence_but_never_flips_the_verdict() {
    use ira::evalkit::poison::PoisonCampaign;
    let env = Environment::standard();
    let mut bob = ResearchAgent::bob(&env);
    bob.train();
    let _ = bob.self_learn(CABLE_Q);
    let clean = bob.ask(CABLE_Q);
    assert!(clean
        .verdict
        .as_deref()
        .unwrap_or("")
        .contains("United States"));

    for target in ["Atlantis-2", "EllaLink"] {
        PoisonCampaign::inflate(target, 75.0, 3).inject(bob.memory(), env.now_us());
    }
    let poisoned = bob.ask(CABLE_Q);
    assert!(
        poisoned.confidence < clean.confidence,
        "poisoning must be visible as a confidence drop ({} vs {})",
        poisoned.confidence,
        clean.confidence
    );
    // Fail-safe: the agent may hedge, but must never assert the
    // adversary's preferred (wrong) verdict.
    if let Some(v) = &poisoned.verdict {
        assert!(
            !v.to_lowercase().contains("brazil"),
            "verdict flipped to the adversary's side: {v}"
        );
    }
}

#[test]
fn markdown_report_renders_a_full_run() {
    use ira::evalkit::report::markdown_report;
    use ira::evalkit::runner::full_paper_run;
    let env = Environment::standard();
    let (run, baseline) = full_paper_run(&env);
    let md = markdown_report("Investigation report: solar superstorms", &run, &baseline);
    assert!(md.starts_with("# Investigation report"));
    assert!(md.contains("## Per-question results"));
    assert!(md.contains("## Self-learning trajectories"));
    assert!(md.contains("## Provenance"));
    assert!(md.contains("BrazilEuropeCableSafer"));
    assert!(md.matches('|').count() > 40, "tables should render");
}

#[test]
fn agent_survives_a_hostile_network() {
    // Failure injection: wrap the standard corpus in a network with a
    // heavy loss rate. Retries absorb transient failures; the agent
    // still learns, and errors are accounted rather than fatal.
    use ira::simnet::latency::LatencyModel;
    use ira::simnet::ratelimit::TokenBucket;
    use ira::simnet::server::{HostConfig, Network, NetworkConfig};
    use ira::webcorpus::{register_sites, Corpus};
    use std::sync::Arc;

    let world = World::standard();
    let corpus = Arc::new(Corpus::generate(&world, CorpusConfig::default()));
    let mut net = Network::new(
        NetworkConfig {
            default_host: HostConfig {
                latency: LatencyModel {
                    loss: 0.30,
                    ..LatencyModel::typical()
                },
                rate_limit: TokenBucket::unlimited(),
            },
        },
        0xBAD,
    );
    // Register sites, then *override* every host with the lossy config.
    register_sites(&mut net, Arc::clone(&corpus));
    let hosts = net.host_names();
    for host in hosts {
        // Re-registering replaces the slot with the lossy default.
        let corpus = Arc::clone(&corpus);
        if host == ira::webcorpus::SEARCH_HOST {
            continue; // keep the search engine functional
        }
        let host_static: &'static str = Box::leak(host.clone().into_boxed_str());
        net.register_with(
            &host,
            Arc::new(move |req: &ira::simnet::server::Request| {
                match corpus.doc_by_host_path(host_static, req.url.path()) {
                    Some(doc) => ira::simnet::server::Response::ok(doc.full_text()),
                    None => ira::simnet::server::Response::not_found(),
                }
            }),
            HostConfig {
                latency: LatencyModel {
                    loss: 0.30,
                    ..LatencyModel::typical()
                },
                rate_limit: TokenBucket::unlimited(),
            },
        );
    }

    let client = ira::simnet::Client::new(Arc::new(net));
    let env = Environment {
        world,
        corpus,
        client,
    };
    let mut bob = ResearchAgent::bob(&env);
    let report = bob.train();
    assert!(
        report.total_memorized() >= 3,
        "a 30%-loss network must not stop learning: {report:?}"
    );
    let t = bob.self_learn(CABLE_Q);
    assert!(
        t.final_confidence().unwrap() >= 7,
        "retries should carry the investigation through: {:?}",
        t.confidence_series()
    );
}

#[test]
fn flagship_trajectory_holds_across_seeds() {
    // A compressed X11: four distinct corpus/network seeds must all
    // reach the correct verdict at high confidence.
    for seed in [0x5EEDu64, 0x60EF, 0x62F1, 0x67F6] {
        let corpus = std::sync::Arc::new(ira::webcorpus::Corpus::generate(
            &World::standard(),
            CorpusConfig {
                seed,
                distractor_count: 150,
                ..CorpusConfig::default()
            },
        ));
        let env = Environment::from_parts(World::standard(), corpus, seed ^ 0xBEEF, None);
        let mut bob = ResearchAgent::new(RoleDefinition::bob(), &env, AgentConfig::default(), seed);
        bob.train();
        let t = bob.self_learn(CABLE_Q);
        assert!(
            t.final_confidence().unwrap() >= 8,
            "seed {seed:#x}: {:?}",
            t.confidence_series()
        );
        let answer = bob.ask(CABLE_Q);
        assert!(
            answer
                .verdict
                .as_deref()
                .unwrap_or("")
                .contains("United States"),
            "seed {seed:#x}: verdict {:?}",
            answer.verdict
        );
    }
}
