//! `#[derive(Error)]` implemented directly over `proc_macro` token
//! trees (no syn/quote). Supports the shapes this workspace uses:
//! enums with unit / tuple / named variants, structs with named fields,
//! per-variant or struct-level `#[error("...")]` format strings with
//! positional (`{0}`, `{0:?}`) and named (`{field}`) interpolation,
//! `#[from]` (implies `#[source]`) and explicit `#[source]` fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Shape {
    Unit,
    Tuple,
    Named,
}

struct Field {
    name: Option<String>,
    ty: String,
    is_from: bool,
    is_source: bool,
}

struct Variant {
    name: String,
    shape: Shape,
    fields: Vec<Field>,
    fmt: Option<String>,
}

#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let mut outer_fmt: Option<String> = None;
    while let Some((name, lit)) = attr_at(&tokens, i) {
        if name == "error" {
            outer_fmt = lit;
        }
        i += 2;
    }

    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let kind = ident_at(&tokens, i, "expected `enum` or `struct`");
    i += 1;
    let type_name = ident_at(&tokens, i, "expected type name");
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!(
            "derive(Error): generics and tuple structs are not supported by the vendored thiserror"
        ),
    };

    let generated = match kind.as_str() {
        "enum" => derive_for_enum(&type_name, parse_variants(body)),
        "struct" => derive_for_struct(
            &type_name,
            parse_fields_named(body),
            outer_fmt.expect("derive(Error): struct requires a #[error(\"...\")] attribute"),
        ),
        other => panic!("derive(Error): unsupported item kind `{other}`"),
    };

    generated
        .parse()
        .expect("derive(Error): generated code failed to parse")
}

// ---------------------------------------------------------------------
// Parsing helpers
// ---------------------------------------------------------------------

/// If tokens[i..] starts with an attribute `#[...]`, return its name and
/// (for `name("literal")` shapes) the raw literal text including quotes.
fn attr_at(tokens: &[TokenTree], i: usize) -> Option<(String, Option<String>)> {
    match (tokens.get(i), tokens.get(i + 1)) {
        (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let name = inner.first().map(|t| t.to_string()).unwrap_or_default();
            let lit = inner.get(1).and_then(|t| match t {
                TokenTree::Group(args) => args.stream().into_iter().next().map(|l| l.to_string()),
                _ => None,
            });
            Some((name, lit))
        }
        _ => None,
    }
}

fn ident_at(tokens: &[TokenTree], i: usize, msg: &str) -> String {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("derive(Error): {msg}"),
    }
}

/// Split a token list on top-level commas.
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0i32;
    for tok in tokens {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if !current.is_empty() {
                        out.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_field(chunk: Vec<TokenTree>, named: bool) -> Field {
    let mut i = 0;
    let mut is_from = false;
    let mut is_source = false;
    while let Some((name, _)) = attr_at(&chunk, i) {
        match name.as_str() {
            "from" => is_from = true,
            "source" => is_source = true,
            _ => {}
        }
        i += 2;
    }
    if matches!(&chunk.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&chunk.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let name = if named {
        let field_name = ident_at(&chunk, i, "expected field name");
        i += 1;
        // Skip the `:` between name and type.
        i += 1;
        Some(field_name)
    } else {
        None
    };
    let ty = chunk[i..]
        .iter()
        .cloned()
        .collect::<TokenStream>()
        .to_string();
    Field {
        name,
        ty,
        is_from,
        is_source,
    }
}

fn parse_fields_named(stream: TokenStream) -> Vec<Field> {
    split_commas(stream.into_iter().collect())
        .into_iter()
        .map(|chunk| parse_field(chunk, true))
        .collect()
}

fn parse_fields_tuple(stream: TokenStream) -> Vec<Field> {
    split_commas(stream.into_iter().collect())
        .into_iter()
        .map(|chunk| parse_field(chunk, false))
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut fmt = None;
        while let Some((name, lit)) = attr_at(&tokens, i) {
            if name == "error" {
                fmt = lit;
            }
            i += 2;
        }
        let vname = ident_at(&tokens, i, "expected variant name");
        i += 1;
        let (shape, fields) = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                (Shape::Tuple, parse_fields_tuple(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                (Shape::Named, parse_fields_named(g.stream()))
            }
            _ => (Shape::Unit, Vec::new()),
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant {
            name: vname,
            shape,
            fields,
            fmt,
        });
    }
    variants
}

// ---------------------------------------------------------------------
// Format-string handling
// ---------------------------------------------------------------------

/// Rewrite positional interpolations (`{0}` -> `{_0}`) in a raw string
/// literal (quotes included) and collect the binding names it uses.
fn rewrite_fmt(lit: &str) -> (String, Vec<String>) {
    let chars: Vec<char> = lit.chars().collect();
    let mut out = String::with_capacity(lit.len() + 4);
    let mut used = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '{' {
            if chars.get(i + 1) == Some(&'{') {
                out.push_str("{{");
                i += 2;
                continue;
            }
            let start = i + 1;
            let mut j = start;
            while j < chars.len() && chars[j] != '}' && chars[j] != ':' {
                j += 1;
            }
            let name: String = chars[start..j].iter().collect();
            let binding = if !name.is_empty() && name.chars().all(|c| c.is_ascii_digit()) {
                format!("_{name}")
            } else {
                name.clone()
            };
            if !binding.is_empty() && !used.contains(&binding) {
                used.push(binding.clone());
            }
            out.push('{');
            out.push_str(&binding);
            if let Some(&c) = chars.get(j) {
                // Push the terminator (`}` or `:`); the rest of the spec
                // after `:` is copied verbatim by the outer loop.
                out.push(c);
            }
            i = j + 1;
            continue;
        }
        if c == '}' && chars.get(i + 1) == Some(&'}') {
            out.push_str("}}");
            i += 2;
            continue;
        }
        out.push(c);
        i += 1;
    }
    (out, used)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

/// Pattern that binds exactly `bound` for a variant, with `_`/`..` for
/// the rest. `bound` entries are `_N` for tuple positions.
fn variant_pattern(type_name: &str, v: &Variant, bound: &[String]) -> String {
    match v.shape {
        Shape::Unit => format!("{type_name}::{}", v.name),
        Shape::Tuple => {
            if bound.is_empty() {
                if v.fields.is_empty() {
                    format!("{type_name}::{}()", v.name)
                } else {
                    format!("{type_name}::{}(..)", v.name)
                }
            } else {
                let elems: Vec<String> = (0..v.fields.len())
                    .map(|idx| {
                        let name = format!("_{idx}");
                        if bound.contains(&name) {
                            name
                        } else {
                            "_".to_string()
                        }
                    })
                    .collect();
                format!("{type_name}::{}({})", v.name, elems.join(", "))
            }
        }
        Shape::Named => {
            if bound.is_empty() {
                format!("{type_name}::{} {{ .. }}", v.name)
            } else {
                format!("{type_name}::{} {{ {}, .. }}", v.name, bound.join(", "))
            }
        }
    }
}

fn source_field(v: &Variant) -> Option<(usize, &Field)> {
    v.fields
        .iter()
        .enumerate()
        .find(|(_, f)| f.is_from || f.is_source)
}

fn derive_for_enum(type_name: &str, variants: Vec<Variant>) -> String {
    let mut display_arms = String::new();
    let mut source_arms = String::new();
    let mut from_impls = String::new();
    let mut any_source = false;

    for v in &variants {
        let fmt = v.fmt.as_deref().unwrap_or_else(|| {
            panic!(
                "derive(Error): variant `{}::{}` is missing #[error(\"...\")]",
                type_name, v.name
            )
        });
        let (rewritten, used) = rewrite_fmt(fmt);
        let pattern = variant_pattern(type_name, v, &used);
        display_arms.push_str(&format!(
            "            {pattern} => ::std::write!(__f, {rewritten}),\n"
        ));

        if let Some((idx, field)) = source_field(v) {
            any_source = true;
            let binding = field.name.clone().unwrap_or_else(|| format!("_{idx}"));
            let pattern = variant_pattern(type_name, v, std::slice::from_ref(&binding));
            source_arms.push_str(&format!(
                "            {pattern} => ::std::option::Option::Some(::thiserror::AsDynError::as_dyn_error({binding})),\n"
            ));

            if field.is_from {
                assert!(
                    v.fields.len() == 1,
                    "derive(Error): #[from] requires a single-field variant ({}::{})",
                    type_name,
                    v.name
                );
                let constructor = match (&field.name, v.shape) {
                    (Some(name), Shape::Named) => {
                        format!("{type_name}::{} {{ {name}: source }}", v.name)
                    }
                    (_, _) => format!("{type_name}::{}(source)", v.name),
                };
                from_impls.push_str(&format!(
                    "impl ::std::convert::From<{ty}> for {type_name} {{\n    fn from(source: {ty}) -> Self {{\n        {constructor}\n    }}\n}}\n",
                    ty = field.ty
                ));
            }
        } else {
            let pattern = variant_pattern(type_name, v, &[]);
            source_arms.push_str(&format!(
                "            {pattern} => ::std::option::Option::None,\n"
            ));
        }
    }

    let source_fn = if any_source {
        format!(
            "    fn source(&self) -> ::std::option::Option<&(dyn ::std::error::Error + 'static)> {{\n        match self {{\n{source_arms}        }}\n    }}\n"
        )
    } else {
        String::new()
    };

    format!(
        "impl ::std::fmt::Display for {type_name} {{\n    fn fmt(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n        match self {{\n{display_arms}        }}\n    }}\n}}\nimpl ::std::error::Error for {type_name} {{\n{source_fn}}}\n{from_impls}"
    )
}

fn derive_for_struct(type_name: &str, fields: Vec<Field>, fmt: String) -> String {
    let (rewritten, used) = rewrite_fmt(&fmt);
    let bindings = if used.is_empty() {
        String::new()
    } else {
        format!(
            "        let {type_name} {{ {}, .. }} = self;\n",
            used.join(", ")
        )
    };
    let source_fn = fields
        .iter()
        .find(|f| f.is_from || f.is_source)
        .map(|f| {
            let name = f
                .name
                .clone()
                .expect("derive(Error): struct #[source] field must be named");
            format!(
                "    fn source(&self) -> ::std::option::Option<&(dyn ::std::error::Error + 'static)> {{\n        ::std::option::Option::Some(::thiserror::AsDynError::as_dyn_error(&self.{name}))\n    }}\n"
            )
        })
        .unwrap_or_default();

    let from_impl = fields
        .iter()
        .filter(|f| f.is_from)
        .map(|f| {
            assert!(
                fields.len() == 1,
                "derive(Error): #[from] requires a single-field struct ({type_name})"
            );
            let name = f.name.clone().expect("named field");
            format!(
                "impl ::std::convert::From<{ty}> for {type_name} {{\n    fn from(source: {ty}) -> Self {{\n        {type_name} {{ {name}: source }}\n    }}\n}}\n",
                ty = f.ty
            )
        })
        .collect::<String>();

    format!(
        "impl ::std::fmt::Display for {type_name} {{\n    fn fmt(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n{bindings}        ::std::write!(__f, {rewritten})\n    }}\n}}\nimpl ::std::error::Error for {type_name} {{\n{source_fn}}}\n{from_impl}"
    )
}
