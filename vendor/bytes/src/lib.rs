//! Offline drop-in subset of `bytes`: a cheaply clonable immutable byte
//! buffer. The zero-copy slicing machinery of the real crate is not
//! needed by this workspace; an `Arc<[u8]>` carries the same sharing
//! semantics for response bodies.

use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    pub fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes(Repr::Static(s))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes(Repr::Static(s.as_bytes()))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from("abc".to_string());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], b"abc");
    }
}
