//! Offline drop-in subset of `serde_json` over the vendored serde
//! [`Value`] model: `to_string` / `to_string_pretty` / `from_str` /
//! `to_value` / `from_value`, with a recursive-descent parser
//! (depth-limited, full string escapes incl. surrogate pairs).

use serde::{Deserialize, Serialize};

pub use serde::{Error, Value};

/// Result alias matching the upstream crate.
pub type Result<T> = std::result::Result<T, Error>;

const MAX_DEPTH: usize = 128;

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize_value())
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // `{:?}` keeps a trailing `.0` on whole floats so the
                // value parses back as a float.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------

pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::deserialize_value(&value)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::deserialize_value(&value)
}

/// Parse a complete JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {} in JSON document",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8> {
        let b = self
            .peek()
            .ok_or_else(|| Error::custom("unexpected end of JSON document"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::custom(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid JSON token at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::custom("JSON document exceeds maximum nesting depth"));
        }
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of JSON document")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos - 1,
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos - 1,
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8 in JSON string"))?,
                );
            }
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require a following \uXXXX.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::custom("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "invalid escape `\\{}`",
                            other as char
                        )))
                    }
                },
                other if other < 0x20 => {
                    return Err(Error::custom("raw control character in JSON string"))
                }
                _ => unreachable!("fast path consumes plain bytes"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit in unicode escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "42", "-7", "1.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn whole_floats_keep_point() {
        assert_eq!(to_string(&Value::F64(3.0)).unwrap(), "3.0");
        assert_eq!(parse("3.0").unwrap(), Value::F64(3.0));
    }

    #[test]
    fn nested_structure_roundtrips() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny"}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é 😀""#).unwrap();
        assert_eq!(v, Value::String("é 😀".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        let mut map: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        map.insert("xs".into(), vec![1, 2, 3]);
        let text = to_string(&map).unwrap();
        let back: BTreeMap<String, Vec<u32>> = from_str(&text).unwrap();
        assert_eq!(back, map);
    }
}
