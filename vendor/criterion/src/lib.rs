//! Offline minimal stand-in for `criterion`: same API shape
//! (`Criterion`, `bench_function`, `benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`), but a deliberately small measurement loop — it
//! reports a mean wall-clock time per iteration with no statistics,
//! keeping `cargo bench` fast and dependency-free.

use std::fmt::Display;
use std::time::Instant;

/// Re-export for parity; benches may use either this or
/// `std::hint::black_box` directly.
pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the closure given to `bench_function`; `iter` runs and
/// times the workload.
pub struct Bencher {
    /// (total nanoseconds, iterations) accumulated by `iter`.
    measured: Option<(u128, u64)>,
    sample_size: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed call to estimate cost and warm caches.
        let probe = Instant::now();
        black_box(f());
        let probe_ns = probe.elapsed().as_nanos().max(1);

        // Aim for a short, bounded measurement window.
        let budget_ns: u128 = 50_000_000; // 50ms
        let iters = (budget_ns / probe_ns).clamp(1, self.sample_size as u128) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.measured = Some((start.elapsed().as_nanos(), iters));
    }
}

fn report(name: &str, measured: Option<(u128, u64)>) {
    match measured {
        Some((total_ns, iters)) => {
            let per = total_ns / iters as u128;
            println!("bench: {name:<48} {per:>12} ns/iter ({iters} iters)");
        }
        None => println!("bench: {name:<48} (no measurement)"),
    }
}

/// Benchmark registry / runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            measured: None,
            sample_size: 100,
        };
        f(&mut b);
        report(name, b.measured);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            measured: None,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{name}", self.name), b.measured);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            measured: None,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), b.measured);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}
