//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde subset, implemented directly over `proc_macro` token trees.
//!
//! Supported shapes (everything this workspace derives): structs with
//! named fields, tuple structs (newtypes are transparent), and enums
//! with unit / tuple / named variants (externally tagged). Field
//! attributes: `#[serde(default)]`, `#[serde(default = "path")]`,
//! `#[serde(skip)]` (combinable, e.g. `#[serde(skip, default = "f")]`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Shape {
    Unit,
    Tuple,
    Named,
}

#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    /// `Some(None)` for bare `default`, `Some(Some(path))` for
    /// `default = "path"`.
    default: Option<Option<String>>,
}

struct Field {
    name: Option<String>,
    attrs: SerdeAttrs,
}

struct Variant {
    name: String,
    shape: Shape,
    fields: Vec<Field>,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let generated = match parse_item(input) {
        Item::Struct {
            name,
            shape,
            fields,
        } => struct_serialize(&name, shape, &fields),
        Item::Enum { name, variants } => enum_serialize(&name, &variants),
    };
    generated
        .parse()
        .expect("derive(Serialize): generated code failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let generated = match parse_item(input) {
        Item::Struct {
            name,
            shape,
            fields,
        } => struct_deserialize(&name, shape, &fields),
        Item::Enum { name, variants } => enum_deserialize(&name, &variants),
    };
    generated
        .parse()
        .expect("derive(Deserialize): generated code failed to parse")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while attr_at(&tokens, i).is_some() {
        i += 2;
    }
    if is_ident(&tokens, i, "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind = ident_at(&tokens, i, "expected `struct` or `enum`");
    i += 1;
    let name = ident_at(&tokens, i, "expected type name");
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "derive(Serialize/Deserialize): generic types are not supported by the vendored serde"
        );
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                shape: Shape::Named,
                fields: parse_fields(g.stream(), true),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                shape: Shape::Tuple,
                fields: parse_fields(g.stream(), false),
            },
            _ => Item::Struct {
                name,
                shape: Shape::Unit,
                fields: Vec::new(),
            },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("derive: expected enum body"),
        },
        other => panic!("derive: unsupported item kind `{other}`"),
    }
}

/// If tokens[i..] starts with `#[...]`, return `(name, inner tokens)`.
fn attr_at(tokens: &[TokenTree], i: usize) -> Option<(String, Vec<TokenTree>)> {
    match (tokens.get(i), tokens.get(i + 1)) {
        (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let name = inner.first().map(|t| t.to_string()).unwrap_or_default();
            Some((name, inner))
        }
        _ => None,
    }
}

fn is_ident(tokens: &[TokenTree], i: usize, text: &str) -> bool {
    matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == text)
}

fn ident_at(tokens: &[TokenTree], i: usize, msg: &str) -> String {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("derive: {msg}"),
    }
}

/// Parse the arguments of a `#[serde(...)]` attribute.
fn parse_serde_attr(inner: &[TokenTree], attrs: &mut SerdeAttrs) {
    let args = match inner.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let toks: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "skip" => {
                    attrs.skip = true;
                    i += 1;
                }
                "default" => {
                    if matches!(&toks.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        let lit = toks
                            .get(i + 2)
                            .map(|t| t.to_string())
                            .expect("serde(default = ...): missing path");
                        attrs.default = Some(Some(lit.trim_matches('"').to_string()));
                        i += 3;
                    } else {
                        attrs.default = Some(None);
                        i += 1;
                    }
                }
                other => panic!("vendored serde_derive: unsupported serde attribute `{other}`"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("vendored serde_derive: unexpected token {other} in #[serde(...)]"),
        }
    }
}

fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0i32;
    for tok in tokens {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if !current.is_empty() {
                        out.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_fields(stream: TokenStream, named: bool) -> Vec<Field> {
    split_commas(stream.into_iter().collect())
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            let mut attrs = SerdeAttrs::default();
            while let Some((name, inner)) = attr_at(&chunk, i) {
                if name == "serde" {
                    parse_serde_attr(&inner, &mut attrs);
                }
                i += 2;
            }
            if is_ident(&chunk, i, "pub") {
                i += 1;
                if matches!(&chunk.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            let name = if named {
                Some(ident_at(&chunk, i, "expected field name"))
            } else {
                None
            };
            Field { name, attrs }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while attr_at(&tokens, i).is_some() {
            i += 2;
        }
        let vname = ident_at(&tokens, i, "expected variant name");
        i += 1;
        let (shape, fields) = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                (Shape::Tuple, parse_fields(g.stream(), false))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                (Shape::Named, parse_fields(g.stream(), true))
            }
            _ => (Shape::Unit, Vec::new()),
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant {
            name: vname,
            shape,
            fields,
        });
    }
    variants
}

// ---------------------------------------------------------------------
// Codegen: structs
// ---------------------------------------------------------------------

fn struct_serialize(name: &str, shape: Shape, fields: &[Field]) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple => {
            let live: Vec<usize> = (0..fields.len())
                .filter(|&i| !fields[i].attrs.skip)
                .collect();
            if live.len() == 1 && fields.len() == 1 {
                // Newtype structs are transparent.
                "::serde::Serialize::serialize_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Shape::Named => {
            let mut out =
                String::from("{\n        let mut __map = ::std::collections::BTreeMap::new();\n");
            for f in fields.iter().filter(|f| !f.attrs.skip) {
                let fname = f.name.as_ref().expect("named field");
                out.push_str(&format!(
                    "        __map.insert(\"{fname}\".to_string(), ::serde::Serialize::serialize_value(&self.{fname}));\n"
                ));
            }
            out.push_str("        ::serde::Value::Object(__map)\n    }");
            out
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn serialize_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

/// Expression producing a field's value during deserialization.
/// `source` is an expression of type `Option<&Value>` for this field.
fn field_expr(context: &str, f: &Field, source: &str) -> String {
    let missing = match (&f.attrs.default, f.attrs.skip) {
        (Some(Some(path)), _) => format!("{path}()"),
        (Some(None), _) | (None, true) => "::std::default::Default::default()".to_string(),
        (None, false) => {
            let fname = f.name.as_deref().unwrap_or("?");
            format!(
                "return ::std::result::Result::Err(::serde::Error::custom(\"missing field `{fname}` in {context}\"))"
            )
        }
    };
    if f.attrs.skip {
        return missing;
    }
    format!(
        "match {source} {{ ::std::option::Option::Some(__v) => ::serde::Deserialize::deserialize_value(__v)?, ::std::option::Option::None => {{ {missing} }} }}"
    )
}

fn struct_deserialize(name: &str, shape: Shape, fields: &[Field]) -> String {
    let body = match shape {
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Tuple if fields.len() == 1 => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__value)?))"
        ),
        Shape::Tuple => {
            let n = fields.len();
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __value.as_array().ok_or_else(|| ::serde::Error::type_mismatch(\"array for {name}\", __value))?;\n        if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}\")); }}\n        ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::Named => {
            let mut out = format!(
                "let __obj = __value.as_object().ok_or_else(|| ::serde::Error::type_mismatch(\"object for {name}\", __value))?;\n        ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                let fname = f.name.as_ref().expect("named field");
                let expr = field_expr(name, f, &format!("__obj.get(\"{fname}\")"));
                out.push_str(&format!("            {fname}: {expr},\n"));
            }
            out.push_str("        })");
            out
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n    fn deserialize_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        {body}\n    }}\n}}\n"
    )
}

// ---------------------------------------------------------------------
// Codegen: enums (externally tagged)
// ---------------------------------------------------------------------

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match v.shape {
            Shape::Unit => {
                arms.push_str(&format!(
                    "            {name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                ));
            }
            Shape::Tuple => {
                let bindings: Vec<String> =
                    (0..v.fields.len()).map(|i| format!("__f{i}")).collect();
                let payload = if bindings.len() == 1 {
                    "::serde::Serialize::serialize_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = bindings
                        .iter()
                        .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "            {name}::{vname}({binds}) => {{\n                let mut __map = ::std::collections::BTreeMap::new();\n                __map.insert(\"{vname}\".to_string(), {payload});\n                ::serde::Value::Object(__map)\n            }}\n",
                    binds = bindings.join(", ")
                ));
            }
            Shape::Named => {
                let names: Vec<&String> = v
                    .fields
                    .iter()
                    .map(|f| f.name.as_ref().expect("named"))
                    .collect();
                let mut inner =
                    String::from("let mut __fields = ::std::collections::BTreeMap::new();\n");
                for f in v.fields.iter().filter(|f| !f.attrs.skip) {
                    let fname = f.name.as_ref().expect("named");
                    inner.push_str(&format!(
                        "                __fields.insert(\"{fname}\".to_string(), ::serde::Serialize::serialize_value({fname}));\n"
                    ));
                }
                arms.push_str(&format!(
                    "            {name}::{vname} {{ {binds} }} => {{\n                {inner}                let mut __map = ::std::collections::BTreeMap::new();\n                __map.insert(\"{vname}\".to_string(), ::serde::Value::Object(__fields));\n                ::serde::Value::Object(__map)\n            }}\n",
                    binds = names
                        .iter()
                        .map(|n| n.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn serialize_value(&self) -> ::serde::Value {{\n        match self {{\n{arms}        }}\n    }}\n}}\n"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut payload_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match v.shape {
            Shape::Unit => {
                unit_arms.push_str(&format!(
                    "                \"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            Shape::Tuple => {
                let body = if v.fields.len() == 1 {
                    format!(
                        "::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::deserialize_value(__payload)?))"
                    )
                } else {
                    let n = v.fields.len();
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Deserialize::deserialize_value(&__arr[{i}])?"))
                        .collect();
                    format!(
                        "{{ let __arr = __payload.as_array().ok_or_else(|| ::serde::Error::type_mismatch(\"array for {name}::{vname}\", __payload))?;\n                    if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}::{vname}\")); }}\n                    ::std::result::Result::Ok({name}::{vname}({items})) }}",
                        items = items.join(", ")
                    )
                };
                payload_arms.push_str(&format!("                \"{vname}\" => {body},\n"));
            }
            Shape::Named => {
                let mut fields_code = String::new();
                for f in &v.fields {
                    let fname = f.name.as_ref().expect("named");
                    let expr = field_expr(
                        &format!("{name}::{vname}"),
                        f,
                        &format!("__fields.get(\"{fname}\")"),
                    );
                    fields_code.push_str(&format!("                        {fname}: {expr},\n"));
                }
                payload_arms.push_str(&format!(
                    "                \"{vname}\" => {{\n                    let __fields = __payload.as_object().ok_or_else(|| ::serde::Error::type_mismatch(\"object for {name}::{vname}\", __payload))?;\n                    ::std::result::Result::Ok({name}::{vname} {{\n{fields_code}                    }})\n                }}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n    fn deserialize_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        match __value {{\n            ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}                __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n            }},\n            ::serde::Value::Object(__m) if __m.len() == 1 => {{\n                let (__tag, __payload) = __m.iter().next().expect(\"len checked\");\n                match __tag.as_str() {{\n{payload_arms}                    __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n                }}\n            }}\n            __other => ::std::result::Result::Err(::serde::Error::type_mismatch(\"enum {name}\", __other)),\n        }}\n    }}\n}}\n"
    )
}
