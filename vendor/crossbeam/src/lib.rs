//! Offline drop-in subset of `crossbeam`: scoped threads, implemented
//! over `std::thread::scope` (stable since Rust 1.63). Only the
//! `crossbeam::thread::scope` entry point used by the workspace is
//! provided, with crossbeam's `Result`-returning signature and the
//! spawn-closure-takes-the-scope convention (callers ignore it as `|_|`).

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to the `scope` closure and to every spawned
    /// thread's closure (crossbeam convention; typically ignored).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope (which
        /// callers conventionally bind as `_`), matching crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle for joining one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which threads borrowing from the caller's
    /// stack can be spawned; all are joined before `scope` returns.
    ///
    /// Unjoined panicking children are reported as `Err`, like
    /// crossbeam. (Children joined explicitly surface their panic
    /// through their own `join` result instead.)
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u32, 2, 3];
        let sum: u32 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|v| scope.spawn(move |_| *v * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }
}
