//! Offline drop-in subset of `rand`.
//!
//! Provides the `RngCore` / `Rng` / `SeedableRng` trio with the handful
//! of generation methods the workspace uses (`gen`, `gen_range`,
//! `gen_bool`, `fill_bytes`). Streams are deterministic per seed, which
//! is the property every experiment in this repository relies on; they
//! are NOT bit-compatible with upstream `rand` streams.

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible from uniform random bits (the subset of upstream's
/// `Standard` distribution the workspace needs).
pub trait FromRng {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    /// Uniform in [0, 1), 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl FromRng for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl FromRng for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for i64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl FromRng for i32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl FromRng for i16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}

impl FromRng for i8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}

impl FromRng for isize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                    // Modulo bias is negligible for the 64-bit draw vs.
                    // the spans used here, and determinism is what the
                    // simulation actually needs.
                    let draw = rng.next_u64() as $wide % span;
                    self.start.wrapping_add(draw as $t)
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                    if span == 0 {
                        // Full domain.
                        return FromRng::from_rng(rng);
                    }
                    let draw = rng.next_u64() as $wide % span;
                    start.wrapping_add(draw as $t)
                }
            }
        )*
    };
}

int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

macro_rules! float_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let u: $t = FromRng::from_rng(rng);
                    self.start + u * (self.end - self.start)
                }
            }
        )*
    };
}

float_range!(f32, f64);

/// High-level generation methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let u: f64 = FromRng::from_rng(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64, like upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Placeholder module for API parity; the workspace uses
    //! `rand_chacha::ChaCha8Rng` exclusively.
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }
}
