//! Offline drop-in subset of `serde`.
//!
//! Instead of the upstream visitor machinery, serialization is modeled
//! as conversion to and from a JSON-like [`Value`] tree:
//!
//! - [`Serialize`] renders a type into a [`Value`];
//! - [`Deserialize`] reconstructs a type from a [`Value`];
//! - `serde_json` (the companion vendored crate) renders `Value` to
//!   text and parses text back into `Value`.
//!
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! vendored `serde_derive`) generate these conversions for structs and
//! enums, honoring `#[serde(default)]`, `#[serde(default = "path")]`
//! and `#[serde(skip)]`.
//!
//! JSON mapping notes:
//! - maps and sets serialize as arrays of `[key, value]` pairs / plain
//!   arrays, which uniformly supports non-string keys (e.g. tuples);
//! - enums use the externally-tagged layout: `"Variant"` for unit
//!   variants, `{"Variant": payload}` otherwise;
//! - newtype structs are transparent.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------

/// A JSON-like document tree. Integers keep their exact 64-bit value;
/// non-negative integers canonicalize to `I64` when they fit so that
/// `PartialEq` behaves intuitively across serialize/parse round trips.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Canonical integer constructor: prefers `I64` when the magnitude
    /// fits, so equal integers compare equal regardless of source type.
    pub fn int(v: i128) -> Value {
        if v >= i64::MIN as i128 && v <= i64::MAX as i128 {
            Value::I64(v as i64)
        } else {
            Value::U64(v as u64)
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::I64(v) => u64::try_from(*v).ok(),
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if !matches!(self, Value::Object(_)) {
            *self = Value::Object(BTreeMap::new());
        }
        match self {
            Value::Object(m) => m.entry(key.to_string()).or_insert(Value::Null),
            _ => unreachable!(),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

// ---------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------

/// Serialization / deserialization error (shared with `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Standard "wrong shape" constructor used by generated code.
    pub fn type_mismatch(expected: &str, got: &Value) -> Error {
        Error::custom(format!("expected {expected}, found {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// --------------------------- primitives ------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::type_mismatch("bool", value))
    }
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn serialize_value(&self) -> Value {
                    Value::int(*self as i128)
                }
            }
            impl Deserialize for $t {
                fn deserialize_value(value: &Value) -> Result<Self, Error> {
                    let wide: i128 = match value {
                        Value::I64(v) => *v as i128,
                        Value::U64(v) => *v as i128,
                        _ => return Err(Error::type_mismatch("integer", value)),
                    };
                    <$t>::try_from(wide).map_err(|_| {
                        Error::custom(format!(
                            "integer {wide} out of range for {}",
                            stringify!($t)
                        ))
                    })
                }
            }
        )*
    };
}

ser_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn serialize_value(&self) -> Value {
                    Value::F64(*self as f64)
                }
            }
            impl Deserialize for $t {
                fn deserialize_value(value: &Value) -> Result<Self, Error> {
                    value
                        .as_f64()
                        .map(|v| v as $t)
                        .ok_or_else(|| Error::type_mismatch("number", value))
                }
            }
        )*
    };
}

ser_de_float!(f32, f64);

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::type_mismatch("string", value))
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::type_mismatch("single-char string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// --------------------------- containers ------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::type_mismatch("array", value))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize_value(&self) -> Value {
                    Value::Array(vec![$(self.$idx.serialize_value()),+])
                }
            }
            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn deserialize_value(value: &Value) -> Result<Self, Error> {
                    let arr = value
                        .as_array()
                        .ok_or_else(|| Error::type_mismatch("tuple array", value))?;
                    let expected = [$($idx,)+].len();
                    if arr.len() != expected {
                        return Err(Error::custom(format!(
                            "expected tuple of {expected}, found array of {}",
                            arr.len()
                        )));
                    }
                    Ok(($($name::deserialize_value(&arr[$idx])?,)+))
                }
            }
        )*
    };
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

fn serialize_pairs<'a, K: Serialize + 'a, V: Serialize + 'a>(
    pairs: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Array(
        pairs
            .map(|(k, v)| Value::Array(vec![k.serialize_value(), v.serialize_value()]))
            .collect(),
    )
}

fn deserialize_pairs<K: Deserialize, V: Deserialize>(value: &Value) -> Result<Vec<(K, V)>, Error> {
    value
        .as_array()
        .ok_or_else(|| Error::type_mismatch("array of [key, value] pairs", value))?
        .iter()
        .map(|pair| {
            let arr = pair
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| Error::type_mismatch("[key, value] pair", pair))?;
            Ok((
                K::deserialize_value(&arr[0])?,
                V::deserialize_value(&arr[1])?,
            ))
        })
        .collect()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        serialize_pairs(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(deserialize_pairs::<K, V>(value)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        // Sort by serialized key text for deterministic output.
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.serialize_value(), v.serialize_value()))
            .collect();
        pairs.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(deserialize_pairs::<K, V>(value)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::type_mismatch("array", value))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::type_mismatch("array", value))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_canonicalization() {
        assert_eq!(5u64.serialize_value(), Value::I64(5));
        assert_eq!(u64::MAX.serialize_value(), Value::U64(u64::MAX));
        assert_eq!(u64::deserialize_value(&Value::I64(9)), Ok(9));
        assert!(u32::deserialize_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u16> = Some(1859);
        let none: Option<u16> = None;
        assert_eq!(
            Option::<u16>::deserialize_value(&some.serialize_value()),
            Ok(some)
        );
        assert_eq!(
            Option::<u16>::deserialize_value(&none.serialize_value()),
            Ok(none)
        );
    }

    #[test]
    fn map_with_tuple_keys_roundtrips() {
        let mut map = BTreeMap::new();
        map.insert((1u32, 2u32), 0.5f64);
        map.insert((3, 4), 1.5);
        let value = map.serialize_value();
        let back: BTreeMap<(u32, u32), f64> = Deserialize::deserialize_value(&value).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn index_on_object() {
        let mut obj = Value::Object(BTreeMap::new());
        obj["items"] = Value::Array(vec![Value::I64(1)]);
        obj["items"].as_array_mut().unwrap().push(Value::I64(2));
        assert_eq!(obj["items"].as_array().unwrap().len(), 2);
        assert!(obj["missing"].is_null());
    }
}
