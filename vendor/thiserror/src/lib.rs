//! Offline drop-in subset of `thiserror`.
//!
//! `#[derive(Error)]` with `#[error("...")]` Display format strings
//! (positional `{0}` / `{0:?}` and named `{field}` interpolation),
//! `#[from]` conversions and `#[source]` chaining. Implemented by the
//! companion `thiserror-impl` proc macro with no external dependencies.

pub use thiserror_impl::Error;

/// Object-safety shim used by generated `source()` implementations so a
/// field of type `E`, `Box<E>`, etc. coerces uniformly to
/// `&dyn Error`.
pub trait AsDynError {
    fn as_dyn_error(&self) -> &(dyn std::error::Error + 'static);
}

impl<T: std::error::Error + 'static> AsDynError for T {
    fn as_dyn_error(&self) -> &(dyn std::error::Error + 'static) {
        self
    }
}
