//! Offline drop-in subset of `proptest`.
//!
//! Deterministic property testing: each test's RNG is seeded from an
//! FNV hash of the test name plus the case index, so failures are
//! reproducible run-to-run without a persistence file. No shrinking —
//! the failing case's message is reported directly.
//!
//! Supported surface (everything this workspace's property tests use):
//! - `proptest! { #[test] fn name(arg in strategy, ...) { ... } }`
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//! - `&str` regex-subset strategies: literals, `[...]` classes (ranges,
//!   negation, `&&` intersection), `\PC`, `\.`-style escapes, groups,
//!   and the `*`, `{n}`, `{n,m}` quantifiers
//! - integer / float `Range` and `RangeInclusive` strategies
//! - tuple strategies (arity 2–4), `.prop_map(...)`
//! - `prop::collection::vec`, `prop::option::of`, `prop::sample::select`
//!
//! Case count defaults to 64; override with `PROPTEST_CASES`.

use std::fmt;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic per-test RNG (splitmix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

fn fnv64(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            func: f,
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    strategy: S,
    func: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.func)(self.strategy.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let draw = rng.below(span) as i128;
                    (self.start as i128 + draw) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    let draw = if span == 0 { rng.next_u64() } else { rng.below(span) };
                    (start as i128 + draw as i128) as $t
                }
            }
        )*
    };
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    // Treat as half-open plus occasional exact endpoint.
                    if rng.below(64) == 0 {
                        return end;
                    }
                    start + (rng.next_f64() as $t) * (end - start)
                }
            }
        )*
    };
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ------------------------ regex-subset strings -----------------------

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let nodes = regex_lite::parse(self);
        let mut out = String::new();
        regex_lite::render(&nodes, rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

mod regex_lite {
    //! Generator for the small regex subset used as string strategies.

    use super::TestRng;

    pub enum Node {
        Literal(char),
        /// Pool of allowed characters.
        Class(Vec<char>),
        Group(Vec<(Node, Quant)>),
    }

    #[derive(Clone, Copy)]
    pub enum Quant {
        One,
        Star,
        Between(usize, usize),
    }

    /// Characters `\PC` may produce: printable ASCII plus a small pool
    /// of multi-byte code points to exercise UTF-8 handling.
    fn pc_pool() -> Vec<char> {
        let mut pool: Vec<char> = (0x20u8..=0x7E).map(|b| b as char).collect();
        pool.extend(['é', 'ß', 'λ', 'Ж', '中', '…', '—', '😀', '¡', 'ñ']);
        pool
    }

    pub fn parse(pattern: &str) -> Vec<(Node, Quant)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let seq = parse_seq(&chars, &mut i, false);
        assert!(i == chars.len(), "unsupported regex strategy: {pattern}");
        seq
    }

    fn parse_seq(chars: &[char], i: &mut usize, in_group: bool) -> Vec<(Node, Quant)> {
        let mut seq = Vec::new();
        while *i < chars.len() {
            let c = chars[*i];
            if c == ')' && in_group {
                break;
            }
            let node = match c {
                '[' => Node::Class(parse_class(chars, i)),
                '(' => {
                    *i += 1;
                    let inner = parse_seq(chars, i, true);
                    assert!(
                        chars.get(*i) == Some(&')'),
                        "unterminated group in regex strategy"
                    );
                    *i += 1;
                    Node::Group(inner)
                }
                '\\' => {
                    *i += 1;
                    let esc = chars.get(*i).copied().expect("dangling escape");
                    *i += 1;
                    if esc == 'P' {
                        // `\PC`: anything outside unicode category C.
                        let cat = chars.get(*i).copied().expect("\\P needs a category");
                        assert!(cat == 'C', "only \\PC is supported");
                        *i += 1;
                        Node::Class(pc_pool())
                    } else {
                        Node::Literal(esc)
                    }
                }
                other => {
                    *i += 1;
                    Node::Literal(other)
                }
            };
            // `[` and `(` advance i inside their parsers; literals above.
            let quant = parse_quant(chars, i);
            seq.push((node, quant));
        }
        seq
    }

    fn parse_quant(chars: &[char], i: &mut usize) -> Quant {
        match chars.get(*i) {
            Some('*') => {
                *i += 1;
                Quant::Star
            }
            Some('+') => {
                *i += 1;
                Quant::Between(1, 16)
            }
            Some('?') => {
                *i += 1;
                Quant::Between(0, 1)
            }
            Some('{') => {
                *i += 1;
                let mut lo = String::new();
                while chars[*i].is_ascii_digit() {
                    lo.push(chars[*i]);
                    *i += 1;
                }
                let lo: usize = lo.parse().expect("bad quantifier");
                let hi = if chars[*i] == ',' {
                    *i += 1;
                    let mut hi = String::new();
                    while chars[*i].is_ascii_digit() {
                        hi.push(chars[*i]);
                        *i += 1;
                    }
                    hi.parse().expect("bad quantifier")
                } else {
                    lo
                };
                assert!(chars[*i] == '}', "unterminated quantifier");
                *i += 1;
                Quant::Between(lo, hi)
            }
            _ => Quant::One,
        }
    }

    /// Parse `[...]` (cursor on `[`). Supports ranges, leading `^`
    /// negation (complemented within printable ASCII), and `A&&[B]`
    /// intersection.
    fn parse_class(chars: &[char], i: &mut usize) -> Vec<char> {
        assert!(chars[*i] == '[');
        *i += 1;
        let negated = chars.get(*i) == Some(&'^');
        if negated {
            *i += 1;
        }
        let mut set: Vec<char> = Vec::new();
        loop {
            let c = *chars.get(*i).expect("unterminated char class");
            if c == ']' {
                *i += 1;
                break;
            }
            if c == '&' && chars.get(*i + 1) == Some(&'&') {
                *i += 2;
                assert!(
                    chars.get(*i) == Some(&'['),
                    "`&&` must be followed by a bracketed class"
                );
                let rhs = parse_class(chars, i);
                set.retain(|c| rhs.contains(c));
                assert!(
                    chars.get(*i) == Some(&']'),
                    "class must end after `&&` intersection"
                );
                *i += 1;
                break;
            }
            let lo = if c == '\\' {
                *i += 1;
                let esc = *chars.get(*i).expect("dangling escape in class");
                esc
            } else {
                c
            };
            *i += 1;
            if chars.get(*i) == Some(&'-') && chars.get(*i + 1).is_some_and(|&c| c != ']') {
                *i += 1;
                let hi = *chars.get(*i).expect("unterminated range");
                *i += 1;
                for code in (lo as u32)..=(hi as u32) {
                    if let Some(c) = char::from_u32(code) {
                        set.push(c);
                    }
                }
            } else {
                set.push(lo);
            }
        }
        if negated {
            (0x20u8..=0x7E)
                .map(|b| b as char)
                .filter(|c| !set.contains(c))
                .collect()
        } else {
            assert!(!set.is_empty(), "empty char class");
            set
        }
    }

    pub fn render(seq: &[(Node, Quant)], rng: &mut TestRng, out: &mut String) {
        for (node, quant) in seq {
            let count = match quant {
                Quant::One => 1,
                Quant::Star => rng.below(17) as usize,
                Quant::Between(lo, hi) => *lo + rng.below((*hi - *lo + 1) as u64) as usize,
            };
            for _ in 0..count {
                match node {
                    Node::Literal(c) => out.push(*c),
                    Node::Class(pool) => out.push(pool[rng.below(pool.len() as u64) as usize]),
                    Node::Group(inner) => render(inner, rng, out),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Collection / option / sample strategies
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T> {
        items: Vec<T>,
    }

    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

// ---------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; try another.
    Reject,
    /// `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => f.write_str("rejected by prop_assume!"),
            TestCaseError::Fail(msg) => f.write_str(msg),
        }
    }
}

pub mod test_runner {
    use super::{fnv64, TestCaseError, TestRng};

    fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Run `body` against `PROPTEST_CASES` accepted cases, deterministic
    /// in `name`. Panics (failing the enclosing #[test]) on the first
    /// failed case.
    pub fn run<F>(name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let target = case_count();
        let base = fnv64(name);
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        let mut case = 0u64;
        while accepted < target {
            let mut rng = TestRng::new(base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            match body(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > target.saturating_mul(64) {
                        panic!(
                            "proptest `{name}`: too many cases rejected by prop_assume! \
                             ({rejected} rejects for {accepted} accepted)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed at case #{case}: {msg}");
                }
            }
            case += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, Strategy, TestCaseError, TestRng};

    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_with(pattern: &str, seed: u64) -> String {
        let mut rng = TestRng::new(seed);
        Strategy::generate(pattern, &mut rng)
    }

    #[test]
    fn class_patterns_stay_in_alphabet() {
        for seed in 0..50 {
            let s = gen_with("[a-z]{3,10}", seed);
            assert!((3..=10).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn host_pattern_shape() {
        for seed in 0..50 {
            let s = gen_with("[a-z][a-z0-9-]{0,20}(\\.[a-z]{2,8}){1,2}", seed);
            assert!(s.contains('.'), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn intersection_class_excludes_comma() {
        for seed in 0..100 {
            let s = gen_with("[ -~&&[^,]]{0,20}", seed);
            assert!(!s.contains(','), "{s:?}");
        }
    }

    #[test]
    fn pc_star_never_empty_classes() {
        for seed in 0..20 {
            let _ = gen_with("\\PC*", seed);
            let s = gen_with("\\PC{0,1000}", seed);
            assert!(s.chars().count() <= 1000);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(gen_with("[a-z]{8}", 7), gen_with("[a-z]{8}", 7));
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = Strategy::generate(&(5u32..10), &mut rng);
            assert!((5..10).contains(&v));
            let f = Strategy::generate(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&f));
            let (a, b) = Strategy::generate(&(0u8..4, "[xy]{2}"), &mut rng);
            assert!(a < 4 && b.len() == 2);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u32..100, s in "[a-c]{1,3}") {
            prop_assert!(x < 100);
            prop_assume!(!s.is_empty());
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }
}
