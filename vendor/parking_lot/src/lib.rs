//! Offline drop-in subset of `parking_lot`, backed by `std::sync`.
//!
//! The workspace builds hermetically (no registry access), so the real
//! crate is replaced by this shim. The API surface is the subset the
//! workspace uses: `Mutex`/`RwLock` whose guards are returned directly
//! (no poisoning in the type signature). A poisoned std lock is
//! recovered by taking the inner value, matching parking_lot's
//! poison-free semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's poison-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's poison-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
