//! Offline `ChaCha8Rng`: a real 8-round ChaCha block function driving
//! the vendored `rand` traits. Deterministic per seed (the property the
//! simulation depends on); streams are not bit-compatible with upstream
//! `rand_chacha`.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// 8-round ChaCha keyed by a 32-byte seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let input = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Current 64-bit block counter (for checkpoint/debug purposes).
    pub fn get_word_pos(&self) -> u64 {
        self.counter
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut rng = ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        };
        rng.refill();
        rng.index = 0;
        // refill() advanced the counter for the *next* block; keep the
        // first block in the buffer and continue from there.
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should differ");
    }

    #[test]
    fn uniformish_unit_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
